"""The dataflow execution engine.

The engine materializes a workflow specification as a *ready-set scheduler*
(see :mod:`repro.workflow.scheduler`): modules become schedulable tasks with
explicit dependency counts, a pluggable backend runs ready tasks either
serially (the deterministic default) or on a thread pool (``workers=N``),
values flow along connections, results are optionally memoized, and every
step is reported to registered listeners.  Listeners are the paper's
"capture mechanism" — the provenance subsystem observes execution through
this API without the engine depending on it.  All listener dispatch happens
on the coordinating thread, in a deterministic order in serial mode, so
listeners never need their own synchronization against the engine.

Failure semantics are graph-based: a failing module marks itself ``failed``
and everything downstream of it ``skipped`` (a module is skipped when *any*
direct upstream did not succeed, judged once all of its upstreams have
resolved); independent branches still run.  The run as a whole is ``failed``
when any module failed, else ``ok``.

Partial re-execution: callers may inject :class:`ReusedModule` records for
modules whose outputs are already known from a stored run's retrospective
provenance.  Reused modules never compute — they resolve instantly with
``"cached"`` status pointing at the original execution id, so derivation
history stays intact while only the stale frontier does real work (see
:mod:`repro.core.replay` for planning).
"""

from __future__ import annotations

import shutil
import tempfile
import threading
import time
import traceback
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.identity import hash_value, new_id
from repro.workflow.cache import (DEFAULT_LEASE_TTL, CacheEntry,
                                  CacheStore, ResultCache,
                                  module_cache_key)
from repro.workflow.environment import capture_environment
from repro.workflow.errors import ExecutionError
from repro.workflow.faults import (FaultInjected, FaultPlan, RetryPolicy,
                                   resolve_retry)
from repro.workflow.registry import ModuleContext, ModuleRegistry
from repro.workflow.scheduler import (ReadySetScheduler, SerialBackend,
                                      make_backend)
from repro.workflow.serialization import (DEFAULT_REGISTRY_PROVIDER,
                                          DEFAULT_SPILL_THRESHOLD,
                                          ProcessJob, maybe_spill,
                                          resolve_spilled)
from repro.workflow.spec import Module, Workflow
from repro.workflow.validation import check_workflow

__all__ = [
    "ValueRecord",
    "ModuleResult",
    "ReusedModule",
    "RunResult",
    "ExecutionListener",
    "Executor",
    "InputKey",
]

#: External input bindings are keyed by (module_id, port_name).
InputKey = Tuple[str, str]

#: How often the executor's heartbeat refreshes held compute leases.
#: Well under the TTL, so a lease only ever expires when its holding
#: process actually died (taking the heartbeat with it).
_HEARTBEAT_INTERVAL = DEFAULT_LEASE_TTL / 4.0


@dataclass(frozen=True)
class ValueRecord:
    """A value paired with its content hash (artifact identity)."""

    value: Any
    value_hash: str

    @classmethod
    def of(cls, value: Any) -> "ValueRecord":
        """Wrap ``value``, computing its hash."""
        return cls(value=value, value_hash=hash_value(value))


@dataclass(frozen=True)
class ReusedModule:
    """Known outputs of a module, served from provenance instead of running.

    Attributes:
        outputs: output-port name to the recorded :class:`ValueRecord`.
        source_execution: execution id that originally computed the outputs.
        parameters: parameters of the original execution (recorded on the
            reused result so provenance shows what the outputs derive from).
        cache_key: causal cache key of the original execution, if known.
    """

    outputs: Dict[str, ValueRecord]
    source_execution: str = ""
    parameters: Dict[str, Any] = field(default_factory=dict)
    cache_key: str = ""


@dataclass
class _PendingProcessJob:
    """Coordinator-side state of one module executing out of process.

    Mutable: retries update the attempt counter, accumulated failed
    attempts, worker-loss count and per-attempt deadline in place while
    the module stays pending.
    """

    module: Module
    definition: Any
    parameters: Dict[str, Any]
    inputs: Dict[str, ValueRecord]
    cache_key: str
    #: lease token held on ``cache_key`` while the worker computes;
    #: released when the module settles ("" when no lease was taken).
    lease_owner: str = ""
    #: the picklable payload, kept for re-dispatch on retry.
    job: Optional[ProcessJob] = None
    #: effective retry policy for this module's type.
    policy: RetryPolicy = field(default_factory=RetryPolicy)
    #: 1-based attempt currently in flight.
    attempt: int = 1
    #: failed attempts recorded so far (attempt-tagged ModuleResults).
    failures: List["ModuleResult"] = field(default_factory=list)
    #: monotonic deadline of the in-flight attempt (None = no timeout).
    deadline: Optional[float] = None
    #: times this module's job was lost to a dead/restarted worker.
    worker_losses: int = 0
    #: set when the engine deadline-killed the in-flight attempt.
    timed_out: bool = False


@dataclass
class ModuleResult:
    """Outcome of one module execution within a run.

    ``status`` is one of ``"ok"``, ``"cached"``, ``"failed"``, ``"skipped"``.
    Cached results carry ``cached_from``: the execution id that originally
    computed the outputs (a cache hit within this engine, or the stored
    execution a replay reused).
    """

    module_id: str
    execution_id: str
    status: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    inputs: Dict[str, ValueRecord] = field(default_factory=dict)
    outputs: Dict[str, ValueRecord] = field(default_factory=dict)
    started: float = 0.0
    finished: float = 0.0
    error: str = ""
    cache_key: str = ""
    cached_from: str = ""
    #: 0 for a module's final result; N >= 1 tags the Nth failed
    #: attempt that preceded a retried module's final result.
    attempt: int = 0
    #: failed attempts (attempt-tagged results) that preceded this
    #: final result; empty for fault-free modules.
    attempts: List["ModuleResult"] = field(default_factory=list)

    @property
    def duration(self) -> float:
        """Wall-clock seconds spent (0 for skipped modules)."""
        return max(0.0, self.finished - self.started)

    def succeeded(self) -> bool:
        """True for ok or cached executions."""
        return self.status in ("ok", "cached")


@dataclass
class RunResult:
    """Complete record of one workflow run, as seen by the engine."""

    run_id: str
    workflow: Workflow
    status: str
    results: Dict[str, ModuleResult]
    order: List[str]
    environment: Dict[str, Any]
    started: float
    finished: float
    tags: Dict[str, Any] = field(default_factory=dict)

    def result(self, module_id: str) -> ModuleResult:
        """The :class:`ModuleResult` for ``module_id`` (KeyError if absent)."""
        return self.results[module_id]

    def output(self, module_id: str, port: str) -> Any:
        """The value produced on ``module_id.port`` in this run."""
        return self.results[module_id].outputs[port].value

    def output_hash(self, module_id: str, port: str) -> str:
        """Content hash of the value produced on ``module_id.port``."""
        return self.results[module_id].outputs[port].value_hash

    def sink_outputs(self) -> Dict[Tuple[str, str], Any]:
        """Values of every output port on every sink module."""
        values: Dict[Tuple[str, str], Any] = {}
        for module_id in self.workflow.sinks():
            module_result = self.results.get(module_id)
            if module_result is None or not module_result.succeeded():
                continue
            for port, record in module_result.outputs.items():
                values[(module_id, port)] = record.value
        return values

    def failed_modules(self) -> List[str]:
        """Ids of modules whose status is ``failed`` (sorted)."""
        return sorted(m for m, r in self.results.items()
                      if r.status == "failed")

    def executed_modules(self) -> List[str]:
        """Ids of modules that actually computed (status ``ok``), sorted."""
        return sorted(m for m, r in self.results.items()
                      if r.status == "ok")

    def reused_modules(self) -> List[str]:
        """Ids of modules served from cache or provenance reuse (sorted)."""
        return sorted(m for m, r in self.results.items()
                      if r.status == "cached")

    @property
    def duration(self) -> float:
        """Wall-clock seconds for the whole run."""
        return max(0.0, self.finished - self.started)


class ExecutionListener:
    """Observer interface for execution events (all methods optional).

    The engine dispatches every event from its coordinating thread — never
    from worker threads — so implementations need no locking against the
    engine itself (they still need it if *shared across executors* running
    concurrently).
    """

    def on_run_start(self, run_id: str, workflow: Workflow,
                     environment: Dict[str, Any],
                     tags: Dict[str, Any]) -> None:
        """Called once before any module executes."""

    def on_module_start(self, run_id: str, module: Module,
                        parameters: Dict[str, Any]) -> None:
        """Called before a module's compute function runs."""

    def on_module_finish(self, run_id: str, module: Module,
                         result: ModuleResult) -> None:
        """Called after a module finishes (ok, cached, failed or skipped)."""

    def on_run_finish(self, result: RunResult) -> None:
        """Called once after the run completes."""


class Executor:
    """Runs workflows against a module registry.

    Args:
        registry: module definitions and the type registry.
        cache: optional :class:`ResultCache`; when present, deterministic
            modules are memoized across runs.  The cache is thread-safe, so
            one cache may serve parallel runs.
        listeners: observers notified of every execution event.
        clock: callable returning the current wall time (injectable for
            deterministic tests).
        validate: when True (default), specifications are statically checked
            before running; unbound ports satisfied by external inputs (or
            belonging to reused modules) are allowed.
        workers: default execution parallelism.  ``None``/``0``/``1`` run
            serially in deterministic topological order; ``N > 1`` runs
            ready modules on a pool of N workers.  Overridable per
            :meth:`execute` call.
        backend: where the worker pool lives — ``"thread"`` (the default
            when ``workers > 1``; best for blocking or GIL-releasing
            modules) or ``"process"`` (worker processes; pure-Python
            CPU-bound modules scale past the GIL).  Process workers
            rebuild module behaviour from ``registry_provider``, so module
            definitions must be reachable through an importable provider
            and values must be picklable; hashing, caching and provenance
            capture stay in this process, so all backends record
            identical provenance.
        registry_provider: ``"module:callable"`` spec that worker
            processes call to rebuild the module registry (defaults to the
            standard library registry).  Only consulted by the process
            backend.
        payload_spill_threshold: pickle size (bytes) above which process-
            job values travel as spill-file references instead of through
            the executor pipe (see
            :class:`~repro.workflow.serialization.SpilledValue`), bounding
            coordinator memory on wide fan-outs of large artifacts.
            ``None`` selects the default
            (:data:`~repro.workflow.serialization.DEFAULT_SPILL_THRESHOLD`,
            1 MiB); ``0`` disables spilling.  Only consulted by the
            process backend.
        retry: how failed module attempts are retried — ``None`` (no
            retries, the default), one
            :class:`~repro.workflow.faults.RetryPolicy` for every
            module, or a mapping of module *type name* to policy with an
            optional ``"*"`` wildcard fallback.  Every failed attempt is
            recorded in the run's provenance tagged ``attempt=N``; only
            the final result emits artifacts.  A policy ``timeout`` is
            enforced by deadline-kill (pool restart) on the process
            backend and cooperatively on serial/thread backends.
        fault_plan: optional
            :class:`~repro.workflow.faults.FaultPlan` injecting
            deterministic faults at engine seams (module failure/hang,
            worker kill, lease steal) — for tests and recovery drills.

    When the cache implements compute leases
    (:attr:`~repro.workflow.cache.CacheStore.supports_leases`), a miss on
    a deterministic module first claims a per-key lease, so concurrent
    runs sharing one cache — worker threads here, or separate OS
    processes on one :class:`~repro.workflow.cache.PersistentResultCache`
    file — compute each distinct causal signature exactly once; the
    losers wait and record the winner's published result as an ordinary
    ``"cached"`` execution with identical output hashes.
    """

    def __init__(self, registry: ModuleRegistry, *,
                 cache: Optional[CacheStore] = None,
                 listeners: Iterable[ExecutionListener] = (),
                 clock: Callable[[], float] = time.time,
                 validate: bool = True,
                 workers: Optional[int] = None,
                 backend: Optional[str] = None,
                 registry_provider: Optional[str] = None,
                 payload_spill_threshold: Optional[int] = None,
                 retry=None,
                 fault_plan: Optional[FaultPlan] = None) -> None:
        self.registry = registry
        self.cache = cache
        self.retry = retry
        self.fault_plan = fault_plan
        self.listeners: List[ExecutionListener] = list(listeners)
        self._rebuild_dispatch()
        self.clock = clock
        self.validate = validate
        self.workers = workers
        self.backend = backend
        self.registry_provider = (registry_provider
                                  or DEFAULT_REGISTRY_PROVIDER)
        self.payload_spill_threshold = (
            DEFAULT_SPILL_THRESHOLD if payload_spill_threshold is None
            else payload_spill_threshold)
        self._environment: Optional[Dict[str, Any]] = None
        self._listener_lock = threading.Lock()
        # leases currently held by this executor's runs, refreshed by a
        # lazily-started heartbeat so long computations are never stolen
        self._held_leases: Dict[Tuple[str, str], CacheStore] = {}
        self._lease_lock = threading.Lock()
        self._heartbeat: Optional[threading.Thread] = None
        self._heartbeat_stop = threading.Event()

    # -- lease bookkeeping ------------------------------------------------
    def _register_lease(self, cache: CacheStore, cache_key: str,
                        owner: str) -> None:
        """Track a held lease and make sure the heartbeat is running."""
        with self._lease_lock:
            self._held_leases[(cache_key, owner)] = cache
            if self._heartbeat is None or not self._heartbeat.is_alive():
                self._heartbeat_stop.clear()
                self._heartbeat = threading.Thread(
                    target=self._heartbeat_loop,
                    name="repro-lease-heartbeat", daemon=True)
                self._heartbeat.start()

    def _release_lease(self, cache: CacheStore, cache_key: str,
                       owner: str) -> None:
        """Stop refreshing and give up one held lease."""
        with self._lease_lock:
            self._held_leases.pop((cache_key, owner), None)
            if not self._held_leases:
                # wake the heartbeat so it exits now instead of lingering
                # a full interval past the run — no leaked threads when
                # the run unwinds (normally or not)
                self._heartbeat_stop.set()
        cache.release_lease(cache_key, owner)

    def _heartbeat_loop(self) -> None:  # pragma: no cover - timing loop
        """Refresh every held lease well inside its TTL while any is held.

        Re-acquiring one's own lease extends the expiry on both cache
        implementations, so a lease only lapses when the whole process
        (and with it this thread) died mid-compute — exactly the case
        waiters are meant to steal.  The thread terminates as soon as
        the last held lease is released; a later run restarts it.
        """
        while True:
            self._heartbeat_stop.wait(_HEARTBEAT_INTERVAL)
            with self._lease_lock:
                if not self._held_leases:
                    self._heartbeat = None
                    self._heartbeat_stop.clear()
                    return
                self._heartbeat_stop.clear()
                held = list(self._held_leases.items())
            for (cache_key, owner), cache in held:
                try:
                    cache.acquire_lease(cache_key, owner)
                except Exception:
                    pass  # a broken cache already grants every lease

    def add_listener(self, listener: ExecutionListener) -> None:
        """Attach an additional execution listener."""
        self.listeners.append(listener)
        self._rebuild_dispatch()

    #: every listener event the engine can emit.
    _EVENTS = ("on_run_start", "on_module_start", "on_module_finish",
               "on_run_finish")

    def _rebuild_dispatch(self) -> None:
        """Precompute per-event bound-method lists for :meth:`_notify`.

        Listener dispatch sits on the engine's hot path (two events per
        module); resolving ``getattr`` per event and calling inherited
        no-op stubs is measurable at high module rates.  Methods that are
        exactly the :class:`ExecutionListener` base stubs are filtered out
        here, once, so executors with no listeners (or listeners that only
        care about run boundaries) skip those events entirely.  Mutating
        :attr:`listeners` directly requires calling this again —
        :meth:`add_listener` does.
        """
        table: Dict[str, Tuple[Callable[..., None], ...]] = {}
        for name in self._EVENTS:
            stub = getattr(ExecutionListener, name)
            bound = []
            for listener in self.listeners:
                method = getattr(listener, name, None)
                if method is None:
                    continue
                if getattr(method, "__func__", method) is stub:
                    continue
                bound.append(method)
            table[name] = tuple(bound)
        self._dispatch_table = table

    # -- environment ------------------------------------------------------
    def environment(self) -> Dict[str, Any]:
        """The execution environment recorded on runs.

        Probed from the host once per executor and cached — environment
        capture walks platform/interpreter metadata, which is pure overhead
        when repeated for every run of a sweep.  Call
        :meth:`refresh_environment` after anything that could change the
        host record (e.g. upgrading a library in-process).
        """
        if self._environment is None:
            self._environment = capture_environment()
        return self._environment

    def refresh_environment(self) -> Dict[str, Any]:
        """Re-probe the host environment and cache the new snapshot."""
        self._environment = capture_environment()
        return self._environment

    # -- execution --------------------------------------------------------
    def execute(self, workflow: Workflow, *,
                inputs: Optional[Mapping[InputKey, Any]] = None,
                parameter_overrides: Optional[
                    Mapping[str, Mapping[str, Any]]] = None,
                tags: Optional[Mapping[str, Any]] = None,
                reuse: Optional[Mapping[str, ReusedModule]] = None,
                bypass_cache: Iterable[str] = (),
                workers: Optional[int] = None,
                backend: Optional[str] = None) -> RunResult:
        """Run ``workflow`` and return the complete :class:`RunResult`.

        Args:
            inputs: values injected into otherwise-unconnected input ports,
                keyed by ``(module_id, port_name)``.
            parameter_overrides: per-module parameter values layered on top
                of the instance's own overrides (used by parameter sweeps).
            tags: free-form metadata attached to the run record.
            reuse: modules whose outputs are served from recorded
                provenance instead of computing (see :class:`ReusedModule`);
                they finish instantly with ``"cached"`` status.
            bypass_cache: module ids that must genuinely compute this run —
                their memo-cache lookup is skipped (the fresh result still
                refreshes the cache).  Used by forced replays.
            workers: per-call override of the executor's parallelism.
            backend: per-call override of the executor's backend kind
                (``"serial"``, ``"thread"`` or ``"process"``).
        """
        external = {key: ValueRecord.of(value)
                    for key, value in (inputs or {}).items()}
        overrides = {module_id: dict(values) for module_id, values
                     in (parameter_overrides or {}).items()}
        reused = dict(reuse or {})
        for module_id in reused:
            if module_id not in workflow.modules:
                raise ExecutionError(
                    f"reuse names a module not in the workflow: {module_id}")
        if self.validate:
            self._validate(workflow, external, reused)

        run_id = new_id("run")
        environment = self.environment()
        run_tags = dict(tags or {})
        started = self.clock()
        self._notify("on_run_start", run_id, workflow, environment, run_tags)

        # Raises CycleError up front; also the canonical result order.
        order = workflow.topological_order()
        results = self._run_scheduled(
            run_id, workflow, external, overrides, reused,
            set(bypass_cache),
            workers if workers is not None else self.workers,
            backend if backend is not None else self.backend)

        finished = self.clock()
        status = ("failed" if any(r.status == "failed"
                                  for r in results.values()) else "ok")
        run = RunResult(run_id=run_id, workflow=workflow, status=status,
                        results=results, order=order,
                        environment=environment, started=started,
                        finished=finished, tags=run_tags)
        self._notify("on_run_finish", run)
        return run

    # ------------------------------------------------------------------
    # scheduling loop
    # ------------------------------------------------------------------
    def _run_scheduled(self, run_id: str, workflow: Workflow,
                       external: Mapping[InputKey, ValueRecord],
                       overrides: Mapping[str, Dict[str, Any]],
                       reused: Mapping[str, ReusedModule],
                       bypass_cache: set,
                       workers: Optional[int],
                       backend_kind: Optional[str]
                       ) -> Dict[str, ModuleResult]:
        scheduler = ReadySetScheduler(workflow)
        backend = make_backend(workers, backend_kind)
        # Serial runs pop one ready module at a time, which reproduces the
        # canonical Kahn order exactly (execution timestamps then follow
        # run.order, as the historical sequential engine guaranteed);
        # parallel runs dispatch whole ready batches for concurrency.
        one_at_a_time = isinstance(backend, SerialBackend)
        results: Dict[str, ModuleResult] = {}
        # per-module state a process job needs back in this process to be
        # converted into a ModuleResult (definition, inputs, cache key)
        pending: Dict[str, _PendingProcessJob] = {}
        # large process-job values spill here instead of the executor
        # pipe; the whole directory is torn down with the run
        spill_dir = ""
        if backend.out_of_process and self.payload_spill_threshold > 0:
            spill_dir = tempfile.mkdtemp(prefix="repro-spill-")

        def settle(module_id: str, result: ModuleResult) -> None:
            results[module_id] = result
            self._notify("on_module_finish", run_id,
                         workflow.modules[module_id], result)
            scheduler.resolve(module_id)

        def harvest(module_id: str, completion: Any) -> None:
            if backend.out_of_process:
                converted = self._process_attempt(
                    pending[module_id], completion, backend)
                if converted is None:
                    return  # re-dispatched for another attempt
                pending.pop(module_id)
                completion = converted
            settle(module_id, completion)

        def drain() -> None:
            # harvest whatever is done right now without blocking — also
            # called while a dispatch waits on another run's cache lease,
            # so our own completions keep publishing (no two runs can
            # deadlock waiting on each other's unharvested results)
            for done_id, completion in backend.poll():
                harvest(done_id, completion)

        try:
            while not scheduler.finished():
                if not scheduler.has_ready():
                    if not backend.outstanding():
                        raise ExecutionError(
                            "scheduler stalled with unresolved modules: "
                            f"{scheduler.unresolved()}")
                    slack = (self._deadline_slack(pending)
                             if backend.out_of_process else None)
                    for module_id, completion in backend.wait(
                            timeout=slack):
                        harvest(module_id, completion)
                    if backend.out_of_process:
                        self._enforce_deadlines(pending, backend, harvest)
                    continue
                ready = ([scheduler.pop_ready()] if one_at_a_time
                         else scheduler.take_ready())
                for module_id in ready:
                    self._dispatch(run_id, workflow, module_id, results,
                                   external, overrides, reused,
                                   bypass_cache, backend, settle, pending,
                                   drain, spill_dir)
                    # Harvest promptly: with the serial backend this keeps
                    # the legacy start/finish interleaving (and frees the
                    # completed job's memory before the next submission).
                    drain()
        finally:
            backend.shutdown()
            # an abnormal unwind (listener exception, interrupt) can
            # leave harvested-never jobs in pending; give their leases
            # back now instead of making waiters ride out the TTL
            for job in pending.values():
                if job.lease_owner and self.cache is not None:
                    self._release_lease(self.cache, job.cache_key,
                                        job.lease_owner)
            if spill_dir:
                shutil.rmtree(spill_dir, ignore_errors=True)
        return results

    def _dispatch(self, run_id: str, workflow: Workflow, module_id: str,
                  results: Dict[str, ModuleResult],
                  external: Mapping[InputKey, ValueRecord],
                  overrides: Mapping[str, Dict[str, Any]],
                  reused: Mapping[str, ReusedModule],
                  bypass_cache: set,
                  backend, settle, pending, drain, spill_dir) -> None:
        """Decide what a ready module does: skip, reuse, or compute."""
        module = workflow.modules[module_id]
        definition = self.registry.get(module.type_name)
        parameters = definition.resolve_parameters(module.parameters)
        parameters.update(overrides.get(module_id, {}))

        input_records, blocked = self._gather_inputs(
            workflow, module, results, external)
        if blocked:
            settle(module_id, ModuleResult(
                module_id=module_id, execution_id=new_id("exec"),
                status="skipped", parameters=parameters,
                error=f"upstream failure in {blocked}"))
            return

        reuse_record = reused.get(module_id)
        if reuse_record is not None:
            # same event contract as a memo-cache hit: start then a
            # "cached" finish, so listeners always see balanced pairs
            self._notify("on_module_start", run_id, module, parameters)
            now = self.clock()
            settle(module_id, ModuleResult(
                module_id=module_id, execution_id=new_id("exec"),
                status="cached",
                parameters=dict(reuse_record.parameters) or parameters,
                inputs=input_records,
                outputs=dict(reuse_record.outputs),
                started=now, finished=now,
                cache_key=reuse_record.cache_key,
                cached_from=reuse_record.source_execution))
            return

        self._notify("on_module_start", run_id, module, parameters)
        consult_cache = module_id not in bypass_cache
        if backend.out_of_process:
            hit = self._dispatch_process(module, definition, parameters,
                                         input_records, consult_cache,
                                         backend, pending, drain,
                                         spill_dir)
            if hit is not None:
                settle(module_id, hit)
            return
        backend.submit(module_id, self._make_job(
            module, definition, parameters, input_records,
            consult_cache=consult_cache))

    def _cached_result(self, module_id: str, parameters: Dict[str, Any],
                       input_records: Dict[str, ValueRecord],
                       cache_key: str, entry: CacheEntry) -> ModuleResult:
        """A ``"cached"`` result replaying a published cache entry."""
        now = self.clock()
        return ModuleResult(
            module_id=module_id, execution_id=new_id("exec"),
            status="cached", parameters=parameters,
            inputs=input_records,
            outputs={port: ValueRecord(entry.outputs[port],
                                       entry.output_hashes[port])
                     for port in entry.outputs},
            started=now, finished=now, cache_key=cache_key,
            cached_from=entry.source_execution)

    def _lease_or_wait(self, cache_key: str,
                       drain: Optional[Callable[[], None]] = None):
        """Claim the right to compute ``cache_key``, or wait it out.

        Returns ``("compute", owner)`` when this caller holds the lease
        and must compute (then release), or ``("cached", entry)`` when a
        concurrent holder published the result first.  With ``drain``
        given (the process-backend path, where this runs on the
        coordinating thread), waiting is sliced so our own completed jobs
        keep harvesting — two runs waiting on each other's keys always
        make progress.
        """
        cache = self.cache
        owner = new_id("lease")
        while True:
            if cache.acquire_lease(cache_key, owner):
                if cache_key in cache:
                    # published between our miss and the acquire
                    entry = cache.get(cache_key)
                    cache.release_lease(cache_key, owner)
                    if entry is not None:
                        return "cached", entry
                    continue
                self._register_lease(cache, cache_key, owner)
                return "compute", owner
            entry = cache.wait_for_entry(
                cache_key, timeout=0.05 if drain is not None else None)
            if entry is not None:
                return "cached", entry
            if drain is not None:
                drain()

    def _dispatch_process(self, module: Module, definition,
                          parameters: Dict[str, Any],
                          input_records: Dict[str, ValueRecord],
                          consult_cache: bool, backend,
                          pending, drain,
                          spill_dir: str) -> Optional[ModuleResult]:
        """Submit one module to a process backend; returns a ready result
        instead when the memo cache already holds it (or a concurrent
        lease-holding run publishes it while we wait).

        The cache is consulted (and later refreshed) in the coordinating
        process — worker processes never see the cache; concurrent *runs*
        sharing one persistent cache file coordinate through its lease
        table, all on their own coordinating threads.
        """
        input_hashes = {port: record.value_hash
                        for port, record in input_records.items()}
        cache_key = module_cache_key(definition.type_name,
                                     definition.version, parameters,
                                     input_hashes)
        lease_owner = ""
        if (consult_cache and self.cache is not None
                and definition.deterministic):
            entry = self.cache.get(cache_key)
            if entry is not None:
                return self._cached_result(module.id, parameters,
                                           input_records, cache_key, entry)
            if self.cache.supports_leases:
                verdict, token = self._lease_or_wait(cache_key, drain)
                if verdict == "cached":
                    return self._cached_result(module.id, parameters,
                                               input_records, cache_key,
                                               token)
                lease_owner = token
                self._maybe_steal_lease(cache_key, lease_owner)
        pend = _PendingProcessJob(
            module=module, definition=definition, parameters=parameters,
            inputs=input_records, cache_key=cache_key,
            lease_owner=lease_owner,
            policy=resolve_retry(self.retry, definition.type_name))
        threshold = self.payload_spill_threshold if spill_dir else 0
        pend.job = ProcessJob(
            module_id=module.id, module_name=module.name,
            type_name=definition.type_name, parameters=parameters,
            inputs={port: maybe_spill(record.value, threshold, spill_dir)
                    for port, record in input_records.items()},
            registry_provider=self.registry_provider,
            spill_dir=spill_dir, spill_threshold=threshold)
        pending[module.id] = pend
        self._submit_process(backend, pend)
        return None

    def _submit_process(self, backend, pend: "_PendingProcessJob") -> None:
        """(Re)submit one pending process job, stamping any planned
        fault for this attempt and arming the attempt's deadline."""
        inject = ""
        if self.fault_plan is not None:
            spec = self.fault_plan.draw("module", pend.module.id)
            if spec is not None:
                if spec.kind == "hang":
                    inject = f"hang:{spec.detail}"
                else:  # "fail" and "kill" map directly to worker stamps
                    inject = spec.kind
        pend.job = replace(pend.job, inject=inject)
        if pend.policy.timeout is not None:
            pend.deadline = time.monotonic() + pend.policy.timeout
        backend.submit(pend.module.id, pend.job)

    def _process_attempt(self, pend: "_PendingProcessJob", outcome,
                         backend) -> Optional["ModuleResult"]:
        """Judge one harvested process outcome: settle or retry.

        Returns the final :class:`ModuleResult` (with accumulated
        attempt-tagged failures attached) when the module settles, or
        ``None`` after recording a failed attempt and re-dispatching.

        Worker-loss bookkeeping is separate from the plain-failure
        budget: a job lost to a dying worker (or a deadline-kill pool
        restart that caught it in flight) is re-dispatched up to
        ``max(policy.max_attempts, 2)`` times even under a no-retry
        policy, so innocent in-flight victims of a poison neighbour
        survive; a module that keeps killing its worker past that bound
        is quarantined (settled failed, lease released, downstream
        skipped by the ordinary graph propagation).
        """
        policy = pend.policy
        worker_lost = bool(getattr(outcome, "worker_lost", False))
        if outcome.status == "ok" and not pend.timed_out:
            result = self._result_from_outcome(pend, outcome)
            result.attempts = pend.failures
            return result
        if pend.timed_out:
            error = (f"ModuleTimeout: exceeded {policy.timeout}s "
                     "(deadline-kill)")
            pend.timed_out = False
            retryable = pend.attempt < policy.max_attempts
        elif worker_lost:
            pend.worker_losses += 1
            allowed = max(policy.max_attempts, 2)
            retryable = (pend.worker_losses < allowed
                         and not getattr(backend, "_dead", False))
            error = outcome.error
            if not retryable:
                error = (f"poison module quarantined after losing its "
                         f"worker {pend.worker_losses} time(s): "
                         f"{outcome.error}")
        else:
            error = outcome.error
            retryable = pend.attempt < policy.max_attempts
        if not retryable:
            final = self._result_from_outcome(
                pend, replace(outcome, status="failed", error=error))
            final.attempts = pend.failures
            return final
        pend.failures.append(self._attempt_result(pend, outcome, error))
        delay = policy.delay(pend.module.id, pend.attempt)
        pend.attempt += 1
        if delay > 0:
            time.sleep(delay)
        self._submit_process(backend, pend)
        return None

    def _attempt_result(self, pend: "_PendingProcessJob", outcome,
                        error: str) -> "ModuleResult":
        """An attempt-tagged failed result for one retried attempt."""
        if self.clock is not time.time:
            started = finished = self.clock()
        else:
            started = outcome.started or self.clock()
            finished = outcome.finished or started
        return ModuleResult(
            module_id=pend.module.id, execution_id=new_id("exec"),
            status="failed", parameters=pend.parameters,
            inputs=pend.inputs, started=started, finished=finished,
            cache_key=pend.cache_key, error=error,
            attempt=len(pend.failures) + 1)

    @staticmethod
    def _deadline_slack(pending: Dict[str, "_PendingProcessJob"]
                        ) -> Optional[float]:
        """Seconds until the earliest in-flight deadline (None if no
        pending job carries one) — the wait timeout that keeps hung
        workers from stalling the coordination loop."""
        deadlines = [pend.deadline for pend in pending.values()
                     if pend.deadline is not None and not pend.timed_out]
        if not deadlines:
            return None
        return max(0.05, min(deadlines) - time.monotonic())

    def _enforce_deadlines(self, pending: Dict[str, "_PendingProcessJob"],
                           backend, harvest) -> None:
        """Deadline-kill: mark overdue jobs timed out and restart the
        pool; every in-flight job comes back worker-lost and is routed
        through :meth:`_process_attempt` (timeout attempt for the
        overdue ones, free re-dispatch for the innocent victims)."""
        now = time.monotonic()
        overdue = [pend for pend in pending.values()
                   if pend.deadline is not None and now >= pend.deadline
                   and not pend.timed_out]
        if not overdue:
            return
        for pend in overdue:
            pend.timed_out = True
        restart = getattr(backend, "restart", None)
        if restart is None:
            return
        for module_id, outcome in restart():
            harvest(module_id, outcome)

    def _maybe_steal_lease(self, cache_key: str, lease_owner: str) -> None:
        """Fault seam: simulate another process stealing our compute
        lease (TTL expiry + takeover) right after acquisition."""
        if self.fault_plan is None or not lease_owner:
            return
        spec = self.fault_plan.draw("lease", cache_key)
        if spec is not None and spec.kind == "steal":
            self.cache.release_lease(cache_key, lease_owner)
            self.cache.acquire_lease(cache_key, f"thief-{lease_owner}")

    def _result_from_outcome(self, job: "_PendingProcessJob",
                             outcome) -> ModuleResult:
        """Convert a worker-process outcome into a :class:`ModuleResult`.

        Output values are hashed and checked against the declared ports
        here, in the coordinating process, so the recorded provenance
        (hashes, statuses, cache entries) is byte-identical to an
        in-process execution of the same module.

        Workers stamp timestamps with wall-clock time; when the executor
        runs under an *injected* clock (deterministic tests), those
        stamps are replaced with coordinator-clock readings so every
        backend records timestamps from the same time base.

        The memo-cache entry is published *before* the module's compute
        lease (if any) is released, so concurrent runs waiting on the
        lease always find the result.
        """
        try:
            if self.clock is not time.time:
                now = self.clock()
                outcome = replace(outcome, started=now, finished=now)
            if outcome.status != "ok":
                return ModuleResult(
                    module_id=job.module.id, execution_id=new_id("exec"),
                    status="failed", parameters=job.parameters,
                    inputs=job.inputs, started=outcome.started,
                    finished=outcome.finished, cache_key=job.cache_key,
                    error=outcome.error)
            try:
                outputs = self._check_outputs(
                    job.definition, resolve_spilled(outcome.outputs))
            except Exception as exc:
                return ModuleResult(
                    module_id=job.module.id, execution_id=new_id("exec"),
                    status="failed", parameters=job.parameters,
                    inputs=job.inputs, started=outcome.started,
                    finished=outcome.finished, cache_key=job.cache_key,
                    error=f"{type(exc).__name__}: {exc}")
            execution_id = new_id("exec")
            records = {port: ValueRecord.of(value)
                       for port, value in outputs.items()}
            result = ModuleResult(
                module_id=job.module.id, execution_id=execution_id,
                status="ok", parameters=job.parameters, inputs=job.inputs,
                outputs=records, started=outcome.started,
                finished=outcome.finished, cache_key=job.cache_key)
            if self.cache is not None and job.definition.deterministic:
                self.cache.put(job.cache_key, CacheEntry(
                    outputs=dict(outputs),
                    output_hashes={p: r.value_hash
                                   for p, r in records.items()},
                    source_execution=execution_id))
            return result
        finally:
            if job.lease_owner and self.cache is not None:
                self._release_lease(self.cache, job.cache_key,
                                    job.lease_owner)

    def _make_job(self, module: Module, definition,
                  parameters: Dict[str, Any],
                  input_records: Dict[str, ValueRecord],
                  consult_cache: bool = True):
        """A backend job computing one module; never raises."""
        policy = resolve_retry(self.retry, definition.type_name)

        def job() -> ModuleResult:
            try:
                return self._compute_with_retry(
                    module, definition, parameters, input_records, policy,
                    consult_cache=consult_cache)
            except Exception as exc:  # defensive: job must not raise
                now = self.clock()
                return ModuleResult(
                    module_id=module.id, execution_id=new_id("exec"),
                    status="failed", parameters=parameters,
                    inputs=input_records, started=now, finished=now,
                    error=f"{type(exc).__name__}: {exc}")
        return job

    def _compute_with_retry(self, module: Module, definition,
                            parameters: Dict[str, Any],
                            input_records: Dict[str, ValueRecord],
                            policy: RetryPolicy,
                            consult_cache: bool = True) -> ModuleResult:
        """Retry loop around :meth:`_compute_module` (in-process path).

        Each failed attempt (except the last, which is the module's
        final result) is attempt-tagged and accumulated on the final
        result's ``attempts`` — provenance records every try, artifacts
        only come from the final success.
        """
        failures: List[ModuleResult] = []
        attempt = 1
        while True:
            deadline = (time.monotonic() + policy.timeout
                        if policy.timeout is not None else None)
            result = self._compute_module(module, definition, parameters,
                                          input_records,
                                          consult_cache=consult_cache,
                                          deadline=deadline)
            if result.status != "failed" or attempt >= policy.max_attempts:
                result.attempts = failures
                return result
            result.attempt = len(failures) + 1
            failures.append(result)
            delay = policy.delay(module.id, attempt)
            attempt += 1
            if delay > 0:
                time.sleep(delay)

    # ------------------------------------------------------------------
    def _validate(self, workflow: Workflow,
                  external: Mapping[InputKey, ValueRecord],
                  reused: Mapping[str, ReusedModule]) -> None:
        issues = check_workflow(workflow, self.registry)
        errors = []
        for issue in issues:
            if not issue.is_error():
                continue
            if issue.code == "unbound-input":
                if issue.subject in reused:
                    # reused modules never compute, so their unbound
                    # mandatory inputs are irrelevant
                    continue
                bound_here = any(key[0] == issue.subject for key in external)
                if bound_here and self._unbound_satisfied(
                        workflow, issue.subject, external):
                    continue
            errors.append(issue)
        if errors:
            summary = "; ".join(f"[{i.code}] {i.message}" for i in errors)
            raise ExecutionError(f"cannot execute workflow: {summary}")

    def _unbound_satisfied(self, workflow: Workflow, module_id: str,
                           external: Mapping[InputKey, ValueRecord]) -> bool:
        definition = self.registry.get(
            workflow.modules[module_id].type_name)
        connected = {c.target_port for c in workflow.incoming(module_id)}
        for port in definition.input_ports:
            if port.optional or port.name in connected:
                continue
            if (module_id, port.name) not in external:
                return False
        return True

    def _compute_module(self, module: Module, definition,
                        parameters: Dict[str, Any],
                        input_records: Dict[str, ValueRecord],
                        consult_cache: bool = True,
                        deadline: Optional[float] = None) -> ModuleResult:
        """Run one module (worker-thread side): cache check, compute, memo.

        On a miss against a lease-capable cache, a per-key compute lease
        is claimed first; losing the claim means another thread or run is
        already computing this exact causal signature, so this module
        waits and replays the published entry as a ``"cached"`` result
        instead of duplicating the work.  Lease holders never wait on
        other leases (they go straight to compute), so waiting cannot
        deadlock.
        """
        input_hashes = {port: record.value_hash
                        for port, record in input_records.items()}
        cache_key = module_cache_key(definition.type_name,
                                     definition.version, parameters,
                                     input_hashes)
        lease_owner = ""
        if (consult_cache and self.cache is not None
                and definition.deterministic):
            entry = self.cache.get(cache_key)
            if entry is not None:
                return self._cached_result(module.id, parameters,
                                           input_records, cache_key, entry)
            if self.cache.supports_leases:
                verdict, token = self._lease_or_wait(cache_key)
                if verdict == "cached":
                    return self._cached_result(module.id, parameters,
                                               input_records, cache_key,
                                               token)
                lease_owner = token
                self._maybe_steal_lease(cache_key, lease_owner)
        try:
            started = self.clock()
            execution_id = new_id("exec")
            context = ModuleContext(
                inputs={port: record.value
                        for port, record in input_records.items()},
                parameters=parameters, module_name=module.name,
                deadline=deadline)
            try:
                if self.fault_plan is not None:
                    spec = self.fault_plan.draw("module", module.id)
                    if spec is not None:
                        if spec.kind == "hang":
                            time.sleep(spec.detail)
                        else:  # "fail"; "kill" degrades to fail in-process
                            raise FaultInjected(
                                f"injected {spec.kind} fault for "
                                f"{module.id}")
                raw_outputs = definition.compute(context)
                outputs = self._check_outputs(definition, raw_outputs)
            except Exception as exc:
                return ModuleResult(
                    module_id=module.id, execution_id=execution_id,
                    status="failed", parameters=parameters,
                    inputs=input_records, started=started,
                    finished=self.clock(), cache_key=cache_key,
                    error=f"{type(exc).__name__}: {exc}\n"
                          f"{traceback.format_exc(limit=3)}")
            if deadline is not None and time.monotonic() > deadline:
                # overdue success counts as a timeout: no artifacts, no
                # cache publication — the retry (if any) recomputes
                return ModuleResult(
                    module_id=module.id, execution_id=execution_id,
                    status="failed", parameters=parameters,
                    inputs=input_records, started=started,
                    finished=self.clock(), cache_key=cache_key,
                    error="ModuleTimeout: cooperative deadline exceeded")

            records = {port: ValueRecord.of(value)
                       for port, value in outputs.items()}
            result = ModuleResult(
                module_id=module.id, execution_id=execution_id,
                status="ok", parameters=parameters, inputs=input_records,
                outputs=records, started=started, finished=self.clock(),
                cache_key=cache_key)
            if self.cache is not None and definition.deterministic:
                self.cache.put(cache_key, CacheEntry(
                    outputs=dict(outputs),
                    output_hashes={p: r.value_hash
                                   for p, r in records.items()},
                    source_execution=execution_id))
            return result
        finally:
            if lease_owner:
                self._release_lease(self.cache, cache_key, lease_owner)

    def _gather_inputs(self, workflow: Workflow, module: Module,
                       results: Dict[str, ModuleResult],
                       external: Mapping[InputKey, ValueRecord]
                       ) -> Tuple[Dict[str, ValueRecord], str]:
        """Resolve input port values; return (records, blocking_module_id).

        Connections are visited in target-port order, so the blocking
        module reported for a skip is deterministic regardless of which
        upstream failure resolved first.
        """
        records: Dict[str, ValueRecord] = {}
        for connection in workflow.incoming(module.id):
            upstream = results[connection.source_module]
            if not upstream.succeeded():
                return {}, connection.source_module
            if connection.source_port not in upstream.outputs:
                return {}, connection.source_module
            records[connection.target_port] = (
                upstream.outputs[connection.source_port])
        for (module_id, port), record in external.items():
            if module_id == module.id and port not in records:
                records[port] = record
        return records, ""

    @staticmethod
    def _check_outputs(definition, raw_outputs: Mapping[str, Any]
                       ) -> Dict[str, Any]:
        declared = {p.name for p in definition.output_ports}
        produced = set(raw_outputs)
        missing = declared - produced
        extra = produced - declared
        if missing:
            raise ExecutionError(
                f"{definition.type_name} did not produce declared "
                f"outputs: {sorted(missing)}")
        if extra:
            raise ExecutionError(
                f"{definition.type_name} produced undeclared "
                f"outputs: {sorted(extra)}")
        return dict(raw_outputs)

    def _notify(self, event: str, *args: Any) -> None:
        """Dispatch one event to every interested listener, serialized.

        Dispatch always happens on the coordinating thread; the lock only
        guards against two *runs* of a shared executor notifying
        concurrently from different caller threads.  The precomputed
        dispatch table (see :meth:`_rebuild_dispatch`) makes the
        no-listener case lock-free and skips base-class no-op stubs.
        """
        methods = self._dispatch_table[event]
        if not methods:
            return
        with self._listener_lock:
            for method in methods:
                method(*args)
