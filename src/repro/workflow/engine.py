"""The dataflow execution engine.

The engine materializes a workflow specification: modules run in topological
order, values flow along connections, results are optionally memoized, and
every step is reported to registered listeners.  Listeners are the paper's
"capture mechanism" — the provenance subsystem observes execution through this
API without the engine depending on it.

Failure semantics: a failing module marks itself ``failed`` and everything
downstream of it ``skipped``; independent branches still run.  The run as a
whole is ``failed`` when any module failed, else ``ok``.
"""

from __future__ import annotations

import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.identity import hash_value, new_id
from repro.workflow.cache import (CacheEntry, ResultCache, module_cache_key)
from repro.workflow.environment import capture_environment
from repro.workflow.errors import ExecutionError
from repro.workflow.registry import ModuleContext, ModuleRegistry
from repro.workflow.spec import Module, Workflow
from repro.workflow.validation import check_workflow

__all__ = [
    "ValueRecord",
    "ModuleResult",
    "RunResult",
    "ExecutionListener",
    "Executor",
    "InputKey",
]

#: External input bindings are keyed by (module_id, port_name).
InputKey = Tuple[str, str]


@dataclass(frozen=True)
class ValueRecord:
    """A value paired with its content hash (artifact identity)."""

    value: Any
    value_hash: str

    @classmethod
    def of(cls, value: Any) -> "ValueRecord":
        """Wrap ``value``, computing its hash."""
        return cls(value=value, value_hash=hash_value(value))


@dataclass
class ModuleResult:
    """Outcome of one module execution within a run.

    ``status`` is one of ``"ok"``, ``"cached"``, ``"failed"``, ``"skipped"``.
    Cached results carry ``cached_from``: the execution id that originally
    computed the outputs.
    """

    module_id: str
    execution_id: str
    status: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    inputs: Dict[str, ValueRecord] = field(default_factory=dict)
    outputs: Dict[str, ValueRecord] = field(default_factory=dict)
    started: float = 0.0
    finished: float = 0.0
    error: str = ""
    cache_key: str = ""
    cached_from: str = ""

    @property
    def duration(self) -> float:
        """Wall-clock seconds spent (0 for skipped modules)."""
        return max(0.0, self.finished - self.started)

    def succeeded(self) -> bool:
        """True for ok or cached executions."""
        return self.status in ("ok", "cached")


@dataclass
class RunResult:
    """Complete record of one workflow run, as seen by the engine."""

    run_id: str
    workflow: Workflow
    status: str
    results: Dict[str, ModuleResult]
    order: List[str]
    environment: Dict[str, Any]
    started: float
    finished: float
    tags: Dict[str, Any] = field(default_factory=dict)

    def result(self, module_id: str) -> ModuleResult:
        """The :class:`ModuleResult` for ``module_id`` (KeyError if absent)."""
        return self.results[module_id]

    def output(self, module_id: str, port: str) -> Any:
        """The value produced on ``module_id.port`` in this run."""
        return self.results[module_id].outputs[port].value

    def output_hash(self, module_id: str, port: str) -> str:
        """Content hash of the value produced on ``module_id.port``."""
        return self.results[module_id].outputs[port].value_hash

    def sink_outputs(self) -> Dict[Tuple[str, str], Any]:
        """Values of every output port on every sink module."""
        values: Dict[Tuple[str, str], Any] = {}
        for module_id in self.workflow.sinks():
            module_result = self.results.get(module_id)
            if module_result is None or not module_result.succeeded():
                continue
            for port, record in module_result.outputs.items():
                values[(module_id, port)] = record.value
        return values

    def failed_modules(self) -> List[str]:
        """Ids of modules whose status is ``failed`` (sorted)."""
        return sorted(m for m, r in self.results.items()
                      if r.status == "failed")

    @property
    def duration(self) -> float:
        """Wall-clock seconds for the whole run."""
        return max(0.0, self.finished - self.started)


class ExecutionListener:
    """Observer interface for execution events (all methods optional)."""

    def on_run_start(self, run_id: str, workflow: Workflow,
                     environment: Dict[str, Any],
                     tags: Dict[str, Any]) -> None:
        """Called once before any module executes."""

    def on_module_start(self, run_id: str, module: Module,
                        parameters: Dict[str, Any]) -> None:
        """Called before a module's compute function runs."""

    def on_module_finish(self, run_id: str, module: Module,
                         result: ModuleResult) -> None:
        """Called after a module finishes (ok, cached, failed or skipped)."""

    def on_run_finish(self, result: RunResult) -> None:
        """Called once after the run completes."""


class Executor:
    """Runs workflows against a module registry.

    Args:
        registry: module definitions and the type registry.
        cache: optional :class:`ResultCache`; when present, deterministic
            modules are memoized across runs.
        listeners: observers notified of every execution event.
        clock: callable returning the current wall time (injectable for
            deterministic tests).
        validate: when True (default), specifications are statically checked
            before running; unbound ports satisfied by external inputs are
            allowed.
    """

    def __init__(self, registry: ModuleRegistry, *,
                 cache: Optional[ResultCache] = None,
                 listeners: Iterable[ExecutionListener] = (),
                 clock: Callable[[], float] = time.time,
                 validate: bool = True) -> None:
        self.registry = registry
        self.cache = cache
        self.listeners: List[ExecutionListener] = list(listeners)
        self.clock = clock
        self.validate = validate

    def add_listener(self, listener: ExecutionListener) -> None:
        """Attach an additional execution listener."""
        self.listeners.append(listener)

    def execute(self, workflow: Workflow, *,
                inputs: Optional[Mapping[InputKey, Any]] = None,
                parameter_overrides: Optional[
                    Mapping[str, Mapping[str, Any]]] = None,
                tags: Optional[Mapping[str, Any]] = None) -> RunResult:
        """Run ``workflow`` and return the complete :class:`RunResult`.

        Args:
            inputs: values injected into otherwise-unconnected input ports,
                keyed by ``(module_id, port_name)``.
            parameter_overrides: per-module parameter values layered on top
                of the instance's own overrides (used by parameter sweeps).
            tags: free-form metadata attached to the run record.
        """
        external = {key: ValueRecord.of(value)
                    for key, value in (inputs or {}).items()}
        overrides = {module_id: dict(values) for module_id, values
                     in (parameter_overrides or {}).items()}
        if self.validate:
            self._validate(workflow, external)

        run_id = new_id("run")
        environment = capture_environment()
        run_tags = dict(tags or {})
        started = self.clock()
        for listener in self.listeners:
            listener.on_run_start(run_id, workflow, environment, run_tags)

        order = workflow.topological_order()
        results: Dict[str, ModuleResult] = {}
        for module_id in order:
            module = workflow.modules[module_id]
            results[module_id] = self._run_module(
                run_id, workflow, module, results, external,
                overrides.get(module_id, {}))

        finished = self.clock()
        status = ("failed" if any(r.status == "failed"
                                  for r in results.values()) else "ok")
        run = RunResult(run_id=run_id, workflow=workflow, status=status,
                        results=results, order=order,
                        environment=environment, started=started,
                        finished=finished, tags=run_tags)
        for listener in self.listeners:
            listener.on_run_finish(run)
        return run

    # ------------------------------------------------------------------
    def _validate(self, workflow: Workflow,
                  external: Mapping[InputKey, ValueRecord]) -> None:
        issues = check_workflow(workflow, self.registry)
        errors = []
        for issue in issues:
            if not issue.is_error():
                continue
            if issue.code == "unbound-input":
                bound_here = any(key[0] == issue.subject for key in external)
                if bound_here and self._unbound_satisfied(
                        workflow, issue.subject, external):
                    continue
            errors.append(issue)
        if errors:
            summary = "; ".join(f"[{i.code}] {i.message}" for i in errors)
            raise ExecutionError(f"cannot execute workflow: {summary}")

    def _unbound_satisfied(self, workflow: Workflow, module_id: str,
                           external: Mapping[InputKey, ValueRecord]) -> bool:
        definition = self.registry.get(
            workflow.modules[module_id].type_name)
        connected = {c.target_port for c in workflow.incoming(module_id)}
        for port in definition.input_ports:
            if port.optional or port.name in connected:
                continue
            if (module_id, port.name) not in external:
                return False
        return True

    def _run_module(self, run_id: str, workflow: Workflow, module: Module,
                    results: Dict[str, ModuleResult],
                    external: Mapping[InputKey, ValueRecord],
                    extra_params: Mapping[str, Any]) -> ModuleResult:
        definition = self.registry.get(module.type_name)
        parameters = definition.resolve_parameters(module.parameters)
        parameters.update(extra_params)

        input_records, blocked = self._gather_inputs(
            workflow, module, results, external)
        if blocked:
            result = ModuleResult(
                module_id=module.id, execution_id=new_id("exec"),
                status="skipped", parameters=parameters,
                error=f"upstream failure in {blocked}")
            self._notify_finish(run_id, module, result)
            return result

        for listener in self.listeners:
            listener.on_module_start(run_id, module, parameters)

        input_hashes = {port: record.value_hash
                        for port, record in input_records.items()}
        cache_key = module_cache_key(definition.type_name,
                                     definition.version, parameters,
                                     input_hashes)
        if self.cache is not None and definition.deterministic:
            entry = self.cache.get(cache_key)
            if entry is not None:
                now = self.clock()
                result = ModuleResult(
                    module_id=module.id, execution_id=new_id("exec"),
                    status="cached", parameters=parameters,
                    inputs=input_records,
                    outputs={port: ValueRecord(entry.outputs[port],
                                               entry.output_hashes[port])
                             for port in entry.outputs},
                    started=now, finished=now, cache_key=cache_key,
                    cached_from=entry.source_execution)
                self._notify_finish(run_id, module, result)
                return result

        started = self.clock()
        execution_id = new_id("exec")
        context = ModuleContext(
            inputs={port: record.value
                    for port, record in input_records.items()},
            parameters=parameters, module_name=module.name)
        try:
            raw_outputs = definition.compute(context)
            outputs = self._check_outputs(definition, raw_outputs)
        except Exception as exc:
            result = ModuleResult(
                module_id=module.id, execution_id=execution_id,
                status="failed", parameters=parameters,
                inputs=input_records, started=started,
                finished=self.clock(), cache_key=cache_key,
                error=f"{type(exc).__name__}: {exc}\n"
                      f"{traceback.format_exc(limit=3)}")
            self._notify_finish(run_id, module, result)
            return result

        records = {port: ValueRecord.of(value)
                   for port, value in outputs.items()}
        result = ModuleResult(
            module_id=module.id, execution_id=execution_id, status="ok",
            parameters=parameters, inputs=input_records, outputs=records,
            started=started, finished=self.clock(), cache_key=cache_key)
        if self.cache is not None and definition.deterministic:
            self.cache.put(cache_key, CacheEntry(
                outputs=dict(outputs),
                output_hashes={p: r.value_hash for p, r in records.items()},
                source_execution=execution_id))
        self._notify_finish(run_id, module, result)
        return result

    def _gather_inputs(self, workflow: Workflow, module: Module,
                       results: Dict[str, ModuleResult],
                       external: Mapping[InputKey, ValueRecord]
                       ) -> Tuple[Dict[str, ValueRecord], str]:
        """Resolve input port values; return (records, blocking_module_id)."""
        records: Dict[str, ValueRecord] = {}
        for connection in workflow.incoming(module.id):
            upstream = results[connection.source_module]
            if not upstream.succeeded():
                return {}, connection.source_module
            if connection.source_port not in upstream.outputs:
                return {}, connection.source_module
            records[connection.target_port] = (
                upstream.outputs[connection.source_port])
        for (module_id, port), record in external.items():
            if module_id == module.id and port not in records:
                records[port] = record
        return records, ""

    @staticmethod
    def _check_outputs(definition, raw_outputs: Mapping[str, Any]
                       ) -> Dict[str, Any]:
        declared = {p.name for p in definition.output_ports}
        produced = set(raw_outputs)
        missing = declared - produced
        extra = produced - declared
        if missing:
            raise ExecutionError(
                f"{definition.type_name} did not produce declared "
                f"outputs: {sorted(missing)}")
        if extra:
            raise ExecutionError(
                f"{definition.type_name} produced undeclared "
                f"outputs: {sorted(extra)}")
        return dict(raw_outputs)

    def _notify_finish(self, run_id: str, module: Module,
                       result: ModuleResult) -> None:
        for listener in self.listeners:
            listener.on_module_finish(run_id, module, result)
