"""Ready-set dataflow scheduling for workflow execution.

Cuevas-Vicenttín et al. frame dataflow engines as schedulers over *ready
sets*: a module becomes schedulable the moment every one of its upstream
dependencies has resolved, independent of any global serialization.  This
module provides the two halves of that architecture for the engine:

* :class:`ReadySetScheduler` — pure bookkeeping over the workflow DAG.
  Modules carry explicit unresolved-dependency counts; resolving a module
  (in any status — ok, cached, failed or skipped) decrements its dependents
  and surfaces newly-ready modules.  Whether a ready module actually
  computes or is skipped because an upstream failed is the engine's call;
  the scheduler only guarantees that the question is asked exactly once per
  module, after all of its inputs are settled.  Ready batches are sorted by
  module id, so scheduling decisions are deterministic regardless of
  completion timing.

* Execution backends — where ready work physically runs.
  :class:`SerialBackend` executes each job synchronously at submission (the
  deterministic default, equivalent to the old topological loop);
  :class:`ThreadPoolBackend` fans jobs out to a ``ThreadPoolExecutor`` so
  independent branches overlap; :class:`ProcessPoolBackend` ships jobs to a
  ``ProcessPoolExecutor`` so pure-Python CPU-bound modules scale past the
  GIL.  All three expose the same tiny submit/poll/wait surface, so the
  engine's coordination loop is backend-agnostic.

In-process backends receive callables and must never see them raise: the
engine wraps module computation so failures come back as ordinary failed
results.  The process backend instead receives picklable
:class:`~repro.workflow.serialization.ProcessJob` payloads (its
``out_of_process`` flag tells the engine which contract applies) and
returns :class:`~repro.workflow.serialization.ProcessOutcome` records;
worker crashes and unpicklable results are converted to failed outcomes at
harvest, never raised into the scheduling loop.  Values above the job's
spill threshold cross the boundary as
:class:`~repro.workflow.serialization.SpilledValue` file references
rather than in-pipe pickles, so the futures queued here stay small no
matter how large the artifacts are.
"""

from __future__ import annotations

import bisect
from concurrent.futures import (FIRST_COMPLETED, BrokenExecutor, Future,
                                ProcessPoolExecutor, ThreadPoolExecutor)
from concurrent.futures import wait as futures_wait
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.workflow.errors import ExecutionError
from repro.workflow.serialization import ProcessOutcome, execute_process_job
from repro.workflow.spec import Workflow

__all__ = [
    "ReadySetScheduler",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadPoolBackend",
    "ProcessPoolBackend",
    "BACKEND_KINDS",
    "make_backend",
]

#: A unit of schedulable work: returns the module's result object.
Job = Callable[[], Any]


class ReadySetScheduler:
    """Dependency-counting scheduler state over one workflow DAG.

    The lifecycle of every module id is ``pending -> ready -> issued ->
    resolved``.  A module is *ready* when all of its distinct upstream
    modules are resolved; :meth:`take_ready` hands out the current ready
    batch (sorted, for determinism) exactly once; :meth:`resolve` settles a
    module and promotes any dependents whose last dependency it was.
    """

    def __init__(self, workflow: Workflow) -> None:
        self._remaining: Dict[str, int] = {
            module_id: len(workflow.predecessors(module_id))
            for module_id in workflow.modules}
        self._dependents: Dict[str, List[str]] = {
            module_id: workflow.successors(module_id)
            for module_id in workflow.modules}
        self._ready: List[str] = sorted(
            m for m, count in self._remaining.items() if count == 0)
        self._issued: set = set()
        self._resolved: set = set()

    # -- state transitions ------------------------------------------------
    def take_ready(self) -> List[str]:
        """Pop and return every currently-ready module id (sorted)."""
        batch, self._ready = self._ready, []
        self._issued.update(batch)
        return batch

    def pop_ready(self) -> str:
        """Pop and return the smallest ready module id (IndexError if none).

        Popping one module at a time and resolving it before the next pop
        reproduces exactly the canonical Kahn order of
        :meth:`Workflow.topological_order` — the serial engine uses this so
        execution timestamps follow the recorded ``run.order``.
        """
        module_id = self._ready.pop(0)
        self._issued.add(module_id)
        return module_id

    def resolve(self, module_id: str) -> List[str]:
        """Settle ``module_id``; return dependents that just became ready.

        Resolution is status-agnostic: failed and skipped modules resolve
        exactly like successful ones, which is what lets the engine decide
        skip propagation from the dependency graph instead of from a
        precomputed global order.
        """
        if module_id in self._resolved:
            raise ExecutionError(
                f"module resolved twice in scheduler: {module_id}")
        self._resolved.add(module_id)
        self._issued.discard(module_id)
        promoted: List[str] = []
        for dependent in self._dependents[module_id]:
            self._remaining[dependent] -= 1
            if self._remaining[dependent] == 0:
                bisect.insort(self._ready, dependent)
                promoted.append(dependent)
        return promoted

    # -- queries ----------------------------------------------------------
    def has_ready(self) -> bool:
        """True when at least one module is waiting in the ready set."""
        return bool(self._ready)

    def outstanding(self) -> int:
        """Modules issued (taken from the ready set) but not yet resolved."""
        return len(self._issued)

    def finished(self) -> bool:
        """True when every module has resolved."""
        return len(self._resolved) == len(self._remaining)

    def unresolved(self) -> List[str]:
        """Module ids not yet resolved (sorted) — for stall diagnostics."""
        return sorted(set(self._remaining) - self._resolved)


class ExecutionBackend:
    """Where ready jobs physically run.

    The engine submits ``(module_id, job)`` pairs and harvests
    ``(module_id, result)`` completions via :meth:`poll` (non-blocking) and
    :meth:`wait` (blocks until at least one job completes).  Implementations
    must preserve nothing about ordering — the engine's scheduler state is
    the single source of truth.

    ``out_of_process`` declares the submission contract: False (the
    default) means jobs are in-process callables returning results
    directly; True means jobs are picklable payloads and completions are
    raw outcomes the engine converts back into results.
    """

    #: True when jobs cross a process boundary (see class docstring).
    out_of_process: bool = False

    def submit(self, module_id: str, job: Job) -> None:
        """Accept one job for execution."""
        raise NotImplementedError

    def poll(self) -> List[Tuple[str, Any]]:
        """Completions available right now (possibly empty); non-blocking."""
        raise NotImplementedError

    def wait(self, timeout: Optional[float] = None
             ) -> List[Tuple[str, Any]]:
        """Block until a completion is available (or ``timeout`` seconds
        elapse), return all completions harvested — possibly empty after
        a timeout.  The engine passes a timeout when module deadlines
        are pending so hung jobs cannot stall the coordination loop."""
        raise NotImplementedError

    def outstanding(self) -> int:
        """Jobs submitted but not yet harvested."""
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release any resources (idempotent)."""


class SerialBackend(ExecutionBackend):
    """Runs each job synchronously at submission time.

    This is the deterministic default: combined with the sorted ready
    batches of :class:`ReadySetScheduler` it reproduces the exact execution
    and listener-event order of the historical sequential engine.
    """

    def __init__(self) -> None:
        self._completed: List[Tuple[str, Any]] = []

    def submit(self, module_id: str, job: Job) -> None:
        self._completed.append((module_id, job()))

    def poll(self) -> List[Tuple[str, Any]]:
        completed, self._completed = self._completed, []
        return completed

    def wait(self, timeout: Optional[float] = None
             ) -> List[Tuple[str, Any]]:
        if not self._completed:
            raise ExecutionError(
                "serial backend has no outstanding work to wait for")
        return self.poll()

    def outstanding(self) -> int:
        return len(self._completed)


class ThreadPoolBackend(ExecutionBackend):
    """Fans jobs out to a thread pool so independent branches overlap.

    Suited to workloads dominated by blocking work (I/O, ``time.sleep``,
    extension code releasing the GIL); pure-Python CPU loops serialize on
    the GIL and see no speedup.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ExecutionError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-worker")
        self._futures: Dict[Future, str] = {}

    def submit(self, module_id: str, job: Job) -> None:
        self._futures[self._pool.submit(job)] = module_id

    def _harvest(self, futures: List[Future]) -> List[Tuple[str, Any]]:
        return [(self._futures.pop(future), future.result())
                for future in futures]

    def poll(self) -> List[Tuple[str, Any]]:
        return self._harvest([f for f in list(self._futures) if f.done()])

    def wait(self, timeout: Optional[float] = None
             ) -> List[Tuple[str, Any]]:
        if not self._futures:
            raise ExecutionError(
                "thread backend has no outstanding work to wait for")
        done, _ = futures_wait(list(self._futures), timeout=timeout,
                               return_when=FIRST_COMPLETED)
        return self._harvest(list(done))

    def outstanding(self) -> int:
        return len(self._futures)

    def shutdown(self) -> None:
        self._pool.shutdown(wait=True)


class ProcessPoolBackend(ExecutionBackend):
    """Ships jobs to worker processes so CPU-bound modules bypass the GIL.

    Jobs are :class:`~repro.workflow.serialization.ProcessJob` payloads
    (the engine builds them; compute closures never cross the boundary)
    and completions are
    :class:`~repro.workflow.serialization.ProcessOutcome` records.  A
    worker that dies, or a result that cannot be pickled back, surfaces as
    a failed outcome at harvest — the coordination loop never sees an
    exception.  Suited to pure-Python CPU loops (hashing, numerics);
    values must be picklable, and module behaviour must be reachable
    through an importable registry provider.  Large values arrive and
    leave as spill-file references (see the module docstring), keeping
    the executor pipe and this backend's future map byte-light.
    """

    out_of_process = True

    def __init__(self, workers: int, max_restarts: int = 3) -> None:
        if workers < 1:
            raise ExecutionError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        #: Worker-crash pool recreations allowed before failing fast.
        #: Deadline-kill restarts (:meth:`restart`) are policy-driven
        #: and do not charge this budget.
        self.max_restarts = max_restarts
        self.restarts = 0
        self._dead = False
        self._pool: Optional[ProcessPoolExecutor] = ProcessPoolExecutor(
            max_workers=workers)
        self._futures: Dict[Future, str] = {}
        # outcomes synthesized without a future — submissions refused by
        # a dead pool, or in-flight jobs lost to a worker crash / forced
        # restart; harvested exactly like the rest
        self._stillborn: List[Tuple[str, Any]] = []

    # -- supervision ------------------------------------------------------

    def _dispose_pool(self) -> None:
        """Tear the current pool down without waiting on hung workers."""
        if self._pool is None:
            return
        processes = getattr(self._pool, "_processes", None)
        if isinstance(processes, dict):
            for process in list(processes.values()):
                try:
                    process.terminate()
                except Exception:
                    pass
        try:
            self._pool.shutdown(wait=False)
        except Exception:
            pass
        self._pool = None

    def _abandon_in_flight(self) -> None:
        """Turn every in-flight job into a worker-lost stillborn outcome
        (the engine re-dispatches them against the fresh pool)."""
        for module_id in self._futures.values():
            self._stillborn.append((module_id, ProcessOutcome(
                status="failed", worker_lost=True,
                error="worker process died before the job reported back")))
        self._futures.clear()

    def _recreate(self, charge: bool = True) -> bool:
        """Replace the pool; False when the restart budget is spent."""
        if self._dead:
            return False
        if charge:
            if self.restarts >= self.max_restarts:
                self._dead = True
                self._dispose_pool()
                return False
            self.restarts += 1
        self._dispose_pool()
        self._pool = ProcessPoolExecutor(max_workers=self.workers)
        return True

    def restart(self) -> List[Tuple[str, Any]]:
        """Force-replace the pool (deadline-kill of hung workers).

        Returns worker-lost completions for every in-flight job so the
        engine can blame/retry them.  Does not charge the crash restart
        budget — killing past-deadline workers is policy, not failure.
        """
        self._abandon_in_flight()
        lost, self._stillborn = self._stillborn, []
        self._recreate(charge=False)
        return lost

    # -- submit / harvest -------------------------------------------------

    def submit(self, module_id: str, job: Any) -> None:
        """Accept one picklable :class:`ProcessJob` payload.

        A pool whose worker died refuses further submissions
        (``BrokenProcessPool``): the pool is recreated (bounded by
        ``max_restarts``) and the submission retried against the fresh
        pool; in-flight jobs on the broken pool surface as worker-lost
        outcomes.  Once the restart budget is spent the backend fails
        fast — every further submission becomes a terminal failed
        outcome, never a submission to a dead executor.
        """
        if self._dead or self._pool is None:
            self._stillborn.append((module_id, ProcessOutcome(
                status="failed",
                error="process pool broken and restart budget exhausted")))
            return
        try:
            future = self._pool.submit(execute_process_job, job)
        except BrokenExecutor:
            self._abandon_in_flight()
            if not self._recreate():
                self._stillborn.append((module_id, ProcessOutcome(
                    status="failed",
                    error="process pool broken and restart budget "
                          "exhausted")))
                return
            try:
                future = self._pool.submit(execute_process_job, job)
            except Exception as exc:
                self._stillborn.append((module_id, ProcessOutcome(
                    status="failed",
                    error=f"{type(exc).__name__}: {exc}")))
                return
        except Exception as exc:  # unpicklable payload
            self._stillborn.append((module_id, ProcessOutcome(
                status="failed",
                error=f"{type(exc).__name__}: {exc}")))
            return
        self._futures[future] = module_id

    def _harvest(self, futures: List[Future]) -> List[Tuple[str, Any]]:
        completed, self._stillborn = self._stillborn, []
        broken = False
        for future in futures:
            module_id = self._futures.pop(future)
            try:
                outcome = future.result()
            except BrokenExecutor as exc:  # worker death
                broken = True
                outcome = ProcessOutcome(
                    status="failed", worker_lost=True,
                    error=f"{type(exc).__name__}: {exc}")
            except Exception as exc:  # unpicklable result
                outcome = ProcessOutcome(
                    status="failed",
                    error=f"{type(exc).__name__}: {exc}")
            completed.append((module_id, outcome))
        if broken:
            # every other in-flight job is doomed on a broken pool:
            # surface them as worker-lost now and recreate the pool so
            # re-dispatches land on live workers
            self._abandon_in_flight()
            completed.extend(self._stillborn)
            self._stillborn = []
            self._recreate()
        return completed

    def poll(self) -> List[Tuple[str, Any]]:
        return self._harvest([f for f in list(self._futures) if f.done()])

    def wait(self, timeout: Optional[float] = None
             ) -> List[Tuple[str, Any]]:
        if not self._futures and not self._stillborn:
            raise ExecutionError(
                "process backend has no outstanding work to wait for")
        if not self._futures:
            return self._harvest([])
        done, _ = futures_wait(list(self._futures), timeout=timeout,
                               return_when=FIRST_COMPLETED)
        return self._harvest(list(done))

    def outstanding(self) -> int:
        return len(self._futures) + len(self._stillborn)

    def shutdown(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None


#: Backend kinds accepted by :func:`make_backend` and the ``backend=``
#: knob on Executor / ProvenanceManager / the CLI.
BACKEND_KINDS = ("serial", "thread", "process")


def make_backend(workers: Optional[int],
                 kind: Optional[str] = None) -> ExecutionBackend:
    """Build the execution backend for a worker count and kind.

    ``None``, ``0`` and ``1`` workers select the deterministic serial
    backend regardless of kind; anything larger selects a pool of that
    size — threads by default (best for blocking/GIL-releasing work) or
    processes with ``kind="process"`` (best for pure-Python CPU work).
    """
    if kind is not None and kind not in BACKEND_KINDS:
        raise ExecutionError(
            f"unknown execution backend {kind!r}; "
            f"expected one of {list(BACKEND_KINDS)}")
    if kind == "serial" or workers is None or workers <= 1:
        return SerialBackend()
    if kind == "process":
        return ProcessPoolBackend(workers)
    return ThreadPoolBackend(workers)
