"""Dataflow scientific-workflow substrate.

This package implements the workflow model described in §2.1 of the paper:
workflows are DAGs of typed module instances connected port-to-port, executed
under a dataflow model, with static validation, intermediate-result caching,
and an observer API through which provenance is captured.
"""

from repro.workflow.cache import (DEFAULT_LEASE_TTL, DEFAULT_MAX_ENTRIES,
                                  CacheEntry, CacheStats, CacheStore,
                                  PersistentResultCache, ResultCache)
from repro.workflow.engine import (ExecutionListener, Executor, ModuleResult,
                                   ReusedModule, RunResult, ValueRecord)
from repro.workflow.environment import capture_environment, environment_diff
from repro.workflow.faults import (FaultInjected, FaultPlan, FaultSpec,
                                   HardCrash, RetryPolicy, resolve_retry)
from repro.workflow.scheduler import (BACKEND_KINDS, ExecutionBackend,
                                      ProcessPoolBackend, ReadySetScheduler,
                                      SerialBackend, ThreadPoolBackend)
from repro.workflow.errors import (CycleError, ExecutionError, ModuleFailure,
                                   RegistryError, SpecError,
                                   TypeMismatchError, ValidationError,
                                   WorkflowError)
from repro.workflow.registry import (ModuleContext, ModuleDefinition,
                                     ModuleRegistry, ParameterSpec, PortSpec)
from repro.workflow.serialization import (DEFAULT_SPILL_THRESHOLD,
                                          SpilledValue, dump_workflow,
                                          dumps_workflow, load_workflow,
                                          loads_workflow,
                                          workflow_from_dict,
                                          workflow_to_dict)
from repro.workflow.spec import Connection, Module, Workflow
from repro.workflow.types import (BUILTIN_TYPES, PortType, TypeRegistry,
                                  default_type_registry)
from repro.workflow.validation import (ValidationIssue, check_workflow,
                                       validate_workflow)

__all__ = [
    "DEFAULT_LEASE_TTL", "DEFAULT_MAX_ENTRIES",
    "CacheEntry", "CacheStats", "CacheStore", "PersistentResultCache",
    "ResultCache",
    "ExecutionListener", "Executor", "ModuleResult", "ReusedModule",
    "RunResult", "ValueRecord",
    "capture_environment", "environment_diff",
    "FaultInjected", "FaultPlan", "FaultSpec", "HardCrash", "RetryPolicy",
    "resolve_retry",
    "BACKEND_KINDS", "ExecutionBackend", "ProcessPoolBackend",
    "ReadySetScheduler", "SerialBackend", "ThreadPoolBackend",
    "CycleError", "ExecutionError", "ModuleFailure", "RegistryError",
    "SpecError", "TypeMismatchError", "ValidationError", "WorkflowError",
    "ModuleContext", "ModuleDefinition", "ModuleRegistry", "ParameterSpec",
    "PortSpec",
    "DEFAULT_SPILL_THRESHOLD", "SpilledValue",
    "dump_workflow", "dumps_workflow", "load_workflow", "loads_workflow",
    "workflow_from_dict", "workflow_to_dict",
    "Connection", "Module", "Workflow",
    "BUILTIN_TYPES", "PortType", "TypeRegistry", "default_type_registry",
    "ValidationIssue", "check_workflow", "validate_workflow",
]
