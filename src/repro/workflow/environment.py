"""Execution-environment capture.

Retrospective provenance must record *where and with what* a run happened:
interpreter, platform, library versions, host.  This is the stand-in for the
distributed execution context (grid/web services) of production systems — the
record has the same role in reproducibility checking even though execution is
in-process here.
"""

from __future__ import annotations

import os
import platform
import sys
from typing import Any, Dict

__all__ = ["capture_environment", "environment_diff"]


def capture_environment() -> Dict[str, Any]:
    """Snapshot the current execution environment as a flat dict."""
    try:
        import numpy
        numpy_version = numpy.__version__
    except Exception:  # pragma: no cover - numpy is a hard dependency
        numpy_version = "unavailable"
    return {
        "python_version": platform.python_version(),
        "python_implementation": platform.python_implementation(),
        "platform": sys.platform,
        "machine": platform.machine(),
        "system": platform.system(),
        "hostname": platform.node(),
        "pid": os.getpid(),
        "numpy_version": numpy_version,
        "repro_version": "1.0.0",
    }


def environment_diff(first: Dict[str, Any],
                     second: Dict[str, Any]) -> Dict[str, Any]:
    """Return the keys whose values differ between two environment records.

    The result maps each differing key to ``{"before": ..., "after": ...}``.
    Volatile keys (``pid``) are ignored because they differ between any two
    processes without affecting reproducibility.
    """
    volatile = {"pid"}
    differences: Dict[str, Any] = {}
    for key in sorted(set(first) | set(second)):
        if key in volatile:
            continue
        before, after = first.get(key), second.get(key)
        if before != after:
            differences[key] = {"before": before, "after": after}
    return differences
