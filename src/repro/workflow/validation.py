"""Static validation of workflow specifications against a module registry.

Validation is the workflow analogue of type checking a program.  It catches,
before execution: references to unknown module types, connections to
non-existent ports, port-type mismatches, unconnected mandatory inputs,
ill-typed parameter overrides, unknown parameters, and cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.workflow.errors import CycleError, ValidationError
from repro.workflow.registry import ModuleRegistry
from repro.workflow.spec import Workflow

__all__ = ["ValidationIssue", "check_workflow", "validate_workflow"]


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found in a workflow specification.

    Attributes:
        severity: ``"error"`` or ``"warning"``.
        code: stable machine-readable issue code.
        message: human-readable explanation.
        subject: id of the offending module or connection ("" for global).
    """

    severity: str
    code: str
    message: str
    subject: str = ""

    def is_error(self) -> bool:
        """True when this issue prevents execution."""
        return self.severity == "error"


def check_workflow(workflow: Workflow,
                   registry: ModuleRegistry) -> List[ValidationIssue]:
    """Return every issue found in ``workflow`` (empty list when clean)."""
    issues: List[ValidationIssue] = []
    issues.extend(_check_modules(workflow, registry))
    issues.extend(_check_connections(workflow, registry))
    issues.extend(_check_mandatory_inputs(workflow, registry))
    issues.extend(_check_acyclicity(workflow))
    return issues


def validate_workflow(workflow: Workflow, registry: ModuleRegistry) -> None:
    """Raise :class:`ValidationError` when ``workflow`` has any error issue."""
    errors = [i for i in check_workflow(workflow, registry) if i.is_error()]
    if errors:
        summary = "; ".join(f"[{i.code}] {i.message}" for i in errors)
        raise ValidationError(
            f"workflow {workflow.name!r} failed validation: {summary}")


def _check_modules(workflow: Workflow,
                   registry: ModuleRegistry) -> List[ValidationIssue]:
    issues: List[ValidationIssue] = []
    for module in workflow.modules.values():
        if module.type_name not in registry:
            issues.append(ValidationIssue(
                "error", "unknown-module-type",
                f"module {module.name!r} has unknown type "
                f"{module.type_name!r}", module.id))
            continue
        definition = registry.get(module.type_name)
        for name, value in module.parameters.items():
            spec = definition.parameter(name)
            if spec is None:
                issues.append(ValidationIssue(
                    "error", "unknown-parameter",
                    f"module {module.name!r} sets unknown parameter "
                    f"{name!r}", module.id))
            elif not spec.accepts(value):
                issues.append(ValidationIssue(
                    "error", "bad-parameter-value",
                    f"module {module.name!r} parameter {name!r} expects "
                    f"{spec.kind}, got {value!r}", module.id))
    return issues


def _check_connections(workflow: Workflow,
                       registry: ModuleRegistry) -> List[ValidationIssue]:
    issues: List[ValidationIssue] = []
    for connection in workflow.connections.values():
        source = workflow.modules.get(connection.source_module)
        target = workflow.modules.get(connection.target_module)
        if source is None or target is None:
            issues.append(ValidationIssue(
                "error", "dangling-connection",
                f"connection {connection.id} references a missing module",
                connection.id))
            continue
        if source.type_name not in registry or target.type_name not in registry:
            continue  # already reported as unknown-module-type
        source_def = registry.get(source.type_name)
        target_def = registry.get(target.type_name)
        out_port = source_def.output_port(connection.source_port)
        in_port = target_def.input_port(connection.target_port)
        if out_port is None:
            issues.append(ValidationIssue(
                "error", "unknown-output-port",
                f"{source.name!r} has no output port "
                f"{connection.source_port!r}", connection.id))
        if in_port is None:
            issues.append(ValidationIssue(
                "error", "unknown-input-port",
                f"{target.name!r} has no input port "
                f"{connection.target_port!r}", connection.id))
        if out_port is not None and in_port is not None:
            compatible = registry.types.is_subtype(out_port.type_name,
                                                   in_port.type_name)
            if not compatible and out_port.type_name == "Any":
                # dynamic downcast: an Any-typed source may carry anything,
                # so flag it as a warning rather than rejecting the workflow
                issues.append(ValidationIssue(
                    "warning", "implicit-downcast",
                    f"connection {source.name}.{out_port.name} (Any) to "
                    f"{target.name}.{in_port.name} ({in_port.type_name}) "
                    "is checked only at runtime", connection.id))
            elif not compatible:
                issues.append(ValidationIssue(
                    "error", "type-mismatch",
                    f"cannot connect {source.name}.{out_port.name} "
                    f"({out_port.type_name}) to {target.name}.{in_port.name} "
                    f"({in_port.type_name})", connection.id))
    return issues


def _check_mandatory_inputs(workflow: Workflow,
                            registry: ModuleRegistry) -> List[ValidationIssue]:
    issues: List[ValidationIssue] = []
    bound = {(c.target_module, c.target_port)
             for c in workflow.connections.values()}
    for module in workflow.modules.values():
        if module.type_name not in registry:
            continue
        definition = registry.get(module.type_name)
        for port in definition.input_ports:
            if not port.optional and (module.id, port.name) not in bound:
                issues.append(ValidationIssue(
                    "error", "unbound-input",
                    f"mandatory input {module.name}.{port.name} is not "
                    "connected", module.id))
    return issues


def _check_acyclicity(workflow: Workflow) -> List[ValidationIssue]:
    try:
        workflow.topological_order()
    except CycleError as exc:
        return [ValidationIssue("error", "cycle", str(exc))]
    return []
