"""Static validation of workflow specifications against a module registry.

Validation is the workflow analogue of type checking a program.  It catches,
before execution: references to unknown module types, connections to
non-existent ports, port-type mismatches, unconnected mandatory inputs,
ill-typed parameter overrides, unknown parameters, and cycles.

Since the static-analysis subsystem landed, this module is a *strict-mode
view* over the one rule catalog in :mod:`repro.analysis`: the rules here
are the legacy tier (codes E101–E109/W001 in the catalog, reported under
their historical names — ``unknown-module-type``, ``cycle``, ...), and
``repro lint`` runs the same checks plus the advisory tiers.  The analysis
package is imported lazily so the executor's import graph stays acyclic.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.workflow.errors import ValidationError
from repro.workflow.registry import ModuleRegistry
from repro.workflow.spec import Workflow

__all__ = ["ValidationIssue", "check_workflow", "validate_workflow"]


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found in a workflow specification.

    Attributes:
        severity: ``"error"`` or ``"warning"``.
        code: stable machine-readable issue code.
        message: human-readable explanation.
        subject: id of the offending module or connection ("" for global).
    """

    severity: str
    code: str
    message: str
    subject: str = ""

    def is_error(self) -> bool:
        """True when this issue prevents execution."""
        return self.severity == "error"


def check_workflow(workflow: Workflow,
                   registry: ModuleRegistry) -> List[ValidationIssue]:
    """Return every issue found in ``workflow`` (empty list when clean).

    Runs exactly the legacy rule tier of the analysis catalog; the
    ``code`` on each issue is the diagnostic's rule name, unchanged
    since before the catalog existed.
    """
    from repro.analysis.workflow import legacy_diagnostics
    return [ValidationIssue(severity=diagnostic.severity,
                            code=diagnostic.rule,
                            message=diagnostic.message,
                            subject=diagnostic.subject)
            for diagnostic in legacy_diagnostics(workflow, registry)]


def validate_workflow(workflow: Workflow, registry: ModuleRegistry) -> None:
    """Raise :class:`ValidationError` when ``workflow`` has any error issue."""
    errors = [i for i in check_workflow(workflow, registry) if i.is_error()]
    if errors:
        summary = "; ".join(f"[{i.code}] {i.message}" for i in errors)
        raise ValidationError(
            f"workflow {workflow.name!r} failed validation: {summary}")
