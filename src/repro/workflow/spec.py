"""Workflow specifications: modules, connections, and the dataflow graph.

A workflow is a directed acyclic graph whose nodes are *module instances* and
whose edges are *connections* between typed ports.  The specification is pure
data — executable behaviour lives in the module registry — which is exactly
what the paper calls **prospective provenance**: the recipe that, together with
inputs and parameters, derives a class of data products.

Workflows are deliberately mutable: the evolution subsystem
(:mod:`repro.evolution`) records every mutation as a change action, following
the VisTrails change-based provenance model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.identity import canonical_json, content_hash, new_id
from repro.workflow.errors import CycleError, SpecError

__all__ = ["Module", "Connection", "Workflow"]


@dataclass
class Module:
    """One module instance placed in a workflow.

    Attributes:
        id: unique instance identifier (``mod-...``).
        type_name: name of the module definition in the registry.
        name: user-facing label (defaults to the type name).
        parameters: per-instance parameter overrides.
        position: (x, y) layout hint, kept for diff/analogy visualization.
    """

    type_name: str
    id: str = field(default_factory=lambda: new_id("mod"))
    name: str = ""
    parameters: Dict[str, Any] = field(default_factory=dict)
    position: Tuple[float, float] = (0.0, 0.0)

    def __post_init__(self) -> None:
        if not self.name:
            self.name = self.type_name

    def copy(self) -> "Module":
        """Return an independent copy (same id)."""
        return Module(type_name=self.type_name, id=self.id, name=self.name,
                      parameters=dict(self.parameters), position=self.position)


@dataclass(frozen=True)
class Connection:
    """A dataflow edge from an output port to an input port."""

    source_module: str
    source_port: str
    target_module: str
    target_port: str
    id: str = field(default_factory=lambda: new_id("conn"))

    def endpoints(self) -> Tuple[str, str]:
        """Return (source_module, target_module)."""
        return (self.source_module, self.target_module)


class Workflow:
    """A mutable dataflow graph of module instances and connections.

    All mutators raise :class:`SpecError` when they would leave the graph
    referentially inconsistent (dangling connections, duplicate ids).  Static
    semantic checks (types, cycles, unbound mandatory ports) live in
    :mod:`repro.workflow.validation`.
    """

    def __init__(self, name: str = "workflow",
                 workflow_id: Optional[str] = None) -> None:
        self.id = workflow_id or new_id("wf")
        self.name = name
        self.modules: Dict[str, Module] = {}
        self.connections: Dict[str, Connection] = {}

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def add_module(self, module: Module) -> Module:
        """Insert ``module``; its id must be fresh within this workflow."""
        if module.id in self.modules:
            raise SpecError(f"duplicate module id: {module.id}")
        self.modules[module.id] = module
        return module

    def remove_module(self, module_id: str) -> Module:
        """Remove a module that has no attached connections."""
        module = self._require_module(module_id)
        attached = [c.id for c in self.connections.values()
                    if module_id in c.endpoints()]
        if attached:
            raise SpecError(
                f"module {module_id} still has connections: {attached}")
        del self.modules[module_id]
        return module

    def remove_module_cascade(self, module_id: str
                              ) -> Tuple[Module, List[Connection]]:
        """Remove a module and all its connections; return what was removed."""
        self._require_module(module_id)
        removed = [c for c in self.connections.values()
                   if module_id in c.endpoints()]
        for connection in removed:
            del self.connections[connection.id]
        module = self.modules.pop(module_id)
        return module, removed

    def add_connection(self, connection: Connection) -> Connection:
        """Insert ``connection``; both endpoint modules must exist."""
        if connection.id in self.connections:
            raise SpecError(f"duplicate connection id: {connection.id}")
        self._require_module(connection.source_module)
        self._require_module(connection.target_module)
        for existing in self.connections.values():
            if (existing.target_module == connection.target_module
                    and existing.target_port == connection.target_port):
                raise SpecError(
                    "input port already bound: "
                    f"{connection.target_module}.{connection.target_port}")
        self.connections[connection.id] = connection
        return connection

    def remove_connection(self, connection_id: str) -> Connection:
        """Remove the connection with ``connection_id`` and return it."""
        if connection_id not in self.connections:
            raise SpecError(f"no such connection: {connection_id}")
        return self.connections.pop(connection_id)

    def connect(self, source_module: str, source_port: str,
                target_module: str, target_port: str) -> Connection:
        """Convenience wrapper building and adding a :class:`Connection`."""
        return self.add_connection(Connection(
            source_module=source_module, source_port=source_port,
            target_module=target_module, target_port=target_port))

    def set_parameter(self, module_id: str, name: str, value: Any) -> None:
        """Set a parameter override on a module instance."""
        self._require_module(module_id).parameters[name] = value

    def unset_parameter(self, module_id: str, name: str) -> Any:
        """Remove a parameter override, returning the previous value."""
        module = self._require_module(module_id)
        if name not in module.parameters:
            raise SpecError(
                f"module {module_id} has no parameter override {name!r}")
        return module.parameters.pop(name)

    def rename_module(self, module_id: str, name: str) -> None:
        """Change the user-facing label of a module."""
        self._require_module(module_id).name = name

    # ------------------------------------------------------------------
    # structure queries
    # ------------------------------------------------------------------
    def _require_module(self, module_id: str) -> Module:
        if module_id not in self.modules:
            raise SpecError(f"no such module: {module_id}")
        return self.modules[module_id]

    def incoming(self, module_id: str) -> List[Connection]:
        """Connections whose target is ``module_id``, sorted by port name."""
        found = [c for c in self.connections.values()
                 if c.target_module == module_id]
        return sorted(found, key=lambda c: c.target_port)

    def outgoing(self, module_id: str) -> List[Connection]:
        """Connections whose source is ``module_id``, sorted by port name."""
        found = [c for c in self.connections.values()
                 if c.source_module == module_id]
        return sorted(found, key=lambda c: (c.source_port, c.target_module))

    def predecessors(self, module_id: str) -> List[str]:
        """Distinct upstream neighbour module ids (sorted)."""
        return sorted({c.source_module for c in self.incoming(module_id)})

    def successors(self, module_id: str) -> List[str]:
        """Distinct downstream neighbour module ids (sorted)."""
        return sorted({c.target_module for c in self.outgoing(module_id)})

    def sources(self) -> List[str]:
        """Module ids with no incoming connections (sorted)."""
        targets = {c.target_module for c in self.connections.values()}
        return sorted(m for m in self.modules if m not in targets)

    def sinks(self) -> List[str]:
        """Module ids with no outgoing connections (sorted)."""
        origins = {c.source_module for c in self.connections.values()}
        return sorted(m for m in self.modules if m not in origins)

    def topological_order(self) -> List[str]:
        """Kahn topological order of module ids, deterministic by id.

        Raises :class:`CycleError` when the graph has a cycle.
        """
        # in-degree counts distinct predecessors: two connections between
        # the same module pair (e.g. image + header) are one dependency
        in_degree = {module_id: len(self.predecessors(module_id))
                     for module_id in self.modules}
        ready = sorted(m for m, d in in_degree.items() if d == 0)
        order: List[str] = []
        while ready:
            current = ready.pop(0)
            order.append(current)
            for successor in self.successors(current):
                in_degree[successor] -= 1
                if in_degree[successor] == 0:
                    # insertion keeps `ready` sorted for determinism
                    index = 0
                    while index < len(ready) and ready[index] < successor:
                        index += 1
                    ready.insert(index, successor)
        if len(order) != len(self.modules):
            stuck = sorted(m for m, d in in_degree.items() if d > 0)
            raise CycleError(f"workflow contains a cycle through: {stuck}")
        return order

    def upstream_modules(self, module_id: str) -> List[str]:
        """All transitive predecessors of ``module_id`` (sorted)."""
        return self._closure(module_id, self.predecessors)

    def downstream_modules(self, module_id: str) -> List[str]:
        """All transitive successors of ``module_id`` (sorted)."""
        return self._closure(module_id, self.successors)

    def _closure(self, start: str, step) -> List[str]:
        self._require_module(start)
        seen: set = set()
        frontier = [start]
        while frontier:
            current = frontier.pop()
            for neighbour in step(current):
                if neighbour not in seen:
                    seen.add(neighbour)
                    frontier.append(neighbour)
        return sorted(seen)

    # ------------------------------------------------------------------
    # identity and copying
    # ------------------------------------------------------------------
    def structure_dict(self) -> Dict[str, Any]:
        """A canonical, id-independent description of the graph structure.

        Module ids are replaced with stable indexes assigned in topological
        order (ties broken by type then name) so that two structurally equal
        workflows built independently hash identically.
        """
        ordered = sorted(
            self.modules.values(),
            key=lambda m: (m.type_name, m.name, canonical_json(m.parameters),
                           m.id))
        index = {module.id: position for position, module
                 in enumerate(ordered)}
        return {
            "modules": [
                {"type": m.type_name, "name": m.name,
                 "parameters": m.parameters}
                for m in ordered
            ],
            "connections": sorted(
                [index[c.source_module], c.source_port,
                 index[c.target_module], c.target_port]
                for c in self.connections.values()
            ),
        }

    def signature(self) -> str:
        """Content hash identifying this workflow's structure."""
        return content_hash(canonical_json(self.structure_dict())
                            .encode("utf-8"))

    def copy(self, new_id_: Optional[str] = None) -> "Workflow":
        """Deep-copy the workflow (same module/connection ids)."""
        duplicate = Workflow(name=self.name,
                             workflow_id=new_id_ or new_id("wf"))
        for module in self.modules.values():
            duplicate.modules[module.id] = module.copy()
        duplicate.connections = dict(self.connections)
        return duplicate

    def __len__(self) -> int:
        return len(self.modules)

    def __iter__(self) -> Iterator[Module]:
        return iter(self.modules.values())

    def __repr__(self) -> str:
        return (f"Workflow({self.name!r}, modules={len(self.modules)}, "
                f"connections={len(self.connections)})")
