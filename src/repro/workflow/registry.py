"""Module registry: executable definitions behind workflow module instances.

A :class:`ModuleDefinition` declares a module type's interface (typed input and
output ports, parameters with defaults) and its behaviour (a ``compute``
callable).  Workflow specifications reference definitions only by name, which
keeps prospective provenance serializable and lets multiple behavioural
versions of a module coexist (the ``version`` field participates in cache keys
and retrospective provenance).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.workflow.errors import RegistryError
from repro.workflow.types import TypeRegistry, default_type_registry

__all__ = [
    "PortSpec",
    "ParameterSpec",
    "ModuleContext",
    "ModuleDefinition",
    "ModuleRegistry",
]


@dataclass(frozen=True)
class PortSpec:
    """Declaration of one input or output port.

    Attributes:
        name: port name, unique within its direction.
        type_name: port type (must exist in the type registry).
        optional: input ports only — True when the port may be unconnected.
        doc: one-line description.
    """

    name: str
    type_name: str = "Any"
    optional: bool = False
    doc: str = ""


@dataclass(frozen=True)
class ParameterSpec:
    """Declaration of a module parameter.

    Attributes:
        name: parameter name.
        default: value used when the instance does not override it.
        kind: one of ``"int" | "float" | "str" | "bool" | "json"``; used by
            validation to reject ill-typed overrides.
        doc: one-line description.
    """

    name: str
    default: Any = None
    kind: str = "json"
    doc: str = ""

    _CHECKS: Any = field(default=None, repr=False, compare=False)

    def accepts(self, value: Any) -> bool:
        """Return True when ``value`` is acceptable for this parameter."""
        if self.kind == "json":
            return True
        if self.kind == "int":
            return isinstance(value, int) and not isinstance(value, bool)
        if self.kind == "float":
            return (isinstance(value, (int, float))
                    and not isinstance(value, bool))
        if self.kind == "str":
            return isinstance(value, str)
        if self.kind == "bool":
            return isinstance(value, bool)
        raise RegistryError(f"unknown parameter kind: {self.kind!r}")


class ModuleContext:
    """Everything a compute function may consult: inputs and parameters.

    ``deadline`` (a ``time.monotonic`` instant, or None) carries the
    cooperative per-attempt timeout of the executor's retry policy:
    long-running compute functions may call :meth:`check_deadline`
    inside their loops to fail fast instead of riding out the work.
    """

    def __init__(self, inputs: Mapping[str, Any],
                 parameters: Mapping[str, Any],
                 module_name: str = "",
                 deadline: Optional[float] = None) -> None:
        self._inputs = dict(inputs)
        self._parameters = dict(parameters)
        self.module_name = module_name
        self.deadline = deadline

    def remaining_time(self) -> Optional[float]:
        """Seconds left before this attempt's deadline (None = no limit)."""
        if self.deadline is None:
            return None
        return self.deadline - time.monotonic()

    def check_deadline(self) -> None:
        """Raise ``TimeoutError`` when this attempt's deadline passed."""
        remaining = self.remaining_time()
        if remaining is not None and remaining <= 0:
            raise TimeoutError(
                f"ModuleTimeout: cooperative deadline exceeded in "
                f"{self.module_name or 'module'}")

    def input(self, name: str, default: Any = None) -> Any:
        """Value received on input port ``name`` (default if unconnected)."""
        value = self._inputs.get(name)
        return default if value is None else value

    def require_input(self, name: str) -> Any:
        """Value on port ``name``; raises KeyError when absent."""
        if name not in self._inputs or self._inputs[name] is None:
            raise KeyError(f"input port {name!r} received no value")
        return self._inputs[name]

    def param(self, name: str) -> Any:
        """Resolved parameter value (instance override or default)."""
        return self._parameters[name]

    @property
    def inputs(self) -> Dict[str, Any]:
        """All bound input values by port name."""
        return dict(self._inputs)

    @property
    def parameters(self) -> Dict[str, Any]:
        """All resolved parameters by name."""
        return dict(self._parameters)


ComputeFn = Callable[[ModuleContext], Mapping[str, Any]]


@dataclass
class ModuleDefinition:
    """A module type: interface plus behaviour.

    The compute function receives a :class:`ModuleContext` and must return a
    mapping from output-port name to value; the engine checks that every
    declared output is produced.
    """

    type_name: str
    compute: ComputeFn
    input_ports: Tuple[PortSpec, ...] = ()
    output_ports: Tuple[PortSpec, ...] = ()
    parameters: Tuple[ParameterSpec, ...] = ()
    category: str = "general"
    doc: str = ""
    version: str = "1.0"
    deterministic: bool = True

    def __post_init__(self) -> None:
        inputs = [p.name for p in self.input_ports]
        outputs = [p.name for p in self.output_ports]
        if len(set(inputs)) != len(inputs):
            raise RegistryError(
                f"{self.type_name}: duplicate input port names")
        if len(set(outputs)) != len(outputs):
            raise RegistryError(
                f"{self.type_name}: duplicate output port names")
        names = [p.name for p in self.parameters]
        if len(set(names)) != len(names):
            raise RegistryError(
                f"{self.type_name}: duplicate parameter names")

    def input_port(self, name: str) -> Optional[PortSpec]:
        """The input port named ``name``, or None."""
        return next((p for p in self.input_ports if p.name == name), None)

    def output_port(self, name: str) -> Optional[PortSpec]:
        """The output port named ``name``, or None."""
        return next((p for p in self.output_ports if p.name == name), None)

    def parameter(self, name: str) -> Optional[ParameterSpec]:
        """The parameter spec named ``name``, or None."""
        return next((p for p in self.parameters if p.name == name), None)

    def default_parameters(self) -> Dict[str, Any]:
        """Mapping of parameter name to declared default."""
        return {p.name: p.default for p in self.parameters}

    def resolve_parameters(self, overrides: Mapping[str, Any]
                           ) -> Dict[str, Any]:
        """Merge instance overrides onto the declared defaults."""
        resolved = self.default_parameters()
        resolved.update(overrides)
        return resolved


class ModuleRegistry:
    """Named collection of :class:`ModuleDefinition` objects.

    The registry also owns the :class:`TypeRegistry` used to check port
    compatibility, so one object fully describes the available vocabulary
    for building workflows.
    """

    def __init__(self, types: Optional[TypeRegistry] = None) -> None:
        self.types = types or default_type_registry()
        self._definitions: Dict[str, ModuleDefinition] = {}

    def register(self, definition: ModuleDefinition) -> ModuleDefinition:
        """Add ``definition``; port types must already exist."""
        if definition.type_name in self._definitions:
            raise RegistryError(
                f"module type already registered: {definition.type_name}")
        for port in (*definition.input_ports, *definition.output_ports):
            if port.type_name not in self.types:
                raise RegistryError(
                    f"{definition.type_name}: unknown port type "
                    f"{port.type_name!r} on port {port.name!r}")
        self._definitions[definition.type_name] = definition
        return definition

    def register_all(self, definitions: Iterable[ModuleDefinition]) -> None:
        """Register every definition in ``definitions``."""
        for definition in definitions:
            self.register(definition)

    def define(self, type_name: str, *,
               inputs: Iterable[Tuple[str, str]] = (),
               outputs: Iterable[Tuple[str, str]] = (),
               params: Iterable[Tuple[str, Any]] = (),
               category: str = "general", doc: str = "",
               version: str = "1.0", deterministic: bool = True
               ) -> Callable[[ComputeFn], ModuleDefinition]:
        """Decorator form of :meth:`register` for concise module libraries.

        >>> registry = ModuleRegistry()
        >>> @registry.define("Add", inputs=[("a", "Number"), ("b", "Number")],
        ...                  outputs=[("sum", "Number")])
        ... def _add(ctx):
        ...     return {"sum": ctx.input("a", 0) + ctx.input("b", 0)}
        """
        def wrap(compute: ComputeFn) -> ModuleDefinition:
            definition = ModuleDefinition(
                type_name=type_name,
                compute=compute,
                input_ports=tuple(PortSpec(n, t) for n, t in inputs),
                output_ports=tuple(PortSpec(n, t) for n, t in outputs),
                parameters=tuple(ParameterSpec(n, d) for n, d in params),
                category=category,
                doc=doc or (compute.__doc__ or "").strip(),
                version=version,
                deterministic=deterministic,
            )
            return self.register(definition)
        return wrap

    def get(self, type_name: str) -> ModuleDefinition:
        """Return the definition for ``type_name``.

        Raises :class:`RegistryError` when unknown.
        """
        if type_name not in self._definitions:
            raise RegistryError(f"unknown module type: {type_name}")
        return self._definitions[type_name]

    def __contains__(self, type_name: str) -> bool:
        return type_name in self._definitions

    def __len__(self) -> int:
        return len(self._definitions)

    def type_names(self) -> List[str]:
        """All registered type names, sorted."""
        return sorted(self._definitions)

    def by_category(self, category: str) -> List[ModuleDefinition]:
        """All definitions in ``category``, sorted by type name."""
        return sorted(
            (d for d in self._definitions.values()
             if d.category == category),
            key=lambda d: d.type_name)
