"""JSON (de)serialization of workflow specifications.

Prospective provenance must outlive the process that created it; workflows
round-trip to plain JSON dictionaries here.  Behaviour is not serialized —
a specification references module definitions by type name, and rehydrating
an executable workflow requires a registry providing those types (exactly how
workflow systems ship "packages" of modules separately from workflows).
"""

from __future__ import annotations

import json
from typing import Any, Dict, IO

from repro.workflow.errors import SpecError
from repro.workflow.spec import Connection, Module, Workflow

__all__ = [
    "workflow_to_dict",
    "workflow_from_dict",
    "dump_workflow",
    "load_workflow",
    "dumps_workflow",
    "loads_workflow",
]

FORMAT_VERSION = 1


def workflow_to_dict(workflow: Workflow) -> Dict[str, Any]:
    """Convert ``workflow`` into a JSON-serializable dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "id": workflow.id,
        "name": workflow.name,
        "modules": [
            {
                "id": module.id,
                "type": module.type_name,
                "name": module.name,
                "parameters": module.parameters,
                "position": list(module.position),
            }
            for module in sorted(workflow.modules.values(),
                                 key=lambda m: m.id)
        ],
        "connections": [
            {
                "id": connection.id,
                "source_module": connection.source_module,
                "source_port": connection.source_port,
                "target_module": connection.target_module,
                "target_port": connection.target_port,
            }
            for connection in sorted(workflow.connections.values(),
                                     key=lambda c: c.id)
        ],
    }


def workflow_from_dict(data: Dict[str, Any]) -> Workflow:
    """Rebuild a :class:`Workflow` from :func:`workflow_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise SpecError(f"unsupported workflow format version: {version!r}")
    workflow = Workflow(name=data["name"], workflow_id=data["id"])
    for module_data in data["modules"]:
        workflow.add_module(Module(
            id=module_data["id"],
            type_name=module_data["type"],
            name=module_data["name"],
            parameters=dict(module_data.get("parameters", {})),
            position=tuple(module_data.get("position", (0.0, 0.0))),
        ))
    for connection_data in data["connections"]:
        workflow.add_connection(Connection(
            id=connection_data["id"],
            source_module=connection_data["source_module"],
            source_port=connection_data["source_port"],
            target_module=connection_data["target_module"],
            target_port=connection_data["target_port"],
        ))
    return workflow


def dumps_workflow(workflow: Workflow, indent: int = 2) -> str:
    """Serialize ``workflow`` to a JSON string."""
    return json.dumps(workflow_to_dict(workflow), indent=indent,
                      sort_keys=True)


def loads_workflow(text: str) -> Workflow:
    """Deserialize a workflow from a JSON string."""
    return workflow_from_dict(json.loads(text))


def dump_workflow(workflow: Workflow, stream: IO[str]) -> None:
    """Write ``workflow`` as JSON to an open text stream."""
    stream.write(dumps_workflow(workflow))


def load_workflow(stream: IO[str]) -> Workflow:
    """Read a workflow from an open text stream containing JSON."""
    return loads_workflow(stream.read())
