"""Serialization of workflow specifications and process-pool jobs.

Prospective provenance must outlive the process that created it; workflows
round-trip to plain JSON dictionaries here.  Behaviour is not serialized —
a specification references module definitions by type name, and rehydrating
an executable workflow requires a registry providing those types (exactly how
workflow systems ship "packages" of modules separately from workflows).

The same principle powers the process-pool execution backend: a
:class:`ProcessJob` ships a module *reference* (type name + resolved
parameters + input values + a registry provider spec) to a worker process,
which rehydrates the registry once per process and runs the compute
function there; the :class:`ProcessOutcome` carries raw outputs and timing
back.  Hashing, provenance capture and caching stay in the coordinating
process, so serial, thread and process runs record identical provenance.

Large values do not travel through the executor pipe at all: any input or
output whose pickle exceeds the job's *spill threshold* is written (in
chunks) to a file under a coordinator-managed spill directory, and a tiny
:class:`SpilledValue` reference is shipped instead.  Both sides resolve
references transparently, so a wide fan-out of multi-megabyte artifacts
costs the coordinator one file handle per value instead of N concurrent
multi-MB pickles buffered in executor queues.
"""

from __future__ import annotations

import importlib
import json
import os
import pickle
import tempfile
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Mapping

from repro.workflow.errors import SpecError
from repro.workflow.registry import ModuleContext, ModuleRegistry
from repro.workflow.spec import Connection, Module, Workflow

__all__ = [
    "workflow_to_dict",
    "workflow_from_dict",
    "dump_workflow",
    "load_workflow",
    "dumps_workflow",
    "loads_workflow",
    "DEFAULT_REGISTRY_PROVIDER",
    "DEFAULT_SPILL_THRESHOLD",
    "ProcessJob",
    "ProcessOutcome",
    "SpilledValue",
    "maybe_spill",
    "load_spilled",
    "resolve_spilled",
    "resolve_registry_provider",
    "execute_process_job",
]

FORMAT_VERSION = 1


def workflow_to_dict(workflow: Workflow) -> Dict[str, Any]:
    """Convert ``workflow`` into a JSON-serializable dictionary."""
    return {
        "format_version": FORMAT_VERSION,
        "id": workflow.id,
        "name": workflow.name,
        "modules": [
            {
                "id": module.id,
                "type": module.type_name,
                "name": module.name,
                "parameters": module.parameters,
                "position": list(module.position),
            }
            for module in sorted(workflow.modules.values(),
                                 key=lambda m: m.id)
        ],
        "connections": [
            {
                "id": connection.id,
                "source_module": connection.source_module,
                "source_port": connection.source_port,
                "target_module": connection.target_module,
                "target_port": connection.target_port,
            }
            for connection in sorted(workflow.connections.values(),
                                     key=lambda c: c.id)
        ],
    }


def workflow_from_dict(data: Dict[str, Any]) -> Workflow:
    """Rebuild a :class:`Workflow` from :func:`workflow_to_dict` output."""
    version = data.get("format_version")
    if version != FORMAT_VERSION:
        raise SpecError(f"unsupported workflow format version: {version!r}")
    workflow = Workflow(name=data["name"], workflow_id=data["id"])
    for module_data in data["modules"]:
        workflow.add_module(Module(
            id=module_data["id"],
            type_name=module_data["type"],
            name=module_data["name"],
            parameters=dict(module_data.get("parameters", {})),
            position=tuple(module_data.get("position", (0.0, 0.0))),
        ))
    for connection_data in data["connections"]:
        workflow.add_connection(Connection(
            id=connection_data["id"],
            source_module=connection_data["source_module"],
            source_port=connection_data["source_port"],
            target_module=connection_data["target_module"],
            target_port=connection_data["target_port"],
        ))
    return workflow


def dumps_workflow(workflow: Workflow, indent: int = 2) -> str:
    """Serialize ``workflow`` to a JSON string."""
    return json.dumps(workflow_to_dict(workflow), indent=indent,
                      sort_keys=True)


def loads_workflow(text: str) -> Workflow:
    """Deserialize a workflow from a JSON string."""
    return workflow_from_dict(json.loads(text))


def dump_workflow(workflow: Workflow, stream: IO[str]) -> None:
    """Write ``workflow`` as JSON to an open text stream."""
    stream.write(dumps_workflow(workflow))


def load_workflow(stream: IO[str]) -> Workflow:
    """Read a workflow from an open text stream containing JSON."""
    return loads_workflow(stream.read())


# ----------------------------------------------------------------------
# process-pool job wire format
# ----------------------------------------------------------------------
#: Registry provider used when an executor does not name its own: the
#: ``"module:callable"`` spec of the standard library registry.
DEFAULT_REGISTRY_PROVIDER = "repro.workflow.modules:standard_registry"

#: Default pickle-size threshold (bytes) above which process-job values
#: spill to a file instead of travelling through the executor pipe.
DEFAULT_SPILL_THRESHOLD = 1 << 20

#: Chunk size for spill-file writes: large pickles stream to disk in
#: bounded slices instead of one monolithic write.
SPILL_CHUNK = 256 * 1024


@dataclass(frozen=True)
class SpilledValue:
    """Reference to a pickled value parked in a spill file.

    Shipped through the executor pipe in place of the value itself;
    either side resolves it with :func:`load_spilled`.  The file lives in
    the run's coordinator-managed spill directory and is deleted with it
    when the run finishes.

    Attributes:
        path: spill file holding exactly one pickled value.
        length: pickled size in bytes (diagnostic; the pickle stream is
            self-delimiting).
    """

    path: str
    length: int


def _spill_bytes(data: bytes, directory: str) -> SpilledValue:
    descriptor, path = tempfile.mkstemp(prefix="value-", suffix=".pkl",
                                        dir=directory)
    with os.fdopen(descriptor, "wb") as handle:
        view = memoryview(data)
        for start in range(0, len(view), SPILL_CHUNK):
            handle.write(view[start:start + SPILL_CHUNK])
    return SpilledValue(path=path, length=len(data))


def maybe_spill(value: Any, threshold: int, directory: str) -> Any:
    """Spill ``value`` to ``directory`` when its pickle beats ``threshold``.

    Returns the value unchanged when spilling is disabled (no directory /
    non-positive threshold), the value is small, the value is unpicklable
    (the executor pipe will surface that as the usual failed submission),
    or the spill write itself fails — spilling is an optimization, never
    a new failure mode.
    """
    if not directory or threshold <= 0:
        return value
    try:
        data = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception:
        return value
    if len(data) <= threshold:
        return value
    try:
        return _spill_bytes(data, directory)
    except OSError:
        return value


def load_spilled(reference: SpilledValue) -> Any:
    """Read back one value spilled by :func:`maybe_spill` (streaming)."""
    with open(reference.path, "rb") as handle:
        return pickle.load(handle)


def resolve_spilled(mapping: Mapping[str, Any]) -> Dict[str, Any]:
    """Replace every :class:`SpilledValue` in ``mapping`` with its value."""
    return {key: load_spilled(value) if isinstance(value, SpilledValue)
            else value for key, value in mapping.items()}


@dataclass(frozen=True)
class ProcessJob:
    """One module execution shipped to a worker process.

    Everything a worker needs is either plain picklable data (parameters,
    input values) or an importable reference (the registry provider, the
    module type name) — compute callables themselves are often closures
    and never cross the process boundary.

    Attributes:
        module_id: workflow module instance id (round-tripped for
            bookkeeping; the worker does not interpret it).
        module_name: user-facing module name, surfaced to the compute
            context exactly as in-process execution would.
        type_name: module definition to look up in the worker's registry.
        parameters: fully resolved parameter values.
        inputs: input-port name to (picklable) input value — possibly a
            :class:`SpilledValue` reference the worker resolves.
        registry_provider: ``"module:callable"`` spec producing the
            :class:`~repro.workflow.registry.ModuleRegistry` in the worker.
        spill_dir: coordinator-managed directory for large-value spill
            files ("" disables spilling for this job).
        spill_threshold: pickle size (bytes) above which the worker spills
            output values back through ``spill_dir`` instead of the pipe.
        inject: fault-injection stamp applied worker-side before compute
            ("" = none): ``"fail"`` returns a failed outcome, ``"kill"``
            calls ``os._exit`` (simulating a worker crash), and
            ``"hang:<seconds>"`` sleeps before computing (pairs with
            retry timeouts).  Stamped by the coordinator's
            :class:`~repro.workflow.faults.FaultPlan` seam.
    """

    module_id: str
    module_name: str
    type_name: str
    parameters: Dict[str, Any] = field(default_factory=dict)
    inputs: Dict[str, Any] = field(default_factory=dict)
    registry_provider: str = DEFAULT_REGISTRY_PROVIDER
    spill_dir: str = ""
    spill_threshold: int = 0
    inject: str = ""


@dataclass(frozen=True)
class ProcessOutcome:
    """What a worker process sends back for one :class:`ProcessJob`.

    ``status`` is ``"ok"`` or ``"failed"``; outputs are the *raw* values
    returned by the compute function — the coordinating process hashes
    them, checks them against the declared output ports, and memoizes
    them, exactly as it would for in-process execution.  Values above the
    job's spill threshold come back as :class:`SpilledValue` references
    the coordinator resolves before hashing.

    ``worker_lost`` marks outcomes synthesized by the backend when the
    worker process died (or the pool was force-restarted) before the job
    could report back — the engine treats those as retryable attempts,
    distinct from a module that computed and failed.
    """

    status: str
    outputs: Dict[str, Any] = field(default_factory=dict)
    started: float = 0.0
    finished: float = 0.0
    error: str = ""
    worker_lost: bool = False


#: Worker-process registry cache: provider spec -> built registry.  One
#: registry is built per (worker process, provider) and reused for every
#: job that names it.
_WORKER_REGISTRIES: Dict[str, ModuleRegistry] = {}


def resolve_registry_provider(provider: str) -> ModuleRegistry:
    """Import and invoke a ``"module:callable"`` registry provider.

    Results are cached per process; raises ``ValueError`` on a malformed
    spec and lets import/attribute errors propagate (the caller converts
    them into a failed outcome).
    """
    registry = _WORKER_REGISTRIES.get(provider)
    if registry is not None:
        return registry
    module_name, separator, attribute = provider.partition(":")
    if not separator or not module_name or not attribute:
        raise ValueError(
            f"registry provider must be 'module:callable', got {provider!r}")
    factory = getattr(importlib.import_module(module_name), attribute)
    registry = factory()
    if not isinstance(registry, ModuleRegistry):
        raise ValueError(
            f"registry provider {provider!r} returned {type(registry)!r}, "
            "not a ModuleRegistry")
    _WORKER_REGISTRIES[provider] = registry
    return registry


def _apply_injection(inject: str) -> None:
    """Honor a :class:`ProcessJob` fault stamp (worker-process side)."""
    if inject == "kill":
        os._exit(1)  # simulated worker crash: no cleanup, no outcome
    if inject == "fail":
        raise RuntimeError("injected worker fault")
    if inject.startswith("hang:"):
        time.sleep(float(inject.split(":", 1)[1]))


def execute_process_job(job: ProcessJob) -> ProcessOutcome:
    """Run one :class:`ProcessJob` (worker-process side); never raises.

    This is the top-level entry point a process pool invokes: it must be
    importable by worker processes under any start method (fork or spawn)
    and must always return an outcome — failures come back as
    ``status="failed"`` with the same error formatting the in-process
    engine records.
    """
    started = time.time()
    try:
        if job.inject:
            _apply_injection(job.inject)
        registry = resolve_registry_provider(job.registry_provider)
        definition = registry.get(job.type_name)
        context = ModuleContext(inputs=resolve_spilled(job.inputs),
                                parameters=job.parameters,
                                module_name=job.module_name)
        outputs = dict(definition.compute(context))
        if job.spill_dir and job.spill_threshold > 0:
            outputs = {port: maybe_spill(value, job.spill_threshold,
                                         job.spill_dir)
                       for port, value in outputs.items()}
    except Exception as exc:
        return ProcessOutcome(
            status="failed", started=started, finished=time.time(),
            error=f"{type(exc).__name__}: {exc}\n"
                  f"{traceback.format_exc(limit=3)}")
    return ProcessOutcome(status="ok", outputs=outputs, started=started,
                          finished=time.time())
