"""Visualization module library — the Figure 1 and Figure 2 pipelines.

Figure 1 of the paper shows a workflow over a CT head scan
(``head.120.vtk``): one branch computes a histogram of the scalar values and
renders it (``head-hist.png``); the other extracts an isosurface and renders
a visualization.  The paper's real dataset is replaced by a deterministic
procedural volume (ellipsoidal "head" with a denser "skull" shell); every
downstream algorithm — histogramming, isosurface extraction, mesh smoothing,
depth rendering, image encoding — is implemented for real, so the provenance
the pipeline generates has the same shape as the paper's.

Figure 2's scenario (download a file from the Web, visualize it, then refine
the result by smoothing) is covered by ``DownloadFile`` (simulated,
deterministic per URL), ``ParseVolumeFile`` and ``SmoothMesh``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Tuple

import numpy as np

from repro.identity import content_hash
from repro.workflow.registry import ModuleRegistry

__all__ = ["register", "synthetic_head_volume", "encode_pgm", "decode_pgm"]


def synthetic_head_volume(size: int = 32, seed: int = 7) -> np.ndarray:
    """Deterministic head-like scalar volume (ellipsoid + skull shell)."""
    rng = np.random.default_rng(seed)
    axis = np.linspace(-1.0, 1.0, size)
    x, y, z = np.meshgrid(axis, axis, axis, indexing="ij")
    radius = np.sqrt((x / 0.9) ** 2 + (y / 0.75) ** 2 + (z / 0.8) ** 2)
    tissue = np.clip(1.0 - radius, 0.0, None) * 80.0
    skull = np.exp(-((radius - 0.85) ** 2) / 0.002) * 160.0
    noise = rng.normal(0.0, 1.5, size=(size, size, size))
    return (tissue + skull + noise).astype(np.float64)


def encode_pgm(image: np.ndarray) -> bytes:
    """Encode a 2-D array as a binary PGM (P5) image file."""
    data = np.asarray(image, dtype=np.float64)
    low, high = float(data.min()), float(data.max())
    span = (high - low) or 1.0
    pixels = ((data - low) / span * 255.0).astype(np.uint8)
    header = f"P5\n{pixels.shape[1]} {pixels.shape[0]}\n255\n"
    return header.encode("ascii") + pixels.tobytes()


def decode_pgm(data: bytes) -> np.ndarray:
    """Decode a binary PGM (P5) produced by :func:`encode_pgm`."""
    parts = data.split(b"\n", 3)
    if parts[0] != b"P5":
        raise ValueError("not a P5 PGM file")
    width, height = (int(v) for v in parts[1].split())
    pixels = np.frombuffer(parts[3], dtype=np.uint8, count=width * height)
    return pixels.reshape(height, width)


def _mesh_adjacency(faces: List[Tuple[int, int, int]]) -> Dict[int, set]:
    adjacency: Dict[int, set] = {}
    for a, b, c in faces:
        for u, v in ((a, b), (b, c), (c, a)):
            adjacency.setdefault(u, set()).add(v)
            adjacency.setdefault(v, set()).add(u)
    return adjacency


def register(registry: ModuleRegistry) -> None:
    """Register the visualization library into ``registry``."""

    @registry.define("LoadVolume",
                     outputs=[("volume", "VolumeData"),
                              ("header", "Mapping")],
                     params=[("dataset", "head.120"), ("size", 32),
                             ("seed", 7)],
                     category="vis")
    def load_volume(ctx):
        """Load (synthesize) a structured-grid scalar volume with header."""
        size, seed = int(ctx.param("size")), int(ctx.param("seed"))
        volume = synthetic_head_volume(size=size, seed=seed)
        header = {
            "dataset": ctx.param("dataset"),
            "dims": [size, size, size],
            "spacing": [1.0, 1.0, 1.0],
            "modality": "CT",
            "scalar_range": [float(volume.min()), float(volume.max())],
        }
        return {"volume": volume, "header": header}

    @registry.define("VolumeResample", inputs=[("volume", "VolumeData")],
                     outputs=[("volume", "VolumeData")],
                     params=[("factor", 2)], category="vis")
    def volume_resample(ctx):
        """Downsample a volume by integer striding."""
        factor = max(1, int(ctx.param("factor")))
        volume = ctx.require_input("volume")
        return {"volume": volume[::factor, ::factor, ::factor].copy()}

    @registry.define("ComputeHistogram", inputs=[("volume", "VolumeData")],
                     outputs=[("histogram", "Histogram")],
                     params=[("bins", 16)], category="vis")
    def compute_histogram(ctx):
        """Bin the scalar values of a volume into a frequency table."""
        volume = np.asarray(ctx.require_input("volume"))
        counts, edges = np.histogram(volume, bins=int(ctx.param("bins")))
        return {"histogram": {
            "columns": {
                "bin_low": [float(v) for v in edges[:-1]],
                "bin_high": [float(v) for v in edges[1:]],
                "count": [int(v) for v in counts],
            }}}

    @registry.define("RenderHistogram", inputs=[("histogram", "Histogram")],
                     outputs=[("image", "Image")],
                     params=[("height", 64)], category="vis")
    def render_histogram(ctx):
        """Render a histogram as a bar-chart raster image."""
        histogram = ctx.require_input("histogram")
        counts = histogram["columns"]["count"]
        height = int(ctx.param("height"))
        bar_width = 4
        width = bar_width * len(counts)
        peak = max(counts) or 1
        image = np.zeros((height, width), dtype=np.float64)
        for index, count in enumerate(counts):
            bar = int(round(count / peak * (height - 1)))
            if bar:
                image[height - bar:, index * bar_width:
                      (index + 1) * bar_width] = 255.0
        return {"image": image}

    @registry.define("IsosurfaceExtract", inputs=[("volume", "VolumeData")],
                     outputs=[("mesh", "Mesh")],
                     params=[("level", 100.0)], category="vis")
    def isosurface_extract(ctx):
        """Extract the level-set boundary surface of a volume.

        Emits one quad (two triangles) per voxel face separating an
        above-level voxel from a below-level neighbour — a simplified
        (but genuine, watertight) surface extraction.
        """
        volume = np.asarray(ctx.require_input("volume"))
        level = float(ctx.param("level"))
        inside = volume >= level
        vertices: List[Tuple[float, float, float]] = []
        vertex_index: Dict[Tuple[float, float, float], int] = {}
        faces: List[Tuple[int, int, int]] = []

        def vertex(point: Tuple[float, float, float]) -> int:
            if point not in vertex_index:
                vertex_index[point] = len(vertices)
                vertices.append(point)
            return vertex_index[point]

        offsets = ((1, 0, 0), (-1, 0, 0), (0, 1, 0),
                   (0, -1, 0), (0, 0, 1), (0, 0, -1))
        shape = volume.shape
        for i, j, k in zip(*np.nonzero(inside)):
            for di, dj, dk in offsets:
                ni, nj, nk = i + di, j + dj, k + dk
                outside = (not (0 <= ni < shape[0] and 0 <= nj < shape[1]
                                and 0 <= nk < shape[2])
                           or not inside[ni, nj, nk])
                if not outside:
                    continue
                corners = _face_corners((float(i), float(j), float(k)),
                                        (di, dj, dk))
                ids = [vertex(corner) for corner in corners]
                faces.append((ids[0], ids[1], ids[2]))
                faces.append((ids[0], ids[2], ids[3]))
        return {"mesh": {
            "vertices": [list(v) for v in vertices],
            "faces": [list(f) for f in faces],
            "level": level,
        }}

    @registry.define("SmoothMesh", inputs=[("mesh", "Mesh")],
                     outputs=[("mesh", "Mesh")],
                     params=[("iterations", 3), ("factor", 0.5)],
                     category="vis")
    def smooth_mesh(ctx):
        """Laplacian-smooth mesh vertices toward their neighbour centroid."""
        mesh = ctx.require_input("mesh")
        vertices = np.array(mesh["vertices"], dtype=np.float64)
        faces = [tuple(face) for face in mesh["faces"]]
        adjacency = _mesh_adjacency(faces)
        factor = float(ctx.param("factor"))
        for _ in range(int(ctx.param("iterations"))):
            updated = vertices.copy()
            for index, neighbours in adjacency.items():
                centroid = vertices[sorted(neighbours)].mean(axis=0)
                updated[index] = (1 - factor) * vertices[index] \
                    + factor * centroid
            vertices = updated
        return {"mesh": {
            "vertices": [list(map(float, v)) for v in vertices],
            "faces": [list(f) for f in faces],
            "level": mesh.get("level"),
            "smoothed": True,
        }}

    @registry.define("RenderMesh", inputs=[("mesh", "Mesh")],
                     outputs=[("image", "Image")],
                     params=[("size", 64), ("axis", 2)], category="vis")
    def render_mesh(ctx):
        """Depth-project mesh vertices along an axis into a raster image."""
        mesh = ctx.require_input("mesh")
        size = int(ctx.param("size"))
        axis = int(ctx.param("axis")) % 3
        image = np.zeros((size, size), dtype=np.float64)
        vertices = np.array(mesh["vertices"], dtype=np.float64)
        if len(vertices) == 0:
            return {"image": image}
        planar = [i for i in range(3) if i != axis]
        coords = vertices[:, planar]
        depth = vertices[:, axis]
        low = coords.min(axis=0)
        span = coords.max(axis=0) - low
        span[span == 0] = 1.0
        pixels = ((coords - low) / span * (size - 1)).astype(int)
        for (u, v), d in zip(pixels, depth):
            image[u, v] = max(image[u, v], d + 1.0)
        return {"image": image}

    @registry.define("EncodeImage", inputs=[("image", "Image")],
                     outputs=[("data", "Bytes")],
                     params=[("format", "pgm")], category="vis")
    def encode_image(ctx):
        """Encode a raster image to an on-disk byte format (PGM)."""
        if ctx.param("format") != "pgm":
            raise ValueError("only 'pgm' encoding is supported")
        return {"data": encode_pgm(np.asarray(ctx.require_input("image")))}

    @registry.define("DownloadFile", outputs=[("data", "Bytes")],
                     params=[("url", "http://example.org/data.vtk")],
                     category="vis")
    def download_file(ctx):
        """Simulated web download: deterministic bytes derived from the URL.

        Stands in for the networked download of Figure 2's scenario; the
        content is a seed header so ``ParseVolumeFile`` can regenerate a
        volume deterministically from it.
        """
        url = str(ctx.param("url"))
        digest = content_hash(url.encode("utf-8"))
        seed = int(digest[:8], 16) % 10_000
        payload = f"VOLSEED {seed} 24\nsource={url}\n".encode("ascii")
        return {"data": payload}

    @registry.define("ParseVolumeFile", inputs=[("data", "Bytes")],
                     outputs=[("volume", "VolumeData")], category="vis")
    def parse_volume_file(ctx):
        """Decode bytes from ``DownloadFile`` into a scalar volume."""
        data = ctx.require_input("data")
        first_line = data.split(b"\n", 1)[0].decode("ascii")
        token, seed, size = first_line.split()
        if token != "VOLSEED":
            raise ValueError("unrecognized volume file format")
        return {"volume": synthetic_head_volume(size=int(size),
                                                seed=int(seed))}

    @registry.define("ImageStats", inputs=[("image", "Image")],
                     outputs=[("table", "Table")], category="vis")
    def image_stats(ctx):
        """Summary statistics (min/max/mean/nonzero) of an image."""
        image = np.asarray(ctx.require_input("image"))
        return {"table": {"columns": {
            "stat": ["min", "max", "mean", "nonzero"],
            "value": [float(image.min()), float(image.max()),
                      float(image.mean()),
                      float(np.count_nonzero(image))],
        }}}


def _face_corners(base: Tuple[float, float, float],
                  normal: Tuple[int, int, int]
                  ) -> List[Tuple[float, float, float]]:
    """Corner coordinates of the voxel face with outward ``normal``."""
    i, j, k = base
    di, dj, dk = normal
    center = (i + 0.5 + 0.5 * di, j + 0.5 + 0.5 * dj, k + 0.5 + 0.5 * dk)
    if di != 0:
        spans = ((0, 0.5, 0.5), (0, 0.5, -0.5), (0, -0.5, -0.5),
                 (0, -0.5, 0.5))
    elif dj != 0:
        spans = ((0.5, 0, 0.5), (0.5, 0, -0.5), (-0.5, 0, -0.5),
                 (-0.5, 0, 0.5))
    else:
        spans = ((0.5, 0.5, 0), (0.5, -0.5, 0), (-0.5, -0.5, 0),
                 (-0.5, 0.5, 0))
    return [(center[0] + a, center[1] + b, center[2] + c)
            for a, b, c in spans]
