"""Basic module library: constants, arithmetic, strings, lists, tables.

These are the plumbing modules every workflow system ships.  They are also
used heavily by the workload generators to build large synthetic workflows
whose execution cost is controllable (see ``SpinCompute``).
"""

from __future__ import annotations

import math
import random
import time
from typing import Any, Dict, List

from repro.identity import hash_value
from repro.workflow.registry import ModuleRegistry

__all__ = ["register"]


def register(registry: ModuleRegistry) -> None:
    """Register the basic library into ``registry``."""

    @registry.define("Constant", outputs=[("value", "Any")],
                     params=[("value", None)], category="basic")
    def constant(ctx):
        """Emit the configured constant value."""
        return {"value": ctx.param("value")}

    @registry.define("StringConstant", outputs=[("value", "String")],
                     params=[("value", "")], category="basic")
    def string_constant(ctx):
        """Emit the configured string."""
        return {"value": str(ctx.param("value"))}

    @registry.define("NumberConstant", outputs=[("value", "Number")],
                     params=[("value", 0.0)], category="basic")
    def number_constant(ctx):
        """Emit the configured number."""
        return {"value": ctx.param("value")}

    @registry.define("Identity", inputs=[("value", "Any")],
                     outputs=[("value", "Any")], category="basic")
    def identity(ctx):
        """Pass the input through unchanged."""
        return {"value": ctx.input("value")}

    @registry.define("Add",
                     inputs=[("a", "Number"), ("b", "Number")],
                     outputs=[("result", "Number")], category="math")
    def add(ctx):
        """result = a + b."""
        return {"result": ctx.require_input("a") + ctx.require_input("b")}

    @registry.define("Subtract",
                     inputs=[("a", "Number"), ("b", "Number")],
                     outputs=[("result", "Number")], category="math")
    def subtract(ctx):
        """result = a - b."""
        return {"result": ctx.require_input("a") - ctx.require_input("b")}

    @registry.define("Multiply",
                     inputs=[("a", "Number"), ("b", "Number")],
                     outputs=[("result", "Number")], category="math")
    def multiply(ctx):
        """result = a * b."""
        return {"result": ctx.require_input("a") * ctx.require_input("b")}

    @registry.define("Divide",
                     inputs=[("a", "Number"), ("b", "Number")],
                     outputs=[("result", "Number")], category="math")
    def divide(ctx):
        """result = a / b (raises on division by zero)."""
        return {"result": ctx.require_input("a") / ctx.require_input("b")}

    @registry.define("Scale", inputs=[("value", "Number")],
                     outputs=[("result", "Number")],
                     params=[("factor", 1.0)], category="math")
    def scale(ctx):
        """result = value * factor."""
        return {"result": ctx.require_input("value") * ctx.param("factor")}

    @registry.define("Power", inputs=[("value", "Number")],
                     outputs=[("result", "Number")],
                     params=[("exponent", 2.0)], category="math")
    def power(ctx):
        """result = value ** exponent."""
        return {"result": math.pow(ctx.require_input("value"),
                                   ctx.param("exponent"))}

    @registry.define("Concat",
                     inputs=[("left", "String"), ("right", "String")],
                     outputs=[("result", "String")],
                     params=[("separator", "")], category="string")
    def concat(ctx):
        """Join two strings with a separator."""
        separator = ctx.param("separator")
        return {"result": f"{ctx.input('left', '')}{separator}"
                          f"{ctx.input('right', '')}"}

    @registry.define("Format", inputs=[("value", "Any")],
                     outputs=[("text", "String")],
                     params=[("template", "{value}")], category="string")
    def format_value(ctx):
        """Render the input into a template with a ``{value}`` slot."""
        return {"text": ctx.param("template").format(
            value=ctx.input("value"))}

    @registry.define("ToString", inputs=[("value", "Any")],
                     outputs=[("text", "String")], category="string")
    def to_string(ctx):
        """str() of the input value."""
        return {"text": str(ctx.input("value"))}

    @registry.define("HashValue", inputs=[("value", "Any")],
                     outputs=[("digest", "String")], category="string")
    def hash_module(ctx):
        """Content hash of the input value (hex SHA-256)."""
        return {"digest": hash_value(ctx.input("value"))}

    @registry.define("MakeList",
                     inputs=[("a", "Any"), ("b", "Any"),
                             ("c", "Any"), ("d", "Any")],
                     outputs=[("items", "List")], category="list")
    def make_list(ctx):
        """Collect up to four inputs into a list (None values dropped)."""
        items = [ctx.input(name) for name in ("a", "b", "c", "d")]
        return {"items": [item for item in items if item is not None]}

    # mark the collection inputs optional: rebuild portspec tuples
    _make_optional(registry, "MakeList", ("a", "b", "c", "d"))
    _make_optional(registry, "Concat", ("left", "right"))
    _make_optional(registry, "Identity", ("value",))
    _make_optional(registry, "Format", ("value",))
    _make_optional(registry, "ToString", ("value",))
    _make_optional(registry, "HashValue", ("value",))

    @registry.define("ListLength", inputs=[("items", "List")],
                     outputs=[("length", "Integer")], category="list")
    def list_length(ctx):
        """Number of items in the input list."""
        return {"length": len(ctx.require_input("items"))}

    @registry.define("ListGet", inputs=[("items", "List")],
                     outputs=[("item", "Any")],
                     params=[("index", 0)], category="list")
    def list_get(ctx):
        """The item at the configured index."""
        return {"item": ctx.require_input("items")[ctx.param("index")]}

    @registry.define("ListSum", inputs=[("items", "List")],
                     outputs=[("total", "Number")], category="list")
    def list_sum(ctx):
        """Sum of a numeric list."""
        return {"total": float(sum(ctx.require_input("items")))}

    @registry.define("BuildTable", outputs=[("table", "Table")],
                     params=[("columns", {})], category="table")
    def build_table(ctx):
        """Emit a table from the configured {column: [values]} mapping."""
        columns = {str(k): list(v) for k, v in ctx.param("columns").items()}
        return {"table": {"columns": columns}}

    @registry.define("SelectColumns", inputs=[("table", "Table")],
                     outputs=[("table", "Table")],
                     params=[("names", [])], category="table")
    def select_columns(ctx):
        """Keep only the named columns."""
        table = ctx.require_input("table")
        names = ctx.param("names")
        return {"table": {"columns": {
            name: values for name, values in table["columns"].items()
            if name in names}}}

    @registry.define("FilterRows", inputs=[("table", "Table")],
                     outputs=[("table", "Table")],
                     params=[("column", ""), ("op", ">"), ("value", 0)],
                     category="table")
    def filter_rows(ctx):
        """Keep rows where ``column <op> value`` holds."""
        table = ctx.require_input("table")
        column, op, bound = (ctx.param("column"), ctx.param("op"),
                             ctx.param("value"))
        ops = {">": lambda x: x > bound, "<": lambda x: x < bound,
               ">=": lambda x: x >= bound, "<=": lambda x: x <= bound,
               "==": lambda x: x == bound, "!=": lambda x: x != bound}
        predicate = ops[op]
        keep = [i for i, cell in enumerate(table["columns"][column])
                if predicate(cell)]
        return {"table": {"columns": {
            name: [values[i] for i in keep]
            for name, values in table["columns"].items()}}}

    @registry.define("AggregateColumn", inputs=[("table", "Table")],
                     outputs=[("value", "Number")],
                     params=[("column", ""), ("func", "mean")],
                     category="table")
    def aggregate_column(ctx):
        """Aggregate one column with sum/mean/min/max/count."""
        values = ctx.require_input("table")["columns"][ctx.param("column")]
        func = ctx.param("func")
        if func == "sum":
            return {"value": float(sum(values))}
        if func == "mean":
            return {"value": float(sum(values)) / len(values)}
        if func == "min":
            return {"value": float(min(values))}
        if func == "max":
            return {"value": float(max(values))}
        if func == "count":
            return {"value": float(len(values))}
        raise ValueError(f"unknown aggregate: {func}")

    @registry.define("SpinCompute", inputs=[("value", "Any")],
                     outputs=[("value", "Any")],
                     params=[("work", 1000)], category="synthetic")
    def spin_compute(ctx):
        """Burn a controllable amount of CPU, then pass the input through.

        Used by the capture-overhead benchmark so module cost dominates.
        """
        accumulator = 0.0
        for i in range(int(ctx.param("work"))):
            accumulator += math.sqrt(float(i) + 1.0)
        value = ctx.input("value")
        return {"value": value if value is not None else accumulator}

    _make_optional(registry, "SpinCompute", ("value",))

    @registry.define("Sleep", inputs=[("value", "Any")],
                     outputs=[("value", "Any")],
                     params=[("seconds", 0.01)], category="synthetic")
    def sleep_module(ctx):
        """Block for a configurable wall-clock time, pass the input through.

        The blocking stand-in for I/O- or service-bound stages; because
        ``time.sleep`` releases the GIL, wide DAGs of Sleep modules exercise
        the parallel scheduler backend.
        """
        seconds = float(ctx.param("seconds"))
        time.sleep(seconds)
        value = ctx.input("value")
        return {"value": value if value is not None else seconds}

    _make_optional(registry, "Sleep", ("value",))

    @registry.define("MakeBlob", outputs=[("value", "Bytes")],
                     params=[("size", 1024), ("seed", 0)],
                     category="synthetic")
    def make_blob(ctx):
        """Deterministic bytes of a configurable size.

        The substrate for large-payload transfer tests and benchmarks:
        multi-megabyte values that hash identically across runs without
        holding real data files.
        """
        size = int(ctx.param("size"))
        seed = int(ctx.param("seed"))
        pattern = bytes((index + seed) % 256 for index in range(256))
        repeats = size // len(pattern) + 1
        return {"value": (pattern * repeats)[:size]}

    @registry.define("RandomNumber", outputs=[("value", "Float")],
                     params=[("low", 0.0), ("high", 1.0)],
                     category="synthetic", deterministic=False)
    def random_number(ctx):
        """A fresh random float each run (never cached)."""
        return {"value": random.uniform(ctx.param("low"),
                                        ctx.param("high"))}

    @registry.define("SeededRandom", outputs=[("value", "Float")],
                     params=[("seed", 0), ("low", 0.0), ("high", 1.0)],
                     category="synthetic")
    def seeded_random(ctx):
        """A reproducible pseudo-random float derived from the seed."""
        rng = random.Random(ctx.param("seed"))
        return {"value": rng.uniform(ctx.param("low"), ctx.param("high"))}

    @registry.define("FailIf", inputs=[("value", "Any")],
                     outputs=[("value", "Any")],
                     params=[("fail", False), ("message", "injected")],
                     category="synthetic")
    def fail_if(ctx):
        """Fail on demand — used by failure-injection tests."""
        if ctx.param("fail"):
            raise RuntimeError(ctx.param("message"))
        return {"value": ctx.input("value")}

    _make_optional(registry, "FailIf", ("value",))


def _make_optional(registry: ModuleRegistry, type_name: str,
                   port_names: tuple) -> None:
    """Flip the named input ports of a registered definition to optional."""
    from dataclasses import replace
    definition = registry.get(type_name)
    definition.input_ports = tuple(
        replace(port, optional=True) if port.name in port_names else port
        for port in definition.input_ports)
