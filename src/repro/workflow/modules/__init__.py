"""Standard module libraries for the motivating domains of the paper.

The tutorial motivates scientific workflows with genomics, medical imaging,
environmental observatories/forecasting, and visualization examples.  Each
library here registers a coherent set of module definitions:

* :mod:`repro.workflow.modules.basic` — constants, arithmetic, strings,
  lists, tables, and synthetic-load modules.
* :mod:`repro.workflow.modules.vis` — the Figure 1 pipeline (volume data,
  histogram, isosurface, rendering) plus the Figure 2 scenario modules.
* :mod:`repro.workflow.modules.imaging` — the First Provenance Challenge
  fMRI modules (align_warp, reslice, softmean, slicer, convert).
* :mod:`repro.workflow.modules.genomics` — synthetic reads, filtering,
  alignment, consensus.
* :mod:`repro.workflow.modules.enviro` — sensor ingest, cleaning,
  interpolation, AR(1) forecasting.
* :mod:`repro.workflow.modules.observed` — arbitrary shell commands
  observed as modules (PROBE-style process capture in pure Python).
"""

from repro.workflow.modules import (basic, enviro, genomics, imaging,
                                    observed, vis)
from repro.workflow.registry import ModuleRegistry

__all__ = ["standard_registry", "basic", "vis", "imaging", "genomics",
           "enviro", "observed"]


def standard_registry() -> ModuleRegistry:
    """Return a registry preloaded with every standard module library."""
    registry = ModuleRegistry()
    basic.register(registry)
    vis.register(registry)
    imaging.register(registry)
    genomics.register(registry)
    enviro.register(registry)
    observed.register(registry)
    return registry
