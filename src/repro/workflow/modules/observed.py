"""Observed-process capture: arbitrary shell commands as modules.

Cuevas-Vicenttín et al. (PAPERS.md) name low-overhead capture of
script/process-level runs a core research opportunity; PROBE-style system
capture records what a process *actually touched*.  This module reproduces
that workload shape in pure Python, at declared- rather than
syscall-fidelity: a command's argv, environment, exit code, stdout/stderr
digests and its *declared* file reads/writes become ordinary provenance
artifacts, so observed processes flow through exactly the same stores,
queries and lineage machinery as workflow modules.

Two entry points:

* ``register`` adds an ``ObservedCommand`` module type, so a shell command
  can sit inside a normal workflow DAG (its declared reads/writes become
  port values other modules can consume).
* :class:`ObservedProcessSession` records a *sequence* of commands as one
  :class:`~repro.core.retrospective.WorkflowRun` — one execution per
  command, artifacts deduplicated by content hash — optionally streamed
  incrementally to a store through ``save_run_stream`` so a long session
  never materializes run-sized state in the store's ingest path.
"""

from __future__ import annotations

import os
import subprocess
import time
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.retrospective import (DataArtifact, ModuleExecution,
                                      PortBinding, WorkflowRun)
from repro.identity import content_hash, hash_value, new_id
from repro.workflow.environment import capture_environment
from repro.workflow.registry import ModuleRegistry

__all__ = ["register", "ObservedProcessSession", "run_observed",
           "file_digest"]

#: Files are digested in bounded chunks; a declared multi-gigabyte write
#: must not buffer whole in memory just to be hashed.
_DIGEST_CHUNK = 1 << 20


def file_digest(path: str) -> Tuple[str, int]:
    """(content hash, byte size) of a file, chunked; missing files get a
    path-scoped sentinel hash so two absent files never alias in lineage."""
    import hashlib
    try:
        digest = hashlib.sha256()
        size = 0
        with open(path, "rb") as handle:
            while True:
                chunk = handle.read(_DIGEST_CHUNK)
                if not chunk:
                    break
                digest.update(chunk)
                size += len(chunk)
        return digest.hexdigest(), size
    except OSError:
        return hash_value(("missing-file", str(path))), 0


def run_observed(argv: Sequence[str], *, env: Optional[Dict[str, str]] = None,
                 cwd: Optional[str] = None, stdin: str = "",
                 timeout: Optional[float] = None,
                 shell: bool = False) -> Dict[str, Any]:
    """Run one command, returning the observation record.

    The record carries exit code, stdout/stderr bytes and wall-clock
    bounds; a non-zero exit is an observation, not an exception (the
    process *was* observed) — only spawn failures and timeouts raise.
    """
    started = time.time()
    merged_env = None
    if env is not None:
        merged_env = dict(os.environ)
        merged_env.update({str(k): str(v) for k, v in env.items()})
    completed = subprocess.run(
        list(argv) if not shell else " ".join(argv),
        input=stdin.encode() if stdin else None,
        capture_output=True, env=merged_env, cwd=cwd or None,
        timeout=timeout, shell=shell)
    return {"argv": list(argv), "exit_code": completed.returncode,
            "stdout": completed.stdout, "stderr": completed.stderr,
            "started": started, "finished": time.time()}


def register(registry: ModuleRegistry) -> None:
    """Register the observed-process library into ``registry``."""

    @registry.define("ObservedCommand",
                     outputs=[("exit_code", "Number"),
                              ("stdout_digest", "String"),
                              ("stderr_digest", "String"),
                              ("writes", "Any")],
                     params=[("argv", []), ("env", {}), ("stdin", ""),
                             ("cwd", ""), ("timeout", 0.0),
                             ("reads", []), ("writes", [])],
                     category="observed", deterministic=False)
    def observed_command(ctx):
        """Run a shell command and observe it as provenance.

        ``reads``/``writes`` declare the files the command touches; their
        digests appear in the output record (``writes`` output maps path to
        content hash after the command ran).  Non-deterministic by design:
        observed processes are never memoized from cache.
        """
        argv = [str(part) for part in ctx.param("argv")]
        if not argv:
            raise ValueError("ObservedCommand: empty argv")
        timeout = float(ctx.param("timeout") or 0.0) or None
        record = run_observed(
            argv, env=dict(ctx.param("env") or {}) or None,
            cwd=str(ctx.param("cwd") or "") or None,
            stdin=str(ctx.param("stdin") or ""), timeout=timeout)
        digests = {str(path): file_digest(str(path))[0]
                   for path in ctx.param("writes")}
        return {"exit_code": record["exit_code"],
                "stdout_digest": content_hash(record["stdout"]),
                "stderr_digest": content_hash(record["stderr"]),
                "writes": digests}


class ObservedProcessSession:
    """Record a sequence of observed commands as one provenance run.

    Each :meth:`observe` call spawns the command and appends one
    :class:`~repro.core.retrospective.ModuleExecution`: argv, environment
    overrides and declared read files become input artifacts; exit code,
    stdout/stderr digests and declared written files become output
    artifacts.  Artifacts are deduplicated by content hash within the
    session (a file read back unchanged is the *same* artifact, so lineage
    chains compose across commands).

    With ``store`` and ``stream_batch`` set, completed executions are
    streamed through the store's incremental-ingest API every
    ``stream_batch`` commands; otherwise the run is saved whole on
    :meth:`finish`.

    >>> session = ObservedProcessSession(name="demo")
    >>> _ = session.observe(["python", "-c", "print('hi')"])
    >>> run = session.finish()
    >>> run.executions[0].module_type
    'observed:python'
    """

    def __init__(self, *, name: str = "observed",
                 store: Optional[Any] = None,
                 stream_batch: Optional[int] = None,
                 keep_output: bool = False) -> None:
        self.store = store
        self.stream_batch = stream_batch
        self.keep_output = keep_output
        started = time.time()
        self.run = WorkflowRun(
            id=new_id("run"), workflow_id=new_id("wf"),
            workflow_name=f"observed:{name}", workflow_signature="",
            status="running", started=started, finished=started,
            environment=capture_environment(),
            tags={"capture": "observed"})
        self._by_hash: Dict[str, DataArtifact] = {}
        self._writer: Optional[Any] = None
        self._streamed_artifacts: set = set()
        self._unstreamed = 0
        self._finished = False
        if store is not None and stream_batch:
            opener = getattr(store, "save_run_stream", None)
            if opener is not None:
                self._writer = opener(self.run)

    # -- artifact bookkeeping -------------------------------------------
    def _artifact(self, value_hash: str, *, type_name: str, created_by: str,
                  role: str, size_hint: int,
                  value: Any = None, has_value: bool = False) -> str:
        existing = self._by_hash.get(value_hash)
        if existing is not None:
            if created_by and existing.created_by != created_by:
                if created_by not in existing.also_produced_by:
                    existing.also_produced_by.append(created_by)
                    # metadata changed after a possible stream flush;
                    # re-stream so the stored row matches
                    self._streamed_artifacts.discard(existing.id)
            return existing.id
        artifact = DataArtifact(
            id=new_id("art"), value_hash=value_hash, type_name=type_name,
            created_by=created_by, role=role, size_hint=size_hint)
        self._by_hash[value_hash] = artifact
        self.run.artifacts[artifact.id] = artifact
        if has_value:
            self.run.values[artifact.id] = value
        return artifact.id

    # -- observation ----------------------------------------------------
    def observe(self, argv: Sequence[str], *,
                reads: Iterable[str] = (), writes: Iterable[str] = (),
                env: Optional[Dict[str, str]] = None,
                cwd: Optional[str] = None, stdin: str = "",
                timeout: Optional[float] = None,
                shell: bool = False) -> ModuleExecution:
        """Run ``argv`` and record it; returns the execution record.

        Spawn failures and timeouts are recorded as a ``"failed"``
        execution (with the error message) and re-raised after recording —
        the observation is never lost to the exception.
        """
        if self._finished:
            raise RuntimeError("observed session already finished")
        argv = [str(part) for part in argv]
        name = os.path.basename(argv[0]) if argv else "sh"
        execution_id = new_id("exec")
        inputs: List[PortBinding] = []
        inputs.append(PortBinding(port="argv", artifact_id=self._artifact(
            hash_value(tuple(argv)), type_name="String", created_by="",
            role="argv", size_hint=sum(len(a) for a in argv),
            value=list(argv), has_value=True)))
        if env:
            pairs = tuple(sorted((str(k), str(v)) for k, v in env.items()))
            inputs.append(PortBinding(port="env", artifact_id=self._artifact(
                hash_value(pairs), type_name="Any", created_by="",
                role="env", size_hint=len(pairs),
                value=dict(pairs), has_value=True)))
        for path in reads:
            digest, size = file_digest(str(path))
            inputs.append(PortBinding(
                port=f"read:{path}", artifact_id=self._artifact(
                    digest, type_name="FilePath", created_by="",
                    role="file-read", size_hint=size)))
        error = ""
        status = "ok"
        record: Optional[Dict[str, Any]] = None
        failure: Optional[BaseException] = None
        started = time.time()
        try:
            record = run_observed(argv, env=env, cwd=cwd, stdin=stdin,
                                  timeout=timeout, shell=shell)
        except (OSError, subprocess.SubprocessError) as exc:
            status = "failed"
            error = f"{type(exc).__name__}: {exc}"
            failure = exc
        outputs: List[PortBinding] = []
        finished = time.time()
        if record is not None:
            started = record["started"]
            finished = record["finished"]
            if record["exit_code"] != 0:
                status = "failed"
                error = f"exit code {record['exit_code']}"
            outputs.append(PortBinding(
                port="exit_code", artifact_id=self._artifact(
                    hash_value(record["exit_code"]), type_name="Number",
                    created_by=execution_id, role="exit-code", size_hint=1,
                    value=record["exit_code"], has_value=True)))
            for stream_name in ("stdout", "stderr"):
                data = record[stream_name]
                outputs.append(PortBinding(
                    port=stream_name, artifact_id=self._artifact(
                        content_hash(data), type_name="String",
                        created_by=execution_id, role=stream_name,
                        size_hint=len(data),
                        value=(data.decode("utf-8", "replace")
                               if self.keep_output else None),
                        has_value=self.keep_output)))
            for path in writes:
                digest, size = file_digest(str(path))
                outputs.append(PortBinding(
                    port=f"write:{path}", artifact_id=self._artifact(
                        digest, type_name="FilePath", created_by=execution_id,
                        role="file-write", size_hint=size)))
        # canonical binding order is by port name (what every store
        # round-trips), so keep the in-memory record in the same order
        inputs.sort(key=lambda binding: binding.port)
        outputs.sort(key=lambda binding: binding.port)
        execution = ModuleExecution(
            id=execution_id, module_id=new_id("mod"),
            module_type=f"observed:{name}", module_name=name,
            status=status,
            parameters={"argv": list(argv), "cwd": cwd or "",
                        "env": dict(env or {})},
            inputs=inputs, outputs=outputs,
            started=started, finished=finished, error=error)
        self.run.executions.append(execution)
        self._unstreamed += 1
        if (self._writer is not None and self.stream_batch
                and self._unstreamed >= self.stream_batch):
            self._stream_pending()
        if failure is not None:
            raise failure
        return execution

    def _stream_pending(self) -> None:
        """Push executions recorded since the last flush to the writer."""
        writer = self._writer
        assert writer is not None
        pending = (self.run.executions[-self._unstreamed:]
                   if self._unstreamed else [])
        for execution in pending:
            for binding in (*execution.inputs, *execution.outputs):
                artifact = self.run.artifacts.get(binding.artifact_id)
                if artifact is None or artifact.id in self._streamed_artifacts:
                    continue
                self._streamed_artifacts.add(artifact.id)
                writer.add_artifact(
                    artifact, value=self.run.values.get(artifact.id),
                    has_value=artifact.id in self.run.values)
            writer.add_execution(execution)
        writer.flush()
        self._unstreamed = 0

    # -- lifecycle ------------------------------------------------------
    def finish(self, status: Optional[str] = None) -> WorkflowRun:
        """Seal the session and return (and persist) its run.

        ``status`` defaults to ``"ok"`` when every command exited zero,
        ``"failed"`` otherwise.
        """
        if self._finished:
            return self.run
        self._finished = True
        if status is None:
            status = ("ok" if all(e.status == "ok"
                                  for e in self.run.executions)
                      else "failed")
        self.run.status = status
        self.run.finished = time.time()
        if self._writer is not None:
            self._stream_pending()
            self._writer.finish(status=self.run.status,
                                finished=self.run.finished,
                                tags=self.run.tags)
        elif self.store is not None:
            self.store.save_run(self.run)
        return self.run

    def abort(self) -> None:
        """Discard the session (removes any partially streamed state)."""
        if self._finished:
            return
        self._finished = True
        if self._writer is not None:
            self._writer.abort()

    def __enter__(self) -> "ObservedProcessSession":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if exc_type is None:
            self.finish()
        else:
            self.abort()
