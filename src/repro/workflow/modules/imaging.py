"""Medical-imaging module library — the First Provenance Challenge workflow.

The First Provenance Challenge (cited by the paper as [32]) standardized on an
fMRI workflow: four anatomy images are spatially normalized against a
reference (``align_warp``), resliced, averaged into an atlas (``softmean``),
then sliced along each axis and converted to graphics (``slicer`` +
``convert``).  Real AIR/FSL binaries are replaced with genuine numpy
implementations of the same signal chain: alignment estimates a translation by
center-of-mass matching, reslicing applies it, softmean averages, slicer
extracts planes, convert encodes PGM bytes.  Headers travel with images just
as the challenge's ``.hdr`` files do, and carry the ``global maximum``
metadata that challenge query Q5 needs.
"""

from __future__ import annotations

from typing import Any, Dict, Tuple

import numpy as np

from repro.workflow.modules.vis import encode_pgm
from repro.workflow.registry import ModuleRegistry

__all__ = ["register", "new_anatomy_image", "reference_image"]


def new_anatomy_image(subject: int, size: int = 24,
                      seed: int = 100) -> Tuple[np.ndarray, Dict[str, Any]]:
    """Synthesize one subject's anatomy image and header.

    Each subject's brain is an ellipsoid with a subject-specific offset and
    intensity, so alignment has real work to do.
    """
    rng = np.random.default_rng(seed + subject)
    axis = np.linspace(-1.0, 1.0, size)
    x, y, z = np.meshgrid(axis, axis, axis, indexing="ij")
    offset = rng.uniform(-0.25, 0.25, size=3)
    radius = np.sqrt(((x - offset[0]) / 0.7) ** 2
                     + ((y - offset[1]) / 0.6) ** 2
                     + ((z - offset[2]) / 0.65) ** 2)
    intensity = 90.0 + 10.0 * subject
    image = np.clip(1.0 - radius, 0.0, None) * intensity
    image += rng.normal(0.0, 0.5, size=image.shape)
    header = {
        "subject": f"anatomy{subject}",
        "dims": [size, size, size],
        "global_maximum": float(image.max()),
        "center_offset": [float(v) for v in offset],
        "modality": "anatomy-MRI",
    }
    return image.astype(np.float64), header


def reference_image(size: int = 24) -> Tuple[np.ndarray, Dict[str, Any]]:
    """The centred reference brain every subject is aligned against."""
    axis = np.linspace(-1.0, 1.0, size)
    x, y, z = np.meshgrid(axis, axis, axis, indexing="ij")
    radius = np.sqrt((x / 0.7) ** 2 + (y / 0.6) ** 2 + (z / 0.65) ** 2)
    image = np.clip(1.0 - radius, 0.0, None) * 100.0
    header = {"subject": "reference", "dims": [size, size, size],
              "global_maximum": float(image.max()),
              "modality": "anatomy-MRI"}
    return image.astype(np.float64), header


def _center_of_mass(image: np.ndarray) -> np.ndarray:
    total = float(image.sum()) or 1.0
    grids = np.indices(image.shape).astype(np.float64)
    return np.array([float((g * image).sum()) / total for g in grids])


def register(registry: ModuleRegistry) -> None:
    """Register the imaging library into ``registry``."""

    @registry.define("LoadAnatomyImage",
                     outputs=[("image", "BrainImage"),
                              ("header", "ImageHeader")],
                     params=[("subject", 1), ("size", 24), ("seed", 100)],
                     category="imaging")
    def load_anatomy(ctx):
        """Load (synthesize) one subject's anatomy image + header."""
        image, header = new_anatomy_image(int(ctx.param("subject")),
                                          size=int(ctx.param("size")),
                                          seed=int(ctx.param("seed")))
        return {"image": image, "header": header}

    @registry.define("LoadReferenceImage",
                     outputs=[("image", "BrainImage"),
                              ("header", "ImageHeader")],
                     params=[("size", 24)], category="imaging")
    def load_reference(ctx):
        """Load (synthesize) the alignment reference image + header."""
        image, header = reference_image(size=int(ctx.param("size")))
        return {"image": image, "header": header}

    @registry.define("AlignWarp",
                     inputs=[("image", "BrainImage"),
                             ("header", "ImageHeader"),
                             ("reference", "BrainImage"),
                             ("ref_header", "ImageHeader")],
                     outputs=[("warp", "WarpParams")],
                     params=[("model", 12)], category="imaging")
    def align_warp(ctx):
        """Estimate spatial-normalization parameters (AIR align_warp).

        The ``model`` parameter mirrors align_warp's ``-m`` flag (12 =
        twelfth-order model in the original; here it selects how many
        harmonics of the offset estimate are retained — model 12 keeps the
        full estimate, lower models truncate it).
        """
        image = np.asarray(ctx.require_input("image"))
        reference = np.asarray(ctx.require_input("reference"))
        shift = _center_of_mass(reference) - _center_of_mass(image)
        model = int(ctx.param("model"))
        precision = min(1.0, model / 12.0)
        return {"warp": {
            "translation": [float(v * precision) for v in shift],
            "model": model,
            "subject": ctx.require_input("header").get("subject"),
        }}

    @registry.define("Reslice",
                     inputs=[("image", "BrainImage"),
                             ("warp", "WarpParams")],
                     outputs=[("image", "BrainImage"),
                              ("header", "ImageHeader")],
                     category="imaging")
    def reslice(ctx):
        """Apply warp parameters, producing the normalized image (reslice)."""
        image = np.asarray(ctx.require_input("image"))
        warp = ctx.require_input("warp")
        shifted = image
        for axis, amount in enumerate(warp["translation"]):
            shifted = np.roll(shifted, int(round(amount)), axis=axis)
        header = {
            "subject": warp.get("subject"),
            "dims": list(image.shape),
            "global_maximum": float(shifted.max()),
            "resliced": True,
            "model": warp.get("model"),
        }
        return {"image": shifted.astype(np.float64), "header": header}

    @registry.define("Softmean",
                     inputs=[("image1", "BrainImage"),
                             ("image2", "BrainImage"),
                             ("image3", "BrainImage"),
                             ("image4", "BrainImage")],
                     outputs=[("atlas", "BrainImage"),
                              ("atlas_header", "ImageHeader")],
                     category="imaging")
    def softmean(ctx):
        """Average the resliced images into the atlas (softmean)."""
        images = [np.asarray(ctx.require_input(f"image{i}"))
                  for i in (1, 2, 3, 4)]
        atlas = np.mean(images, axis=0)
        header = {"subject": "atlas", "dims": list(atlas.shape),
                  "global_maximum": float(atlas.max()),
                  "inputs": 4}
        return {"atlas": atlas.astype(np.float64), "atlas_header": header}

    @registry.define("Slicer",
                     inputs=[("image", "BrainImage"),
                             ("header", "ImageHeader")],
                     outputs=[("slice", "Image")],
                     params=[("axis", "x"), ("position", -1)],
                     category="imaging")
    def slicer(ctx):
        """Extract a 2-D plane from the atlas along x, y or z (slicer)."""
        image = np.asarray(ctx.require_input("image"))
        axis_index = {"x": 0, "y": 1, "z": 2}[str(ctx.param("axis"))]
        position = int(ctx.param("position"))
        if position < 0:
            position = image.shape[axis_index] // 2
        plane = np.take(image, position, axis=axis_index)
        return {"slice": np.asarray(plane, dtype=np.float64)}

    @registry.define("Convert",
                     inputs=[("slice", "Image")],
                     outputs=[("graphic", "Bytes")],
                     params=[("format", "pgm")], category="imaging")
    def convert(ctx):
        """Encode an image slice to a graphic file (pgmtoppm/convert)."""
        if ctx.param("format") != "pgm":
            raise ValueError("only 'pgm' conversion is supported")
        return {"graphic": encode_pgm(
            np.asarray(ctx.require_input("slice")))}
