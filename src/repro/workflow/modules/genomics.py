"""Genomics module library: synthetic reads, filtering, alignment, consensus.

Genomics is the paper's first motivating domain.  The library provides a
realistic small pipeline: generate reads around a (synthetic) reference
haplotype, quality-filter them, align pairs with Needleman–Wunsch, call a
consensus, and compute summary tables.  All stages are deterministic given
their seed parameters.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.workflow.registry import ModuleRegistry

__all__ = ["register", "needleman_wunsch", "synthetic_reads"]

_BASES = "ACGT"


def synthetic_reads(count: int, length: int, seed: int,
                    mutation_rate: float = 0.02) -> Tuple[str, List[str]]:
    """Generate a reference string and ``count`` mutated reads of it."""
    rng = np.random.default_rng(seed)
    reference = "".join(_BASES[i] for i in rng.integers(0, 4, size=length))
    reads: List[str] = []
    for _ in range(count):
        bases = list(reference)
        for position in range(length):
            if rng.random() < mutation_rate:
                bases[position] = _BASES[int(rng.integers(0, 4))]
        reads.append("".join(bases))
    return reference, reads


def needleman_wunsch(query: str, target: str, match: float = 1.0,
                     mismatch: float = -1.0, gap: float = -2.0
                     ) -> Dict[str, object]:
    """Global pairwise alignment; returns score and aligned strings."""
    rows, cols = len(query) + 1, len(target) + 1
    score = np.zeros((rows, cols), dtype=np.float64)
    score[:, 0] = np.arange(rows) * gap
    score[0, :] = np.arange(cols) * gap
    for i in range(1, rows):
        for j in range(1, cols):
            diagonal = score[i - 1, j - 1] + (
                match if query[i - 1] == target[j - 1] else mismatch)
            score[i, j] = max(diagonal, score[i - 1, j] + gap,
                              score[i, j - 1] + gap)
    aligned_query: List[str] = []
    aligned_target: List[str] = []
    i, j = len(query), len(target)
    while i > 0 or j > 0:
        if i > 0 and j > 0 and np.isclose(
                score[i, j], score[i - 1, j - 1]
                + (match if query[i - 1] == target[j - 1] else mismatch)):
            aligned_query.append(query[i - 1])
            aligned_target.append(target[j - 1])
            i, j = i - 1, j - 1
        elif i > 0 and np.isclose(score[i, j], score[i - 1, j] + gap):
            aligned_query.append(query[i - 1])
            aligned_target.append("-")
            i -= 1
        else:
            aligned_query.append("-")
            aligned_target.append(target[j - 1])
            j -= 1
    return {
        "score": float(score[len(query), len(target)]),
        "aligned_query": "".join(reversed(aligned_query)),
        "aligned_target": "".join(reversed(aligned_target)),
    }


def register(registry: ModuleRegistry) -> None:
    """Register the genomics library into ``registry``."""

    @registry.define("SyntheticReads",
                     outputs=[("reads", "SequenceSet"),
                              ("reference", "Sequence")],
                     params=[("count", 8), ("length", 60), ("seed", 11),
                             ("mutation_rate", 0.02)],
                     category="genomics")
    def synthetic_reads_module(ctx):
        """Generate a reference haplotype and mutated reads around it."""
        reference, reads = synthetic_reads(
            int(ctx.param("count")), int(ctx.param("length")),
            int(ctx.param("seed")), float(ctx.param("mutation_rate")))
        return {"reads": reads, "reference": reference}

    @registry.define("QualityFilter", inputs=[("reads", "SequenceSet")],
                     outputs=[("reads", "SequenceSet")],
                     params=[("min_complexity", 0.4)], category="genomics")
    def quality_filter(ctx):
        """Drop low-complexity reads (few distinct 3-mers)."""
        threshold = float(ctx.param("min_complexity"))
        kept = []
        for read in ctx.require_input("reads"):
            kmers = {read[i:i + 3] for i in range(max(1, len(read) - 2))}
            possible = max(1, len(read) - 2)
            if len(kmers) / possible >= threshold:
                kept.append(read)
        return {"reads": kept}

    @registry.define("PairwiseAlign",
                     inputs=[("query", "Sequence"), ("target", "Sequence")],
                     outputs=[("alignment", "Alignment")],
                     params=[("match", 1.0), ("mismatch", -1.0),
                             ("gap", -2.0)],
                     category="genomics")
    def pairwise_align(ctx):
        """Needleman–Wunsch global alignment of two sequences."""
        result = needleman_wunsch(
            ctx.require_input("query"), ctx.require_input("target"),
            match=float(ctx.param("match")),
            mismatch=float(ctx.param("mismatch")),
            gap=float(ctx.param("gap")))
        return {"alignment": {"columns": {
            "field": ["score", "aligned_query", "aligned_target"],
            "value": [result["score"], result["aligned_query"],
                      result["aligned_target"]],
        }}}

    @registry.define("ConsensusCall", inputs=[("reads", "SequenceSet")],
                     outputs=[("consensus", "Sequence")],
                     category="genomics")
    def consensus_call(ctx):
        """Majority-vote consensus across equal-length reads."""
        reads = ctx.require_input("reads")
        if not reads:
            return {"consensus": ""}
        length = min(len(read) for read in reads)
        consensus = []
        for position in range(length):
            counts: Dict[str, int] = {}
            for read in reads:
                base = read[position]
                counts[base] = counts.get(base, 0) + 1
            consensus.append(max(sorted(counts), key=counts.get))
        return {"consensus": "".join(consensus)}

    @registry.define("GCContent", inputs=[("reads", "SequenceSet")],
                     outputs=[("table", "Table")], category="genomics")
    def gc_content(ctx):
        """Per-read GC fraction as a table."""
        reads = ctx.require_input("reads")
        fractions = [
            (read.count("G") + read.count("C")) / len(read) if read else 0.0
            for read in reads]
        return {"table": {"columns": {
            "read_index": list(range(len(reads))),
            "gc_fraction": [float(f) for f in fractions],
        }}}

    @registry.define("MotifScan", inputs=[("reads", "SequenceSet")],
                     outputs=[("table", "Table")],
                     params=[("motif", "ACG")], category="genomics")
    def motif_scan(ctx):
        """Count motif occurrences in each read."""
        motif = str(ctx.param("motif"))
        reads = ctx.require_input("reads")
        return {"table": {"columns": {
            "read_index": list(range(len(reads))),
            "hits": [read.count(motif) for read in reads],
        }}}

    @registry.define("VariantTable",
                     inputs=[("consensus", "Sequence"),
                             ("reference", "Sequence")],
                     outputs=[("table", "Table")], category="genomics")
    def variant_table(ctx):
        """Positions where consensus differs from the reference."""
        consensus = ctx.require_input("consensus")
        reference = ctx.require_input("reference")
        length = min(len(consensus), len(reference))
        positions = [i for i in range(length)
                     if consensus[i] != reference[i]]
        return {"table": {"columns": {
            "position": positions,
            "reference": [reference[i] for i in positions],
            "call": [consensus[i] for i in positions],
        }}}
