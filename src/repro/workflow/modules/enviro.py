"""Environmental-observatory module library: sensor series and forecasting.

Environmental observatories and forecasting systems are among the paper's
motivating applications.  The library models the standard chain: ingest a
sensor time series (synthetic AR(1) signal with seasonality, gaps and
outliers), clean it, fill gaps, fit an autoregressive model, and forecast —
with a comparison module for sweep-style evaluation.
"""

from __future__ import annotations

from typing import Any, Dict, List

import numpy as np

from repro.workflow.registry import ModuleRegistry

__all__ = ["register", "synthetic_series"]


def synthetic_series(days: int, seed: int, phi: float = 0.8,
                     missing_rate: float = 0.05,
                     outlier_rate: float = 0.02) -> Dict[str, List[float]]:
    """AR(1)-plus-seasonality sensor series with injected gaps and outliers."""
    rng = np.random.default_rng(seed)
    steps = days * 24
    values = np.zeros(steps)
    level = 15.0
    for t in range(1, steps):
        season = 5.0 * np.sin(2 * np.pi * (t % 24) / 24.0)
        values[t] = (level + phi * (values[t - 1] - level) + season * 0.1
                     + rng.normal(0.0, 0.5))
    outliers = rng.random(steps) < outlier_rate
    values[outliers] += rng.normal(0.0, 25.0, size=int(outliers.sum()))
    missing = rng.random(steps) < missing_rate
    values[missing] = np.nan
    return {
        "t": [float(t) for t in range(steps)],
        "v": [float(v) for v in values],
    }


def _series_array(series: Dict[str, List[float]]) -> np.ndarray:
    return np.asarray(series["v"], dtype=np.float64)


def register(registry: ModuleRegistry) -> None:
    """Register the environmental library into ``registry``."""

    @registry.define("SensorIngest",
                     outputs=[("series", "TimeSeries")],
                     params=[("station", "ST-01"), ("days", 7),
                             ("seed", 3), ("phi", 0.8)],
                     category="enviro")
    def sensor_ingest(ctx):
        """Pull a station's hourly series (synthetic, deterministic)."""
        series = synthetic_series(int(ctx.param("days")),
                                  int(ctx.param("seed")),
                                  phi=float(ctx.param("phi")))
        series["station"] = ctx.param("station")
        return {"series": series}

    @registry.define("CleanSeries", inputs=[("series", "TimeSeries")],
                     outputs=[("series", "TimeSeries")],
                     params=[("zmax", 4.0)], category="enviro")
    def clean_series(ctx):
        """Replace |z| > zmax outliers with NaN (robust z-score)."""
        series = dict(ctx.require_input("series"))
        values = _series_array(series)
        finite = values[np.isfinite(values)]
        median = float(np.median(finite))
        mad = float(np.median(np.abs(finite - median))) or 1.0
        z = np.abs(values - median) / (1.4826 * mad)
        cleaned = values.copy()
        cleaned[z > float(ctx.param("zmax"))] = np.nan
        series["v"] = [float(v) for v in cleaned]
        return {"series": series}

    @registry.define("InterpolateGaps", inputs=[("series", "TimeSeries")],
                     outputs=[("series", "TimeSeries")], category="enviro")
    def interpolate_gaps(ctx):
        """Linearly interpolate NaN gaps (edge gaps take nearest value)."""
        series = dict(ctx.require_input("series"))
        values = _series_array(series)
        t = np.arange(len(values), dtype=np.float64)
        good = np.isfinite(values)
        if not good.any():
            raise ValueError("series has no finite values to interpolate")
        filled = np.interp(t, t[good], values[good])
        series["v"] = [float(v) for v in filled]
        return {"series": series}

    @registry.define("FitAR", inputs=[("series", "TimeSeries")],
                     outputs=[("model", "Model")], category="enviro")
    def fit_ar(ctx):
        """Fit an AR(1) model by lag-1 Yule-Walker."""
        values = _series_array(ctx.require_input("series"))
        if not np.isfinite(values).all():
            raise ValueError("FitAR requires a gap-free series")
        mu = float(values.mean())
        centered = values - mu
        denominator = float((centered[:-1] ** 2).sum()) or 1.0
        phi = float((centered[1:] * centered[:-1]).sum()) / denominator
        residuals = centered[1:] - phi * centered[:-1]
        return {"model": {"kind": "AR1", "mu": mu, "phi": phi,
                          "sigma": float(residuals.std())}}

    @registry.define("Forecast",
                     inputs=[("series", "TimeSeries"), ("model", "Model")],
                     outputs=[("forecast", "TimeSeries")],
                     params=[("horizon", 24)], category="enviro")
    def forecast(ctx):
        """Roll the fitted AR(1) model forward ``horizon`` steps."""
        series = ctx.require_input("series")
        model = ctx.require_input("model")
        values = _series_array(series)
        last = float(values[-1])
        mu, phi = model["mu"], model["phi"]
        horizon = int(ctx.param("horizon"))
        predictions = []
        current = last
        for _ in range(horizon):
            current = mu + phi * (current - mu)
            predictions.append(float(current))
        start = series["t"][-1] + 1 if series["t"] else 0.0
        return {"forecast": {
            "t": [float(start + i) for i in range(horizon)],
            "v": predictions,
            "station": series.get("station"),
        }}

    @registry.define("CompareSeries",
                     inputs=[("actual", "TimeSeries"),
                             ("predicted", "TimeSeries")],
                     outputs=[("metrics", "Table")], category="enviro")
    def compare_series(ctx):
        """RMSE and MAE between two series over their common length."""
        actual = _series_array(ctx.require_input("actual"))
        predicted = _series_array(ctx.require_input("predicted"))
        length = min(len(actual), len(predicted))
        if length == 0:
            raise ValueError("cannot compare empty series")
        error = actual[:length] - predicted[:length]
        finite = np.isfinite(error)
        error = error[finite]
        return {"metrics": {"columns": {
            "metric": ["rmse", "mae", "n"],
            "value": [float(np.sqrt((error ** 2).mean())),
                      float(np.abs(error).mean()), float(error.size)],
        }}}

    @registry.define("SeasonalSummary", inputs=[("series", "TimeSeries")],
                     outputs=[("table", "Table")], category="enviro")
    def seasonal_summary(ctx):
        """Mean value by hour-of-day."""
        series = ctx.require_input("series")
        values = _series_array(series)
        hours = np.asarray(series["t"], dtype=np.float64) % 24
        means = []
        for hour in range(24):
            bucket = values[(hours == hour) & np.isfinite(values)]
            means.append(float(bucket.mean()) if bucket.size else 0.0)
        return {"table": {"columns": {
            "hour": list(range(24)),
            "mean": means,
        }}}
