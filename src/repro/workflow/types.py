"""Port type system for scientific workflows.

Scientific workflow systems (Kepler, Taverna, VisTrails) attach types to module
ports so that workflow composition can be statically checked: a connection is
valid only when the source port's type is a subtype of the target port's type.
This module implements a small nominal type lattice with single inheritance
rooted at ``ANY``, plus a registry of the built-in scientific types used by the
standard module libraries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

__all__ = [
    "PortType",
    "TypeRegistry",
    "BUILTIN_TYPES",
    "default_type_registry",
]


@dataclass(frozen=True)
class PortType:
    """A named type in the port-type lattice.

    Attributes:
        name: unique type name, e.g. ``"Table"``.
        parent: name of the supertype (None only for the root ``Any``).
        description: human-readable description for documentation and UIs.
    """

    name: str
    parent: Optional[str] = "Any"
    description: str = ""

    def __str__(self) -> str:
        return self.name


class TypeRegistry:
    """Holds the set of known port types and answers subtyping queries."""

    def __init__(self) -> None:
        self._types: Dict[str, PortType] = {}
        self.register(PortType("Any", parent=None,
                               description="Top type; accepts anything."))

    def register(self, port_type: PortType) -> PortType:
        """Add ``port_type``; its parent must already be registered."""
        if port_type.name in self._types:
            raise ValueError(f"type already registered: {port_type.name}")
        if port_type.parent is not None and port_type.parent not in self._types:
            raise ValueError(
                f"parent type {port_type.parent!r} of {port_type.name!r} "
                "is not registered")
        self._types[port_type.name] = port_type
        return port_type

    def get(self, name: str) -> PortType:
        """Return the type named ``name`` (KeyError if unknown)."""
        return self._types[name]

    def __contains__(self, name: str) -> bool:
        return name in self._types

    def __iter__(self) -> Iterator[PortType]:
        return iter(self._types.values())

    def ancestors(self, name: str) -> Iterator[str]:
        """Yield ``name`` and each supertype up to the root, in order."""
        current: Optional[str] = name
        while current is not None:
            port_type = self._types[current]
            yield port_type.name
            current = port_type.parent

    def is_subtype(self, sub: str, sup: str) -> bool:
        """Return True when a value of type ``sub`` may flow into ``sup``."""
        if sup == "Any":
            return sub in self._types
        return sup in set(self.ancestors(sub))

    def common_supertype(self, first: str, second: str) -> str:
        """Return the most specific common ancestor of the two types."""
        firsts = list(self.ancestors(first))
        seconds = set(self.ancestors(second))
        for name in firsts:
            if name in seconds:
                return name
        return "Any"


#: The built-in scientific types shipped with the standard module libraries.
BUILTIN_TYPES = (
    PortType("Bytes", description="Raw byte string."),
    PortType("String", description="Unicode text."),
    PortType("Number", description="Any numeric scalar."),
    PortType("Integer", parent="Number"),
    PortType("Float", parent="Number"),
    PortType("Boolean"),
    PortType("List", description="Ordered collection of values."),
    PortType("Mapping", description="Key/value dictionary."),
    PortType("Table", description="Rows-and-columns tabular data."),
    PortType("Array", description="N-dimensional numeric array."),
    PortType("VolumeData", parent="Array",
             description="3-D structured grid of scalars (e.g. a CT scan)."),
    PortType("Image", parent="Array",
             description="2-D raster image."),
    PortType("Mesh", description="Triangle mesh (vertices + faces)."),
    PortType("Histogram", parent="Table",
             description="Binned frequency table."),
    PortType("Sequence", parent="String",
             description="Biological sequence (DNA/RNA/protein)."),
    PortType("SequenceSet", parent="List",
             description="Collection of biological sequences."),
    PortType("Alignment", parent="Table",
             description="Multiple sequence alignment."),
    PortType("TimeSeries", parent="Table",
             description="Timestamped observations."),
    PortType("Model", description="Fitted statistical or physical model."),
    PortType("BrainImage", parent="Array",
             description="fMRI/anatomy image volume (Provenance Challenge)."),
    PortType("ImageHeader", parent="Mapping",
             description="Metadata header of a brain image."),
    PortType("WarpParams", parent="Mapping",
             description="Spatial normalization parameters (align_warp)."),
    PortType("URL", parent="String"),
    PortType("FilePath", parent="String"),
)


def default_type_registry() -> TypeRegistry:
    """Return a fresh registry preloaded with all built-in types."""
    registry = TypeRegistry()
    for port_type in BUILTIN_TYPES:
        registry.register(port_type)
    return registry
