"""Provenance as a service: a shared store behind `repro serve`.

One long-lived server owns a sharded provenance store; every tool in the
lab talks to it over a local socket instead of opening the database
files directly.  This example starts the server in-process (the CLI
equivalent is ``python -m repro serve --root ./prov --shards 4``), then
plays three clients:

* an *ingesting* client that streams a captured workflow run in batches
  (each batch is acknowledged only once it is durable on its shard);
* an *observing* client that records a shell command as an
  observed-process run, straight into the service;
* a *querying* client that runs declarative selects and lineage walks
  over everything the other two wrote.

Run with:  python examples/service_client.py
"""

import tempfile

from repro.core import ProvenanceCapture
from repro.service import (ProvenanceClient, ProvenanceService,
                           ShardedProvenanceStore)
from repro.storage import ProvQuery
from repro.workflow import Executor
from repro.workflow.modules import standard_registry
from repro.workflow.modules.observed import ObservedProcessSession
from repro.workloads import build_vis_workflow

root = tempfile.mkdtemp(prefix="repro-service-")
store = ShardedProvenanceStore.open(root, shards=4)
server = ProvenanceService(store, close_store=True).start()
address = f"{server.host}:{server.port}"
print(f"=== Serving {root} (4 shards) on {address} ===")

# --- client 1: stream a captured run into the service --------------------
registry = standard_registry()
capture = ProvenanceCapture(registry=registry, keep_values=False)
Executor(registry, listeners=[capture]).execute(
    build_vis_workflow(size=16, level=90.0))
run = capture.last_run()

ingest = ProvenanceClient(server.host, server.port)
writer = ingest.save_run_stream(run)
for artifact in run.artifacts.values():
    writer.add_artifact(artifact)
for index, execution in enumerate(run.executions, 1):
    writer.add_execution(execution)
    if index % 2 == 0:
        writer.flush()  # ack = this batch is durable on its shard
writer.finish(status=run.status, finished=run.finished, tags=run.tags)
print(f"streamed run {run.id} "
      f"({len(run.executions)} executions) to shard "
      f"{store.shard_index(run.id)}")
ingest.close()

# --- client 2: observe a shell command straight into the service ---------
with ProvenanceClient.connect(address) as observer:
    session = ObservedProcessSession(name="example", store=observer,
                                     stream_batch=1)
    session.observe(["python", "-c", "print('hello from a tool')"])
    observed = session.finish()
    print(f"observed run {observed.id}: "
          f"{observed.executions[0].module_name} -> {observed.status}")

# --- client 3: query everything the others wrote -------------------------
with ProvenanceClient.connect(address) as query:
    print(f"\n=== {len(query.list_runs())} runs on the server ===")
    for summary in query.list_runs():
        print(f"  {summary.run_id}  [{summary.status}] "
              f"{summary.workflow_name}")

    rows = query.select(ProvQuery.executions()
                        .where(run_id=run.id, status="ok")
                        .order_by("started")
                        .project("module_name", "id")).all()
    print(f"\n=== {len(rows)} ok executions in the streamed run ===")
    for row in rows:
        print(f"  {row['module_name']:12s} {row['id']}")

    product = run.final_artifacts()[0]
    upstream = query.lineage_closure(product.value_hash, direction="up")
    print(f"\nfinal artifact {product.id} derives from "
          f"{len(upstream) - 1} upstream values (cross-shard walk)")

    print("\nserver counters:", query.stats()["counters"])

server.close()
print("server closed.")
