"""Connecting database and workflow provenance (paper §2.4, open problem 4).

A relational query runs *as a workflow module*: coarse-grained provenance
(which artifacts fed the query) is captured by the engine like any other
module, while the semiring-annotated algebra captures fine-grained
provenance (which rows).  One cross-layer call answers: "this output row —
which upstream artifacts AND which rows inside them does it come from?"

Run with:  python examples/db_workflow_bridge.py
"""

from repro.core import ProvenanceManager
from repro.dbprov import (Join, PolynomialSemiring, Project, Scan,
                          base_relation, cross_layer_lineage,
                          expr_to_dict, join, project,
                          register_db_modules)

# --- fine-grained provenance, standalone -------------------------------
print("=== Provenance polynomials (standalone algebra) ===")
poly = PolynomialSemiring()
stations = base_relation(
    "stations", ["sid", "region"],
    [("s1", "north"), ("s2", "north"), ("s3", "south")], poly)
readings = base_relation(
    "readings", ["sid", "temp"],
    [("s1", 12.5), ("s2", 14.0), ("s2", 13.1), ("s3", 22.0)], poly)
north = join(stations, readings, semiring=poly)
regions = project(north, ["region"], semiring=poly)
for row, annotation in zip(regions.rows, regions.annotations):
    print(f"  {row[0]:6s} <- {PolynomialSemiring.render(annotation)}")

# --- the bridge: the same query inside a workflow ------------------------
print("\n=== The same query as a workflow module ===")
manager = ProvenanceManager()
register_db_modules(manager.registry)

workflow = manager.new_workflow("sensor-report")
station_table = manager.add_module(workflow, "BuildTable", parameters={
    "columns": {"sid": ["s1", "s2", "s3"],
                "region": ["north", "north", "south"]}})
reading_table = manager.add_module(workflow, "BuildTable", parameters={
    "columns": {"sid": ["s1", "s2", "s2", "s3"],
                "temp": [12.5, 14.0, 13.1, 22.0]}})
query = manager.add_module(workflow, "RelationalQuery", parameters={
    "expression": expr_to_dict(
        Project(Join(Scan("stations"), Scan("readings")),
                ("region", "temp"))),
    "semiring": "lineage",
    "names": ["stations", "readings"]})
report = manager.add_module(workflow, "AggregateColumn", parameters={
    "column": "temp", "func": "mean"})
workflow.connect(station_table.id, "table", query.id, "rel1")
workflow.connect(reading_table.id, "table", query.id, "rel2")
workflow.connect(query.id, "table", report.id, "table")

run = manager.run(workflow)
table = run.value(run.artifacts_for_module(query.id, "table").id)
mean = run.value(run.artifacts_for_module(report.id, "value").id)
print(f"  query result rows: {len(table['columns']['region'])}, "
      f"downstream mean temp: {mean:.2f}")

# --- cross-layer lineage ----------------------------------------------
print("\n=== Cross-layer lineage of output row 1 ===")
lineage = cross_layer_lineage(run, query.id, 1)
print(" ", lineage.describe())
print("  base tuples:", sorted(lineage.base_tuples))
print("  upstream workflow artifacts:",
      len(lineage.upstream_artifacts))
for artifact_id in sorted(lineage.upstream_artifacts):
    artifact = run.artifacts[artifact_id]
    creator = (run.execution(artifact.created_by).module_name
               if artifact.created_by else "external")
    print(f"    {artifact.type_name:8s} produced by {creator}")
