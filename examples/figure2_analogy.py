"""Figure 2 of the paper: refining workflows by analogy.

The user picks an example pair — a workflow that downloads a file from the
Web and creates a simple visualization, and its refinement in which the
resulting visualization is smoothed.  The system then applies the *same
change* to a different workflow automatically, matching the surrounding
modules by similarity ("the system identifies the most likely match").

Run with:  python examples/figure2_analogy.py
"""

from repro.core import ProvenanceManager
from repro.evolution import apply_by_analogy, diff_workflows
from repro.workflow import Module
from repro.workloads import build_fig2_pair

manager = ProvenanceManager()

# The analogy template: (before, after) differ by an inserted SmoothMesh.
before, after = build_fig2_pair()
diff = diff_workflows(before, after)
print("=== The example pair's difference (the analogy template) ===")
for line in diff.describe(before, after):
    print(" ", line)

# A different workflow: a local head scan instead of a web download, with
# an extra histogram branch.  Module ids share nothing with the template.
other = manager.new_workflow("local-head-vis")
load = manager.add_module(other, "LoadVolume", name="load",
                          parameters={"size": 20})
iso = manager.add_module(other, "IsosurfaceExtract", name="iso",
                         parameters={"level": 95.0})
render = manager.add_module(other, "RenderMesh", name="render")
hist = manager.add_module(other, "ComputeHistogram", name="hist")
other.connect(load.id, "volume", iso.id, "volume")
other.connect(iso.id, "mesh", render.id, "mesh")
other.connect(load.id, "volume", hist.id, "volume")

print("\n=== Applying the change by analogy ===")
result = apply_by_analogy(before, after, other)
refined = result.workflow
print("  removed connections (orange):", len(result.removed_connections))
print("  added modules (blue):",
      [refined.modules[m].type_name for m in result.added_modules])
print("  added connections (blue):", len(result.added_connections))
print("  skipped operations:", result.skipped or "none")
print("  similarity match used:")
for a_id, b_id in sorted(result.match.mapping.items()):
    print(f"    {before.modules[a_id].name:10s} -> "
          f"{other.modules[b_id].name:10s} "
          f"(score {result.match.score_of(a_id):.2f})")

# The refined workflow runs — and its mesh really is smoothed.
run = manager.run(refined)
smooth = next(m for m in refined.modules.values()
              if m.type_name == "SmoothMesh")
mesh = run.value(run.artifacts_for_module(smooth.id, "mesh").id)
print(f"\nrefined workflow ran: {run.status}; "
      f"smoothed={mesh.get('smoothed')} "
      f"({len(mesh['vertices'])} vertices)")
