"""Social data analysis: a science collaboratory in action.

Users share workflows with their provenance, search and fork each other's
work, and the community's accumulated provenance powers workflow-completion
recommendations — the paper's §2.3 "wisdom of the crowds" for science.

Run with:  python examples/social_collaboratory.py
"""

from repro.apps import Collaboratory
from repro.core import ProvenanceManager
from repro.workloads import (build_enviro_workflow, build_fig2_pair,
                             build_genomics_workflow, build_vis_workflow)

manager = ProvenanceManager()
collab = Collaboratory(manager.registry, name="open-science-hub")

# A small community shares its work (runs attached as provenance).
alice = collab.join("alice", "UPenn")
bob = collab.join("bob", "Utah")
carol = collab.join("carol", "NYU")

vis = build_vis_workflow(size=12)
entry_vis = collab.publish(alice.id, vis, "head-scan visualization",
                           description="histogram + isosurface pipeline",
                           tags={"vis", "medical"},
                           runs=[manager.run(vis)])
gen = build_genomics_workflow()
collab.publish(bob.id, gen, "consensus caller",
               description="reads -> QC -> consensus -> variants",
               tags={"genomics"}, runs=[manager.run(gen)])
env = build_enviro_workflow(days=7)
collab.publish(carol.id, env, "station forecaster",
               description="sensor cleaning and AR(1) forecasting",
               tags={"enviro", "forecast"}, runs=[manager.run(env)])
before, after = build_fig2_pair()
collab.publish(alice.id, after, "smoothed web visualization",
               tags={"vis"})

# Community activity: stars and forks.
collab.star(bob.id, entry_vis.workflow.id)
collab.star(carol.id, entry_vis.workflow.id)
fork = collab.fork(carol.id, entry_vis.workflow.id,
                   title="carol's head-scan variant")

print("=== Community ===")
for key, value in collab.statistics().items():
    print(f"  {key}: {value}")

print("\n=== Search ===")
print("  'vis':", [entry.title for entry in collab.search("vis")])
print("  uses IsosurfaceExtract:",
      [entry.title for entry
       in collab.search_by_module_type("IsosurfaceExtract")])

print("\n=== Trending pipeline fragments (mined from shared work) ===")
for path, support in sorted(collab.trending_fragments().items(),
                            key=lambda item: -item[1])[:5]:
    print(f"  {' -> '.join(path)}  (in {support} workflows)")

print("\n=== Crowd-powered completion ===")
draft = manager.new_workflow("carol-draft")
manager.add_module(draft, "SensorIngest")
for suggestion in collab.suggest_completion(draft):
    print(f"  after SensorIngest, the community usually adds "
          f"{suggestion.module_type} "
          f"(p={suggestion.score}, via {suggestion.via_ports[0]} -> "
          f"{suggestion.via_ports[1]})")
