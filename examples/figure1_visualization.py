"""Figure 1 of the paper, end to end.

The workflow loads a (synthetic) CT head scan and derives two data products:
a histogram rendering of the scalar values and an isosurface visualization.
The example shows both provenance kinds from the figure — the prospective
recipe and the retrospective log — plus the annotations drawn as yellow
boxes, and finishes with the paper's defective-scanner invalidation story.

Run with:  python examples/figure1_visualization.py
"""

from repro.apps import invalidate_by_hash
from repro.core import ProvenanceManager, causality_graph
from repro.analytics import run_report
from repro.workloads import build_vis_workflow

manager = ProvenanceManager()
workflow = build_vis_workflow(size=24, level=100.0)


def module_id(name):
    return next(m.id for m in workflow.modules.values() if m.name == name)


print("=== Prospective provenance: the recipe of Figure 1 ===")
print(manager.prospective(workflow).describe())

run = manager.run(workflow, tags={"dataset": "head.120 (synthetic)"})

print("\n=== Retrospective provenance: what actually happened ===")
print(run_report(run))

# The yellow annotation boxes of Figure 1: user-defined provenance at
# different granularities.
volume = run.artifacts_for_module(module_id("load"), "volume")
mesh = run.artifacts_for_module(module_id("iso"), "mesh")
manager.annotate("artifact", volume.id, "acquisition",
                 "CT scanner unit 5, 2008-02-11", author="tech")
manager.annotate("artifact", mesh.id, "note",
                 "skull surface at level=100", author="davidson")
manager.annotate("module", module_id("iso"), "rationale",
                 "level chosen to isolate bone density", author="freire")
print("\n=== Annotations (the yellow boxes) ===")
for target_kind, target_id in (("artifact", volume.id),
                               ("artifact", mesh.id),
                               ("module", module_id("iso"))):
    for annotation in manager.annotations_for(target_kind, target_id):
        print(f"  [{target_kind}] {annotation.key}: {annotation.value} "
              f"(by {annotation.author})")

# Causality: data-process dependencies and inferred data dependencies.
graph = causality_graph(run)
print("\n=== Causality graph ===")
print(f"  {graph.node_count} nodes, {graph.edge_count} edges "
      f"(incl. inferred wasDerivedFrom)")
image = run.artifacts_for_module(module_id("render_mesh"), "image")
paths = graph.paths(image.id, volume.id,
                    labels={"used", "wasGeneratedBy"})
print(f"  derivation path mesh-image -> volume: {len(paths[0])} hops")

# The defective CT scanner scenario from §2.2 of the paper.
print("\n=== 'The CT scanner was defective' ===")
report = invalidate_by_hash(manager.store, volume.value_hash)
print(" ", report.summary())
for run_id, products in report.affected_products.items():
    print(f"  run {run_id[-8:]}: {len(products)} final products must be "
          "re-derived")
print("  (the volume *header* branch is unaffected — data dependencies "
      "are precise)")
