"""Quickstart: build a workflow, run it, and look at its provenance.

Run with:  python examples/quickstart.py
"""

from repro.analytics import run_report
from repro.core import ProvenanceManager

manager = ProvenanceManager()

# 1. Build a small genomics workflow (prospective provenance).
workflow = manager.new_workflow("my-first-workflow")
reads = manager.add_module(workflow, "SyntheticReads", name="sequencer",
                           parameters={"count": 10, "length": 50,
                                       "seed": 7})
qc = manager.add_module(workflow, "QualityFilter", name="qc")
consensus = manager.add_module(workflow, "ConsensusCall",
                               name="consensus")
workflow.connect(reads.id, "reads", qc.id, "reads")
workflow.connect(qc.id, "reads", consensus.id, "reads")

print("=== Prospective provenance (the recipe) ===")
print(manager.prospective(workflow).describe())

# 2. Run it — retrospective provenance is captured automatically.
run = manager.run(workflow, tags={"user": "quickstart"})
print("\n=== Retrospective provenance (the log) ===")
print(run_report(run))

# 3. Ask questions in ProvQL.
print("\n=== Queries ===")
print("executions:", manager.query("COUNT EXECUTIONS", run))
consensus_value = run.value(
    run.artifacts_for_module(consensus.id, "consensus").id)
print("consensus sequence:", consensus_value[:40], "...")
upstream = manager.query("UPSTREAM OF consensus.consensus", run)
print("the consensus depends on",
      [row["type"] for row in upstream], "artifacts")

# 4. Annotate (user-defined provenance) and read it back.
artifact = run.artifacts_for_module(consensus.id, "consensus")
manager.annotate("artifact", artifact.id, "note",
                 "first consensus call — looks clean", author="you")
print("\nannotations:",
      [(a.key, a.value) for a in
       manager.annotations_for("artifact", artifact.id)])

# 5. Run again: the cache answers, provenance still records every step.
second = manager.run(workflow)
print("\nsecond run statuses:",
      sorted({execution.status for execution in second.executions}))
print("cache stats:", manager.cache_stats())
