"""The First Provenance Challenge: the fMRI workflow and its nine queries.

Run with:  python examples/provenance_challenge.py
"""

from repro.analytics import ascii_table
from repro.workloads import CHALLENGE_QUERIES, ChallengeSession

session = ChallengeSession.create(size=16)
print(f"challenge run: {session.run.status}, "
      f"{len(session.run.executions)} executions, "
      f"{len(session.run.artifacts)} artifacts\n")

results = session.all_queries()
for name in sorted(CHALLENGE_QUERIES):
    print(f"=== {name.upper()}: {CHALLENGE_QUERIES[name]} ===")
    result = results[name]
    if name == "q1":
        print(f"  {len(result['executions'])} executions and "
              f"{len(result['artifacts'])} artifacts in the history")
    elif name == "q2":
        names = sorted(session.run.execution(e).module_name
                       for e in result["executions"])
        print(f"  stages after softmean: {names}")
    elif name == "q3":
        print(ascii_table(result, columns=["module", "type",
                                           "parameters"]))
    elif name == "q4":
        print(f"  {len(result)} align_warp invocations with model=12")
    elif name == "q5":
        print(f"  {len(result)} atlas graphics depend on a header with "
              "global maximum above threshold")
    elif name == "q6":
        print(f"  softmean outputs preceded by align_warp -m 12: "
              f"{len(result)}")
    elif name == "q7":
        print(f"  spec identical: {result['spec_identical']}; "
              f"{len(result['parameter_differences'])} modules with "
              f"changed parameters; "
              f"{len(result['differing_outputs'])} outputs differ")
    elif name == "q8":
        print(f"  align_warp outputs with center=UChicago inputs: "
              f"{len(result)}")
    elif name == "q9":
        for artifact_id, value in result:
            print(f"  {artifact_id[-12:]}: studyModality={value}")
    print()
