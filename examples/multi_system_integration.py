"""Second Provenance Challenge: integrating provenance across systems.

The fMRI workflow runs split across three simulated systems — a Chimera-like
virtual data catalog (stages 1-2), a Karma-like service-event system
(stage 3) and a Taverna-like RDF system (stages 4-5).  Each records
provenance in its own dialect; everything is translated to OPM, identities
are reconciled, and one lineage query spans all three systems.

Run with:  python examples/multi_system_integration.py
"""

from repro.interop import cross_system_lineage, run_challenge2
from repro.opm import opm_to_xml

result = run_challenge2(size=16)

print("=== Native provenance, three dialects ===")
print(f"  chimera catalog: {len(result.chimera.derivations)} derivations, "
      f"{len(result.chimera.transformations)} transformations")
print(f"  karma event log: {len(result.karma.events)} events")
print(f"  taverna RDF:     {len(result.taverna.triples)} triples")

print("\n=== After translation to OPM ===")
for graph in result.opm_graphs:
    summary = graph.summary()
    print(f"  {graph.id:14s} {summary['processes']} processes, "
          f"{summary['artifacts']} artifacts")

report = result.report
print("\n=== Integration ===")
print(f"  systems merged: {report.systems}")
print(f"  artifacts unified across system boundaries: "
      f"{report.crossings()}")
print(f"  identity conflicts: {len(report.conflicts)}")
merged = report.graph.summary()
print(f"  integrated graph: {merged['artifacts']} artifacts, "
      f"{merged['processes']} processes, "
      f"{merged['used'] + merged['wasGeneratedBy']} causal edges")

print("\n=== Cross-system lineage of atlas-x.graphic ===")
lineage = cross_system_lineage(result, "atlas-x.graphic")
systems = {}
for process in sorted(lineage["processes"]):
    system = process.split(":")[0]
    systems.setdefault(system, []).append(process)
for system, processes in sorted(systems.items()):
    print(f"  {system}: {len(processes)} processes")
anatomy = sorted(a for a in lineage["artifacts"]
                 if a.startswith("anatomy"))
print(f"  reaches the original inputs: {anatomy}")

xml = opm_to_xml(report.graph)
print(f"\nintegrated graph serializes to {len(xml)} bytes of OPM XML")
