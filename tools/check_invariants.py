#!/usr/bin/env python
"""Repo-invariant checker: structural rules the test suite cannot see.

Three checks, all stdlib ``ast`` — no third-party dependencies:

1. **sqlite3 containment** — ``sqlite3.connect`` may appear only in the
   storage layer (``src/repro/storage/``) and the persistent result
   cache (``src/repro/workflow/cache.py``).  Everything else must go
   through a store object, or connection lifecycle/WAL settings drift.
2. **no naive clocks** — ``datetime.now()`` / ``datetime.utcnow()`` /
   ``datetime.today()`` without a timezone are forbidden; the codebase
   timestamps with ``time.time()`` epochs and ``time.monotonic()``
   deadlines, and a naive wall-clock sneaking in breaks replay parity
   across timezones.
3. **fault-seam coverage** — every seam string registered by the
   ``FaultPlan`` builders in ``workflow/faults.py`` must be exercised
   by at least one test, either by naming the seam string or by calling
   a builder that targets it.  A seam nobody injects through is a
   crash-recovery path nobody tests.

Exit codes: 0 clean, 1 violations found, 2 usage error.
"""

from __future__ import annotations

import argparse
import ast
import sys
from pathlib import Path
from typing import Dict, Iterator, List, Set, Tuple

#: Directories/files allowed to call sqlite3.connect directly,
#: relative to the repo root.
SQLITE_ALLOWED = ("src/repro/storage/", "src/repro/workflow/cache.py")

NAIVE_CLOCK_CALLS = {"now", "utcnow", "today"}


def iter_python_files(root: Path) -> Iterator[Path]:
    yield from sorted(root.rglob("*.py"))


def parse(path: Path) -> ast.AST:
    return ast.parse(path.read_text(encoding="utf-8"), filename=str(path))


# ----------------------------------------------------------------------
# check 1: sqlite3.connect containment
# ----------------------------------------------------------------------
def check_sqlite_containment(repo: Path, src: Path) -> List[str]:
    violations = []
    for path in iter_python_files(src):
        relative = path.relative_to(repo).as_posix()
        if any(relative.startswith(allowed) or relative == allowed
               for allowed in SQLITE_ALLOWED):
            continue
        for node in ast.walk(parse(path)):
            if (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "connect"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "sqlite3"):
                violations.append(
                    f"{relative}:{node.lineno}: sqlite3.connect outside "
                    "the storage layer — open stores via "
                    "repro.storage instead")
    return violations


# ----------------------------------------------------------------------
# check 2: naive wall clocks
# ----------------------------------------------------------------------
def _is_datetime_chain(node: ast.AST) -> bool:
    """True for ``datetime`` / ``datetime.datetime`` attribute chains."""
    if isinstance(node, ast.Name):
        return node.id == "datetime"
    if isinstance(node, ast.Attribute):
        return node.attr == "datetime" and _is_datetime_chain(node.value)
    return False


def check_naive_clocks(repo: Path, src: Path) -> List[str]:
    violations = []
    for path in iter_python_files(src):
        relative = path.relative_to(repo).as_posix()
        for node in ast.walk(parse(path)):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in NAIVE_CLOCK_CALLS
                    and _is_datetime_chain(node.func.value)):
                continue
            has_tz = bool(node.args) or any(
                kw.arg in (None, "tz") for kw in node.keywords)
            if node.func.attr != "now" or not has_tz:
                violations.append(
                    f"{relative}:{node.lineno}: naive "
                    f"datetime.{node.func.attr}() — use time.time() "
                    "epochs or pass an explicit timezone")
    return violations


# ----------------------------------------------------------------------
# check 3: fault-seam coverage in tests
# ----------------------------------------------------------------------
def fault_seams(faults_path: Path) -> Dict[str, Set[str]]:
    """Seam string -> FaultPlan builder method names that target it.

    Derived from the source of truth: every ``FaultSpec("<site>", ...)``
    literal constructed inside a ``FaultPlan`` method registers that
    method as a way to exercise the site.
    """
    tree = parse(faults_path)
    seams: Dict[str, Set[str]] = {}
    for node in ast.walk(tree):
        if not (isinstance(node, ast.ClassDef) and node.name == "FaultPlan"):
            continue
        for method in node.body:
            if not isinstance(method, ast.FunctionDef):
                continue
            for call in ast.walk(method):
                if (isinstance(call, ast.Call)
                        and isinstance(call.func, ast.Name)
                        and call.func.id == "FaultSpec"
                        and call.args
                        and isinstance(call.args[0], ast.Constant)
                        and isinstance(call.args[0].value, str)):
                    seams.setdefault(call.args[0].value,
                                     set()).add(method.name)
    return seams


def check_seam_coverage(repo: Path, tests: Path) -> List[str]:
    faults_path = repo / "src" / "repro" / "workflow" / "faults.py"
    seams = fault_seams(faults_path)
    if not seams:
        return [f"{faults_path}: found no FaultSpec seams to check"]
    corpus = "\n".join(path.read_text(encoding="utf-8")
                       for path in iter_python_files(tests))
    violations = []
    for site in sorted(seams):
        mentions = (f'"{site}"' in corpus or f"'{site}'" in corpus
                    or any(f"{builder}(" in corpus
                           for builder in seams[site]))
        if not mentions:
            builders = ", ".join(sorted(seams[site]))
            violations.append(
                f"fault seam {site!r} is exercised by no test "
                f"(expected a use of: {builders})")
    return violations


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="check repo-wide structural invariants")
    parser.add_argument("--repo", default=".",
                        help="repository root (default: cwd)")
    args = parser.parse_args(argv)
    repo = Path(args.repo).resolve()
    src = repo / "src"
    tests = repo / "tests"
    if not src.is_dir() or not tests.is_dir():
        print(f"not a repo root (no src/ and tests/): {repo}",
              file=sys.stderr)
        return 2
    violations = []
    violations.extend(check_sqlite_containment(repo, src))
    violations.extend(check_naive_clocks(repo, src))
    violations.extend(check_seam_coverage(repo, tests))
    for violation in violations:
        print(violation)
    if violations:
        print(f"{len(violations)} invariant violation(s)")
        return 1
    print("invariants hold: sqlite3 containment, no naive clocks, "
          "fault-seam coverage")
    return 0


if __name__ == "__main__":
    sys.exit(main())
