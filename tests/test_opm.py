"""Tests for the Open Provenance Model: model, inference, serialization,
conversion."""

import pytest

from repro.core import ProvenanceCapture
from repro.opm import (OPMGraph, complete, infer_derivations,
                       infer_triggers, opm_from_dict, opm_from_json,
                       opm_from_xml, opm_lineage, opm_to_dict, opm_to_json,
                       opm_to_xml, run_to_opm, transitive_derivations)
from repro.workflow import Executor
from tests.conftest import build_fig1_workflow, module_by_name


def tiny_graph():
    """a1 --gen--> p1 --used--> a0 ; p2 used a1, generated a2."""
    graph = OPMGraph("tiny")
    graph.add_artifact("a0")
    graph.add_artifact("a1")
    graph.add_artifact("a2")
    graph.add_process("p1")
    graph.add_process("p2")
    graph.used("p1", "a0", role="in")
    graph.was_generated_by("a1", "p1", role="out")
    graph.used("p2", "a1", role="in")
    graph.was_generated_by("a2", "p2", role="out")
    return graph


class TestModel:
    def test_edge_endpoint_kinds_enforced(self):
        graph = OPMGraph()
        graph.add_artifact("a")
        graph.add_process("p")
        with pytest.raises(ValueError):
            graph.used("a", "p")  # reversed kinds
        with pytest.raises(ValueError):
            graph.was_generated_by("p", "a")

    def test_duplicate_edges_collapse(self):
        graph = tiny_graph()
        before = len(graph.edges)
        graph.used("p1", "a0", role="in")
        assert len(graph.edges) == before

    def test_agents_and_control(self):
        graph = tiny_graph()
        graph.add_agent("alice")
        graph.was_controlled_by("p1", "alice", role="operator")
        assert graph.edges_of_kind("wasControlledBy")[0].cause == "alice"

    def test_accounts_and_view(self):
        graph = OPMGraph()
        graph.add_artifact("a")
        graph.add_process("p")
        graph.used("p", "a", accounts=("fine",))
        graph.was_generated_by("a", "p", accounts=("coarse",))
        fine = graph.account_view("fine")
        assert len(fine.edges) == 1
        assert fine.edges[0].kind == "used"

    def test_merge_unifies_nodes(self):
        first, second = tiny_graph(), tiny_graph()
        merged = first.merge(second)
        assert len(merged.artifacts) == 3
        assert len(merged.edges) == 4

    def test_validate_clean(self):
        assert tiny_graph().validate() == []

    def test_summary_counts(self):
        summary = tiny_graph().summary()
        assert summary["artifacts"] == 3
        assert summary["used"] == 2


class TestInference:
    def test_derivation_introduction(self):
        graph = tiny_graph()
        added = infer_derivations(graph)
        assert added == 2
        pairs = {(e.effect, e.cause)
                 for e in graph.edges_of_kind("wasDerivedFrom")}
        assert pairs == {("a1", "a0"), ("a2", "a1")}

    def test_trigger_introduction(self):
        graph = tiny_graph()
        added = infer_triggers(graph)
        assert added == 1
        edge = graph.edges_of_kind("wasTriggeredBy")[0]
        assert (edge.effect, edge.cause) == ("p2", "p1")

    def test_transitive_closure_account(self):
        graph = tiny_graph()
        infer_derivations(graph)
        added = transitive_derivations(graph)
        assert added == 1
        transitive = [e for e in graph.edges_of_kind("wasDerivedFrom")
                      if "inferred-transitive" in e.accounts]
        assert [(e.effect, e.cause) for e in transitive] \
            == [("a2", "a0")]

    def test_complete_is_idempotent(self):
        graph = tiny_graph()
        complete(graph)
        second = complete(graph)
        assert second == {"derivations": 0, "triggers": 0,
                          "transitive": 0}


class TestSerialization:
    def test_json_roundtrip(self):
        graph = tiny_graph()
        graph.add_agent("alice")
        graph.was_controlled_by("p1", "alice", role="op",
                                accounts=("acct",))
        restored = opm_from_json(opm_to_json(graph))
        assert opm_to_dict(restored) == opm_to_dict(graph)

    def test_xml_roundtrip(self):
        graph = tiny_graph()
        graph.artifacts["a0"].attributes["name"] = "anatomy1.img"
        restored = opm_from_xml(opm_to_xml(graph))
        assert restored.summary() == graph.summary()
        assert restored.artifacts["a0"].attributes["name"] \
            == "anatomy1.img"

    def test_dict_roundtrip_preserves_accounts(self):
        graph = tiny_graph()
        graph.used("p2", "a0", accounts=("extra",))
        restored = opm_from_dict(opm_to_dict(graph))
        assert "extra" in restored.accounts


class TestConversion:
    @pytest.fixture()
    def fig1_run(self, registry):
        workflow = build_fig1_workflow(size=8)
        capture = ProvenanceCapture(registry=registry)
        Executor(registry, listeners=[capture]).execute(
            workflow, tags={"user": "alice"})
        return workflow, capture.last_run()

    def test_run_export_shape(self, fig1_run):
        _, run = fig1_run
        graph = run_to_opm(run)
        summary = graph.summary()
        assert summary["processes"] == 5
        assert summary["artifacts"] == 6
        assert summary["used"] == 4
        assert summary["wasGeneratedBy"] == 6

    def test_user_tag_becomes_agent(self, fig1_run):
        _, run = fig1_run
        graph = run_to_opm(run)
        assert "alice" in graph.agents
        assert len(graph.edges_of_kind("wasControlledBy")) == 5

    def test_roles_are_ports(self, fig1_run):
        _, run = fig1_run
        graph = run_to_opm(run)
        roles = {edge.role for edge in graph.edges_of_kind("used")}
        assert roles == {"volume", "histogram", "mesh"}

    def test_opm_lineage_matches_causality(self, fig1_run):
        workflow, run = fig1_run
        graph = run_to_opm(run)
        render = module_by_name(workflow, "render_mesh")
        image = run.artifacts_for_module(render.id, "image")
        lineage = opm_lineage(graph, image.id)
        assert len(lineage["processes"]) == 3
        assert len(lineage["artifacts"]) == 2

    def test_account_parameter(self, fig1_run):
        _, run = fig1_run
        graph = run_to_opm(run, account="runA")
        assert "runA" in graph.accounts
        assert all("runA" in edge.accounts for edge in graph.edges)
