"""Tests for the execution engine: ordering, caching, failures, listeners."""

import pytest

from repro.workflow import (ExecutionError, ExecutionListener, Executor,
                            Module, ResultCache, Workflow)
from tests.conftest import (build_chain_workflow, build_fig1_workflow,
                            module_by_name)


class RecordingListener(ExecutionListener):
    def __init__(self):
        self.events = []

    def on_run_start(self, run_id, workflow, environment, tags):
        self.events.append(("run-start", workflow.name))

    def on_module_start(self, run_id, module, parameters):
        self.events.append(("module-start", module.name))

    def on_module_finish(self, run_id, module, result):
        self.events.append(("module-finish", module.name, result.status))

    def on_run_finish(self, result):
        self.events.append(("run-finish", result.status))


class TestBasicExecution:
    def test_chain_runs_ok(self, executor):
        run = executor.execute(build_chain_workflow(length=3))
        assert run.status == "ok"
        assert all(r.status == "ok" for r in run.results.values())

    def test_values_flow_through_chain(self, executor, registry):
        workflow = Workflow()
        const = workflow.add_module(Module("Constant",
                                           parameters={"value": 5}))
        scale = workflow.add_module(Module("Scale",
                                           parameters={"factor": 3.0}))
        workflow.connect(const.id, "value", scale.id, "value")
        run = executor.execute(workflow)
        assert run.output(scale.id, "result") == 15.0

    def test_diamond_fanout(self, executor, fig1_workflow):
        run = executor.execute(fig1_workflow)
        assert run.status == "ok"
        iso = module_by_name(fig1_workflow, "iso")
        mesh = run.output(iso.id, "mesh")
        assert len(mesh["vertices"]) > 0

    def test_run_duration_nonnegative(self, executor):
        run = executor.execute(build_chain_workflow(length=2))
        assert run.duration >= 0.0
        for result in run.results.values():
            assert result.duration >= 0.0

    def test_environment_captured(self, executor):
        run = executor.execute(build_chain_workflow(length=1))
        assert "python_version" in run.environment
        assert "hostname" in run.environment

    def test_tags_attached(self, executor):
        run = executor.execute(build_chain_workflow(length=1),
                               tags={"experiment": "E1"})
        assert run.tags == {"experiment": "E1"}

    def test_execution_order_is_topological(self, executor, fig1_workflow):
        run = executor.execute(fig1_workflow)
        position = {module_id: i for i, module_id in enumerate(run.order)}
        for connection in fig1_workflow.connections.values():
            assert (position[connection.source_module]
                    < position[connection.target_module])


class TestExternalInputs:
    def test_inject_value_into_unbound_port(self, executor, registry):
        workflow = Workflow()
        scale = workflow.add_module(Module("Scale",
                                           parameters={"factor": 2.0}))
        run = executor.execute(workflow,
                               inputs={(scale.id, "value"): 21.0})
        assert run.output(scale.id, "result") == 42.0

    def test_unbound_mandatory_port_rejected(self, executor):
        workflow = Workflow()
        workflow.add_module(Module("Scale"))
        with pytest.raises(ExecutionError):
            executor.execute(workflow)

    def test_unknown_module_type_rejected(self, executor):
        workflow = Workflow()
        workflow.add_module(Module("NotAModule"))
        with pytest.raises(ExecutionError):
            executor.execute(workflow)


class TestFailureSemantics:
    def build_failing_branch(self):
        workflow = Workflow("failing")
        source = workflow.add_module(Module("Constant", name="src",
                                            parameters={"value": 1}))
        bad = workflow.add_module(Module("FailIf", name="bad",
                                         parameters={"fail": True}))
        after_bad = workflow.add_module(Module("Identity", name="after"))
        healthy = workflow.add_module(Module("Identity", name="healthy"))
        workflow.connect(source.id, "value", bad.id, "value")
        workflow.connect(bad.id, "value", after_bad.id, "value")
        workflow.connect(source.id, "value", healthy.id, "value")
        return workflow

    def test_failure_marks_run_failed(self, executor):
        run = executor.execute(self.build_failing_branch())
        assert run.status == "failed"

    def test_downstream_skipped_other_branches_run(self, executor):
        workflow = self.build_failing_branch()
        run = executor.execute(workflow)
        statuses = {workflow.modules[m].name: r.status
                    for m, r in run.results.items()}
        assert statuses["bad"] == "failed"
        assert statuses["after"] == "skipped"
        assert statuses["healthy"] == "ok"
        assert statuses["src"] == "ok"

    def test_error_text_recorded(self, executor):
        run = executor.execute(self.build_failing_branch())
        failed = [r for r in run.results.values() if r.status == "failed"]
        assert "RuntimeError" in failed[0].error
        assert "injected" in failed[0].error

    def test_failed_modules_helper(self, executor):
        workflow = self.build_failing_branch()
        run = executor.execute(workflow)
        assert len(run.failed_modules()) == 1


class TestCaching:
    def test_second_run_fully_cached(self, caching_executor):
        workflow = build_chain_workflow(length=3)
        caching_executor.execute(workflow)
        second = caching_executor.execute(workflow)
        assert all(r.status == "cached" for r in second.results.values())

    def test_cached_outputs_equal_original(self, caching_executor):
        workflow = build_fig1_workflow(size=8)
        first = caching_executor.execute(workflow)
        second = caching_executor.execute(workflow)
        for module_id, result in second.results.items():
            for port, record in result.outputs.items():
                assert record.value_hash == \
                    first.results[module_id].outputs[port].value_hash

    def test_parameter_change_invalidates_downstream(self,
                                                     caching_executor):
        workflow = build_fig1_workflow(size=8)
        caching_executor.execute(workflow)
        iso = module_by_name(workflow, "iso")
        second = caching_executor.execute(
            workflow, parameter_overrides={iso.id: {"level": 50.0}})
        statuses = {workflow.modules[m].name: r.status
                    for m, r in second.results.items()}
        assert statuses["load"] == "cached"
        assert statuses["hist"] == "cached"
        assert statuses["iso"] == "ok"        # recomputed
        assert statuses["render_mesh"] == "ok"  # downstream recomputed

    def test_cached_from_links_to_original_execution(self,
                                                     caching_executor):
        workflow = build_chain_workflow(length=1)
        first = caching_executor.execute(workflow)
        second = caching_executor.execute(workflow)
        originals = {r.execution_id for r in first.results.values()}
        for result in second.results.values():
            assert result.cached_from in originals

    def test_nondeterministic_modules_never_cached(self, caching_executor):
        workflow = Workflow()
        workflow.add_module(Module("RandomNumber"))
        caching_executor.execute(workflow)
        second = caching_executor.execute(workflow)
        assert all(r.status == "ok" for r in second.results.values())

    def test_cache_stats_accumulate(self, registry):
        cache = ResultCache()
        executor = Executor(registry, cache=cache)
        workflow = build_chain_workflow(length=2)
        executor.execute(workflow)
        executor.execute(workflow)
        # First run: stage1 already hits (same type/params/input value as
        # stage0 — the pass-through makes their causal signatures equal).
        # Second run: all three modules hit.
        assert cache.stats.hits == 4
        assert cache.stats.lookups == 6


class TestListeners:
    def test_event_sequence(self, registry):
        listener = RecordingListener()
        executor = Executor(registry, listeners=[listener])
        executor.execute(build_chain_workflow(length=1))
        kinds = [event[0] for event in listener.events]
        assert kinds[0] == "run-start"
        assert kinds[-1] == "run-finish"
        assert kinds.count("module-start") == 2
        assert kinds.count("module-finish") == 2

    def test_listener_sees_skipped_modules(self, registry):
        listener = RecordingListener()
        executor = Executor(registry, listeners=[listener])
        workflow = Workflow()
        bad = workflow.add_module(Module("FailIf", name="bad",
                                         parameters={"fail": True}))
        after = workflow.add_module(Module("Identity", name="after"))
        workflow.connect(bad.id, "value", after.id, "value")
        executor.execute(workflow)
        finishes = [e for e in listener.events if e[0] == "module-finish"]
        assert ("module-finish", "after", "skipped") in finishes


class TestSinkOutputs:
    def test_sink_outputs_collects_products(self, executor, fig1_workflow):
        run = executor.execute(fig1_workflow)
        products = run.sink_outputs()
        names = {fig1_workflow.modules[mid].name
                 for (mid, _port) in products}
        assert names == {"render_hist", "render_mesh"}
