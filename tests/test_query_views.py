"""Tests for ZOOM user views (provenance-overload reduction)."""

import pytest

from repro.core import ProvenanceCapture
from repro.query import build_user_view
from repro.workflow import Executor, Module, Workflow
from tests.conftest import build_fig1_workflow, module_by_name


class TestViewConstruction:
    def test_relevant_modules_are_singletons(self):
        workflow = build_fig1_workflow()
        load = module_by_name(workflow, "load")
        iso = module_by_name(workflow, "iso")
        view = build_user_view(workflow, {load.id, iso.id})
        assert view.composites[view.composite_of(load.id)] == {load.id}
        assert view.composites[view.composite_of(iso.id)] == {iso.id}

    def test_irrelevant_neighbours_group(self):
        workflow = build_fig1_workflow()
        load = module_by_name(workflow, "load")
        hist = module_by_name(workflow, "hist")
        render_hist = module_by_name(workflow, "render_hist")
        view = build_user_view(workflow, {load.id})
        # hist -> render_hist share the signature (ancestors={load},
        # descendants={}) and are connected: one composite
        assert view.composite_of(hist.id) \
            == view.composite_of(render_hist.id)

    def test_reduction_factor(self):
        workflow = build_fig1_workflow()
        load = module_by_name(workflow, "load")
        view = build_user_view(workflow, {load.id})
        assert view.composite_count() < len(workflow.modules)
        assert view.reduction_factor() > 1.0

    def test_all_relevant_is_identity(self):
        workflow = build_fig1_workflow()
        view = build_user_view(workflow, set(workflow.modules))
        assert view.composite_count() == len(workflow.modules)
        assert view.reduction_factor() == 1.0

    def test_unknown_relevant_id_rejected(self):
        workflow = build_fig1_workflow()
        with pytest.raises(KeyError):
            build_user_view(workflow, {"mod-ghost"})

    def test_quotient_is_acyclic(self):
        workflow = build_fig1_workflow()
        iso = module_by_name(workflow, "iso")
        view = build_user_view(workflow, {iso.id})
        quotient = view.quotient_graph(workflow)
        quotient.topological_order()  # raises on cycles

    def test_branch_groups_stay_separate(self):
        # hist-branch and iso-branch have different relevant descendants,
        # so they must not merge even though both are irrelevant
        workflow = build_fig1_workflow()
        render_hist = module_by_name(workflow, "render_hist")
        render_mesh = module_by_name(workflow, "render_mesh")
        view = build_user_view(workflow,
                               {render_hist.id, render_mesh.id})
        hist = module_by_name(workflow, "hist")
        iso = module_by_name(workflow, "iso")
        assert view.composite_of(hist.id) != view.composite_of(iso.id)

    def test_cycle_inducing_merge_is_split(self, registry):
        # a -> x -> b and a -> b directly; if {a,b} merged while x stays
        # separate the quotient would cycle — the builder must split
        workflow = Workflow("tri")
        a = workflow.add_module(Module("Identity", name="a"))
        x = workflow.add_module(Module("SpinCompute", name="x"))
        b = workflow.add_module(Module("MakeList", name="b"))
        workflow.connect(a.id, "value", x.id, "value")
        workflow.connect(x.id, "value", b.id, "a")
        workflow.connect(a.id, "value", b.id, "b")
        view = build_user_view(workflow, {x.id})
        quotient = view.quotient_graph(workflow)
        quotient.topological_order()


class TestCollapseRun:
    @pytest.fixture()
    def fig1_run(self, registry):
        workflow = build_fig1_workflow(size=8)
        capture = ProvenanceCapture(registry=registry)
        Executor(registry, listeners=[capture]).execute(workflow)
        return workflow, capture.last_run()

    def test_collapsed_smaller_than_full(self, fig1_run):
        workflow, run = fig1_run
        load = module_by_name(workflow, "load")
        view = build_user_view(workflow, {load.id})
        collapsed = view.collapse_run(run)
        from repro.core import causality_graph
        full = causality_graph(run, include_derivations=False)
        assert collapsed.node_count < full.node_count

    def test_composite_durations_aggregate(self, fig1_run):
        workflow, run = fig1_run
        load = module_by_name(workflow, "load")
        view = build_user_view(workflow, {load.id})
        collapsed = view.collapse_run(run)
        total = sum(attrs["duration"] for _, attrs
                    in collapsed.nodes("composite"))
        expected = sum(execution.duration
                       for execution in run.executions)
        assert total == pytest.approx(expected, rel=1e-6)

    def test_boundary_artifacts_visible(self, fig1_run):
        workflow, run = fig1_run
        load = module_by_name(workflow, "load")
        iso = module_by_name(workflow, "iso")
        view = build_user_view(workflow, {load.id, iso.id})
        collapsed = view.collapse_run(run)
        volume = run.artifacts_for_module(load.id, "volume")
        assert collapsed.has_node(volume.id)

    def test_internal_artifacts_hidden(self, fig1_run):
        workflow, run = fig1_run
        load = module_by_name(workflow, "load")
        hist = module_by_name(workflow, "hist")
        view = build_user_view(workflow, {load.id})
        collapsed = view.collapse_run(run)
        histogram = run.artifacts_for_module(hist.id, "histogram")
        # histogram flows hist -> render_hist inside one composite
        assert not collapsed.has_node(histogram.id)
