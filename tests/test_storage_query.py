"""Unified query API: cross-backend parity, pushdown, pagination, ingest.

Every ProvQuery shape in the catalog below is evaluated three ways —
natively by each of the four backends, by the generic fallback
(``ProvenanceStore.select``, the correctness oracle) on the same backend,
and cross-backend against the in-memory reference — and all must return
identical rows, including sort order and pagination boundaries.
"""

import json

import pytest

from repro.core import Annotation, ProvenanceCapture, ProvenanceManager
from repro.storage import (DocumentStore, MemoryStore, ProvQuery,
                           ProvenanceStore, QueryError, RelationalStore,
                           ResultCursor, StoreError, TripleProvenanceStore)
from repro.service import ShardedProvenanceStore
from repro.workflow import Executor
from repro.workloads import clone_run
from tests.conftest import build_fig1_workflow

#: "sharded" is the service layer's run-id-hash partitioned store (three
#: relational shards); it must satisfy the whole contract, so it joins
#: every parametrized parity case unchanged.
BACKENDS = ["memory", "relational", "triples", "documents", "sharded"]


@pytest.fixture(scope="module")
def corpus(registry):
    """Six runs with varied workflow, status, timing and parameters."""
    capture = ProvenanceCapture(registry=registry, keep_values=False)
    executor = Executor(registry, listeners=[capture])
    executor.execute(build_fig1_workflow(size=8, level=90.0))
    base = capture.last_run()
    runs = [base]
    runs.append(clone_run(base, "c1", status="failed"))
    runs.append(clone_run(base, "c2", workflow_id="wf-other",
                          workflow_name="other-flow",
                          started=base.started + 10,
                          finished=base.finished + 11))
    runs.append(clone_run(base, "c3", started=base.started - 10,
                          finished=base.finished - 9))
    runs.append(clone_run(base, "c4", status="failed",
                          workflow_id="wf-other",
                          workflow_name="other-flow"))
    runs.append(clone_run(base, "c5", started=base.started + 20,
                          finished=base.finished + 25))
    return runs


ANNOTATIONS = [
    Annotation(id="ann-1", target_kind="run", target_id="r1", key="grade",
               value={"score": 9}, author="dana", created=3.0),
    Annotation(id="ann-2", target_kind="run", target_id="r2", key="grade",
               value={"score": 4}, author="lee", created=1.0),
    Annotation(id="ann-3", target_kind="artifact", target_id="a1",
               key="note", value="suspicious", author="dana", created=2.0),
]


def make_store(name, tmp_path, corpus):
    store = {
        "memory": lambda: MemoryStore(),
        "relational": lambda: RelationalStore(),
        "triples": lambda: TripleProvenanceStore(),
        "documents": lambda: DocumentStore(tmp_path / "docs"),
        "sharded": lambda: ShardedProvenanceStore(
            [RelationalStore() for _ in range(3)]),
    }[name]()
    store.save_runs(corpus)
    for annotation in ANNOTATIONS:
        store.save_annotation(annotation)
    return store


#: (name, query builder) — builders take the corpus for data-driven values.
QUERY_CATALOG = [
    ("runs-all", lambda c: ProvQuery.runs()),
    ("runs-status", lambda c: ProvQuery.runs().where(status="ok")),
    ("runs-workflow-desc", lambda c: ProvQuery.runs()
     .where(workflow_id="wf-other").order_by("-started")),
    ("runs-started-ge", lambda c: ProvQuery.runs()
     .where_op("started", "ge", c[0].started)),
    ("runs-name-contains", lambda c: ProvQuery.runs()
     .where_op("workflow_name", "contains", "other")),
    ("runs-status-in-window", lambda c: ProvQuery.runs()
     .where_op("status", "in", ["ok", "failed"]).limit(3).offset(1)),
    ("runs-projected", lambda c: ProvQuery.runs().project("id", "status")),
    ("runs-multi-filter", lambda c: ProvQuery.runs()
     .where(status="failed", workflow_id="wf-other")),
    ("runs-none-match", lambda c: ProvQuery.runs().where(status="nope")),
    ("runs-limit-zero", lambda c: ProvQuery.runs().limit(0)),
    ("execs-by-type", lambda c: ProvQuery.executions()
     .where(module_type="IsosurfaceExtract")),
    ("execs-param", lambda c: ProvQuery.executions()
     .where(param__level=90.0)),
    ("execs-param-miss", lambda c: ProvQuery.executions()
     .where(param__level=1.25)),
    ("execs-in-paged", lambda c: ProvQuery.executions()
     .where_op("status", "in", ["ok"]).order_by("-started").page(2, 4)),
    ("execs-sort-type", lambda c: ProvQuery.executions()
     .order_by("-module_type", "run_id")),
    ("execs-run-scoped", lambda c: ProvQuery.executions()
     .where(run_id=c[2].id)),
    ("arts-by-hash", lambda c: ProvQuery.artifacts()
     .where(value_hash=next(iter(c[0].artifacts.values())).value_hash)),
    ("arts-external", lambda c: ProvQuery.artifacts()
     .where(created_by="")),
    ("arts-size-top", lambda c: ProvQuery.artifacts()
     .where_op("size_hint", "gt", 0).order_by("-size_hint", "id")
     .limit(5)),
    ("arts-ne-role", lambda c: ProvQuery.artifacts()
     .where_op("role", "ne", "")),
    ("anns-by-kind", lambda c: ProvQuery.annotations()
     .where(target_kind="run")),
    ("anns-by-author", lambda c: ProvQuery.annotations()
     .where(author="dana").order_by("-created")),
    ("anns-value", lambda c: ProvQuery.annotations()
     .where(value="suspicious")),
    # affinity/semantics edge cases: every backend must agree with the
    # pure-Python oracle, not with its index's coercion rules
    ("runs-in-string", lambda c: ProvQuery.runs()
     .where_op("status", "in", "okfailed")),
    ("runs-started-eq-str", lambda c: ProvQuery.runs()
     .where_op("started", "eq", str(c[0].started))),
    ("runs-name-gt-number", lambda c: ProvQuery.runs()
     .where_op("workflow_name", "gt", 5)),
    ("arts-size-gt-str", lambda c: ProvQuery.artifacts()
     .where_op("size_hint", "gt", "10")),
    ("runs-name-eq-number", lambda c: ProvQuery.runs()
     .where_op("workflow_name", "eq", 1)),
    ("runs-name-ne-number", lambda c: ProvQuery.runs()
     .where_op("workflow_name", "ne", 1)),
    ("runs-status-in-number", lambda c: ProvQuery.runs()
     .where_op("status", "in", ["ok", 1])),
    ("runs-id-eq-list", lambda c: ProvQuery.runs()
     .where_op("id", "eq", ["x"])),
    ("runs-id-in-mixed", lambda c: ProvQuery.runs()
     .where_op("id", "in", [c[0].id, ["y"]])),
    ("runs-id-in-huge", lambda c: ProvQuery.runs()
     .where_op("id", "in",
               [c[0].id] + [f"bogus-{i}" for i in range(2000)])),
    # lineage operators: transitive ancestry joined across runs on shared
    # content hashes, answered from each backend's lineage index (the
    # relational path is a single recursive CTE) — never by loading runs
    ("lineage-upstream", lambda c: ProvQuery.artifacts()
     .upstream_of(_final_hash(c))),
    ("lineage-upstream-depth1", lambda c: ProvQuery.artifacts()
     .upstream_of(_final_hash(c), max_depth=1)),
    ("lineage-downstream", lambda c: ProvQuery.artifacts()
     .downstream_of(_volume_hash(c))),
    ("lineage-downstream-depth2", lambda c: ProvQuery.artifacts()
     .downstream_of(_volume_hash(c), max_depth=2)),
    ("lineage-artifact-id-seed", lambda c: ProvQuery.artifacts()
     .upstream_of(c[2].final_artifacts()[0].id)),
    ("lineage-run-scoped", lambda c: ProvQuery.artifacts()
     .downstream_of(_volume_hash(c), within_runs=[c[0].id, c[2].id])),
    ("lineage-run-scoped-empty", lambda c: ProvQuery.artifacts()
     .downstream_of(_volume_hash(c), within_runs=[])),
    ("lineage-unknown-seed", lambda c: ProvQuery.artifacts()
     .upstream_of("no-such-hash-or-id")),
    ("lineage-run-node-miss", lambda c: ProvQuery.artifacts()
     .upstream_of("run:absent-run")),
    ("lineage-composed", lambda c: ProvQuery.artifacts()
     .upstream_of(_final_hash(c)).where(run_id=c[1].id)
     .order_by("-size_hint", "id").limit(3)),
    ("lineage-projected-paged", lambda c: ProvQuery.artifacts()
     .downstream_of(_volume_hash(c)).order_by("run_id", "id")
     .project("run_id", "id", "value_hash").page(2, 4)),
]


def _final_hash(corpus):
    """Hash of a *derived* final product of the base run (shared by every
    clone) — one whose creating execution consumed inputs, so it has a
    non-empty ancestry."""
    run = corpus[0]
    for artifact in run.final_artifacts():
        if run.execution(artifact.created_by).inputs:
            return artifact.value_hash
    raise AssertionError("corpus has no derived final artifact")


def _volume_hash(corpus):
    """Hash of the consumed volume artifact (an upstream interior node)."""
    run = corpus[0]
    return run.artifacts[run.executions[1].inputs[0].artifact_id].value_hash


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("name,build",
                         QUERY_CATALOG, ids=[n for n, _ in QUERY_CATALOG])
class TestSelectParity:
    def test_native_matches_generic_and_reference(self, backend, name,
                                                  build, tmp_path, corpus):
        store = make_store(backend, tmp_path, corpus)
        reference = make_store("memory", tmp_path, corpus)
        query = build(corpus)
        native = store.select(query).all()
        oracle = ProvenanceStore.select(store, query).all()
        assert native == oracle, "native pushdown diverges from fallback"
        assert native == reference.select(query).all(), \
            "backend diverges from in-memory reference"


@pytest.mark.parametrize("backend", BACKENDS)
class TestPagination:
    def test_pages_partition_full_result(self, backend, tmp_path, corpus):
        store = make_store(backend, tmp_path, corpus)
        base = ProvQuery.executions().where(status="ok")
        everything = store.select(base).all()
        assert everything
        for size in (1, 3, 4, len(everything), len(everything) + 5):
            paged = []
            page_number = 1
            while True:
                batch = store.select(base.page(page_number, size)).all()
                if not batch:
                    break
                assert len(batch) <= size
                paged.extend(batch)
                page_number += 1
            assert paged == everything

    def test_offset_beyond_end_is_empty(self, backend, tmp_path, corpus):
        store = make_store(backend, tmp_path, corpus)
        assert store.select(ProvQuery.runs().offset(10_000)).all() == []


@pytest.mark.parametrize("backend", BACKENDS)
class TestBulkIngestAndExists:
    def test_save_runs_roundtrip(self, backend, tmp_path, corpus):
        store = make_store(backend, tmp_path, corpus)
        assert len(store.list_runs()) == len(corpus)
        loaded = store.load_run(corpus[1].id)
        assert loaded.status == "failed"
        assert len(loaded.executions) == len(corpus[1].executions)

    def test_save_runs_overwrites(self, backend, tmp_path, corpus):
        store = make_store(backend, tmp_path, corpus)
        assert store.save_runs(corpus[:2]) == 2
        assert len(store.list_runs()) == len(corpus)

    def test_has_run_without_load(self, backend, tmp_path, corpus,
                                  monkeypatch):
        store = make_store(backend, tmp_path, corpus)
        monkeypatch.setattr(
            store, "load_run",
            lambda run_id: pytest.fail("has_run must not load runs"))
        assert store.has_run(corpus[0].id)
        assert not store.has_run("run-missing")


class TestRelationalPushdown:
    def test_filter_queries_never_call_load_run(self, tmp_path, corpus,
                                                monkeypatch):
        store = make_store("relational", tmp_path, corpus)
        monkeypatch.setattr(
            store, "load_run",
            lambda run_id: pytest.fail("select must not call load_run"))
        catalog = [build(corpus) for _, build in QUERY_CATALOG]
        for query in catalog:
            store.select(query).all()

    def test_select_streams_lazily(self, tmp_path, corpus):
        store = make_store("relational", tmp_path, corpus)
        cursor = store.select(ProvQuery.executions())
        first_two = cursor.fetchmany(2)
        assert len(first_two) == 2
        assert cursor.consumed == 2
        rest = cursor.all()
        assert first_two + rest == \
            store.select(ProvQuery.executions()).all()


class TestDocumentSidecarIndex:
    def test_select_does_not_reparse_indexed_docs(self, tmp_path, corpus,
                                                  monkeypatch):
        store = make_store("documents", tmp_path, corpus)
        store.select(ProvQuery.runs()).all()  # index warm
        import repro.storage.documents as documents_module
        monkeypatch.setattr(
            documents_module.WorkflowRun, "from_dict",
            classmethod(lambda cls, data: pytest.fail(
                "select must answer from the sidecar index")))
        rows = store.select(ProvQuery.runs().where(status="ok")).all()
        assert rows

    def test_write_behind_index_survives_process_boundary(self, tmp_path,
                                                          corpus):
        # one-at-a-time saves defer the index write; a later query (or
        # close) flushes it, and a stale on-disk index self-heals anyway
        store = DocumentStore(tmp_path / "wb")
        for run in corpus[:2]:
            store.save_run(run)
        assert len(store.select(ProvQuery.runs()).all()) == 2
        reopened = DocumentStore(tmp_path / "wb")
        assert len(reopened.select(ProvQuery.runs()).all()) == 2
        assert reopened.load_run(corpus[0].id).id == corpus[0].id

    def test_index_rows_match_json_roundtrip(self, tmp_path, corpus):
        # a tuple parameter persists as a JSON list; the cached index rows
        # must reflect the persisted form, same as the oracle and a reopen
        run = clone_run(corpus[0], "tup")
        run.executions[0].parameters["shape"] = (4, 5)
        store = DocumentStore(tmp_path / "tup")
        store.save_run(run)
        query = ProvQuery.executions().where(param__shape=[4, 5])
        native = store.select(query).all()
        assert native == ProvenanceStore.select(store, query).all()
        assert len(native) == 1
        reopened = DocumentStore(tmp_path / "tup")
        assert reopened.select(query).all() == native

    def test_read_only_store_still_answers_queries(self, tmp_path,
                                                   corpus):
        import os
        import shutil
        store = make_store("documents", tmp_path, corpus)
        store.select(ProvQuery.runs()).all()
        # simulate an archived store: drop the index, freeze the tree
        (store.root / "index" / "summaries.json").unlink()
        for dirpath, _, _ in os.walk(store.root):
            os.chmod(dirpath, 0o555)
        try:
            frozen = DocumentStore(store.root)
            rows = frozen.select(
                ProvQuery.runs().where(status="ok")).all()
            assert rows  # heals in memory; flush degrades to no-op
            assert len(frozen.list_runs()) == len(corpus)
        finally:
            for dirpath, _, _ in os.walk(store.root):
                os.chmod(dirpath, 0o755)

    def test_corrupt_index_self_heals(self, tmp_path, corpus):
        store = make_store("documents", tmp_path, corpus)
        index_path = store.root / "index" / "summaries.json"
        for garbage in ("[]", "not json", '{"bad-entry": 42}'):
            index_path.write_text(garbage)
            healed = DocumentStore(tmp_path / "docs")
            rows = healed.select(ProvQuery.runs()).all()
            assert len(rows) == len(corpus)

    def test_index_detects_external_rewrite(self, tmp_path, corpus):
        store = make_store("documents", tmp_path, corpus)
        store.select(ProvQuery.runs()).all()
        path = store.root / "runs" / f"{corpus[0].id}.json"
        data = json.loads(path.read_text())
        data["status"] = "failed-externally"
        path.write_text(json.dumps(data, sort_keys=True, indent=1))
        rows = store.select(
            ProvQuery.runs().where(id=corpus[0].id)).all()
        assert rows[0]["status"] == "failed-externally"

    def test_select_rows_do_not_alias_index(self, tmp_path, corpus):
        store = make_store("documents", tmp_path, corpus)
        row = store.select(ProvQuery.executions()).first()
        row["parameters"]["evil"] = 1
        assert store.select(
            ProvQuery.executions().where(param__evil=1)).all() == []

    def test_fresh_instance_reuses_index(self, tmp_path, corpus,
                                         monkeypatch):
        first = make_store("documents", tmp_path, corpus)
        first.select(ProvQuery.runs()).all()
        again = DocumentStore(tmp_path / "docs")
        import repro.storage.documents as documents_module
        monkeypatch.setattr(
            documents_module.WorkflowRun, "from_dict",
            classmethod(lambda cls, data: pytest.fail(
                "fresh instance should reuse the persisted index")))
        assert len(again.select(ProvQuery.runs()).all()) == len(corpus)


class TestFinderShimsRemoved:
    """The deprecated finder shims are gone; ``select`` is the only door."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_finders_are_gone(self, backend, tmp_path, corpus):
        store = make_store(backend, tmp_path, corpus)
        for legacy in ("find_runs", "find_artifacts_by_hash",
                       "find_executions"):
            assert not hasattr(store, legacy)


class TestBulkLoadRuns:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_load_runs_matches_per_run_loads(self, backend, tmp_path,
                                             corpus):
        store = make_store(backend, tmp_path, corpus)
        ids = [summary.run_id for summary in store.list_runs()]
        bulk = store.load_runs(ids)
        assert [run.id for run in bulk] == ids
        for run in bulk:
            single = store.load_run(run.id)
            assert run.to_dict() == single.to_dict()

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_load_runs_defaults_to_everything(self, backend, tmp_path,
                                              corpus):
        store = make_store(backend, tmp_path, corpus)
        assert ([run.id for run in store.load_runs()]
                == [s.run_id for s in store.list_runs()])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_load_runs_unknown_id_raises(self, backend, tmp_path, corpus):
        store = make_store(backend, tmp_path, corpus)
        with pytest.raises(StoreError):
            store.load_runs([corpus[0].id, "run-missing"])

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_load_runs_preserves_request_order(self, backend, tmp_path,
                                               corpus):
        store = make_store(backend, tmp_path, corpus)
        ids = [summary.run_id for summary in store.list_runs()]
        reversed_ids = list(reversed(ids))
        assert ([run.id for run in store.load_runs(reversed_ids)]
                == reversed_ids)


#: lineage query shapes reused by the consistency tests below.
LINEAGE_QUERIES = [name for name, _ in QUERY_CATALOG
                   if name.startswith("lineage-")]


def _lineage_catalog(corpus):
    return [build(corpus) for name, build in QUERY_CATALOG
            if name.startswith("lineage-")]


def _assert_lineage_parity(store, corpus):
    for query in _lineage_catalog(corpus):
        assert store.select(query).all() == \
            ProvenanceStore.select(store, query).all()


@pytest.mark.parametrize("backend", BACKENDS)
class TestLineageIndexConsistency:
    """The edge index must track every mutation path of the store."""

    def test_consistent_after_bulk_ingest(self, backend, tmp_path, corpus):
        store = make_store(backend, tmp_path, corpus)
        _assert_lineage_parity(store, corpus)

    def test_consistent_after_resave_without_delete(self, backend,
                                                    tmp_path, corpus):
        store = make_store(backend, tmp_path, corpus)
        store.select(_lineage_catalog(corpus)[0]).all()  # warm any caches
        assert store.save_runs(corpus[:3]) == 3  # overwrite in place
        store.save_run(corpus[4])
        _assert_lineage_parity(store, corpus)

    def test_consistent_after_delete(self, backend, tmp_path, corpus):
        store = make_store(backend, tmp_path, corpus)
        assert store.delete_run(corpus[3].id)
        _assert_lineage_parity(store, corpus)
        store.save_run(corpus[3])  # and after restoring it
        _assert_lineage_parity(store, corpus)

    def test_save_after_warm_query_is_visible(self, backend, tmp_path,
                                              corpus):
        store = make_store(backend, tmp_path, corpus)
        query = ProvQuery.artifacts().upstream_of(_final_hash(corpus))
        before = store.select(query).all()
        extra = clone_run(corpus[0], "warm")
        store.save_run(extra)
        after = store.select(query).all()
        assert len(after) > len(before)
        assert after == ProvenanceStore.select(store, query).all()


@pytest.fixture(scope="module")
def chain_corpus(corpus):
    """Four structurally identical runs forming a 3-hop replay chain.

    ``g1`` replays ``g0``, ``g2`` replays ``g1``, ``g3`` replays ``g2`` —
    exactly the tag trail ``manager.rerun`` leaves behind on
    replay-of-replay, synthesized here so every backend ingests one."""
    generations = [clone_run(corpus[0], "g0")]
    for number in (1, 2, 3):
        generations.append(clone_run(
            corpus[0], f"g{number}",
            tags={"replay_of": generations[-1].id,
                  "derived_from_run": generations[-1].id}))
    return generations


@pytest.mark.parametrize("backend", BACKENDS)
class TestReplayChainLineage:
    """replay chains are lineage-index content on every backend."""

    def test_chain_of_depth_k_yields_k_hops(self, backend, tmp_path,
                                            chain_corpus):
        store = make_store(backend, tmp_path, chain_corpus)
        g0, g1, g2, g3 = [run.id for run in chain_corpus]
        up = store.lineage_closure(f"run:{g3}", direction="up")
        assert up == frozenset({f"run:{g0}", f"run:{g1}", f"run:{g2}"})
        down = store.lineage_closure(f"run:{g0}", direction="down")
        assert down == frozenset({f"run:{g1}", f"run:{g2}", f"run:{g3}"})

    def test_native_closure_matches_generic_oracle(self, backend,
                                                   tmp_path, chain_corpus):
        store = make_store(backend, tmp_path, chain_corpus)
        tip = f"run:{chain_corpus[-1].id}"
        for direction in ("up", "down"):
            for depth in (None, 1, 2):
                native = store.lineage_closure(tip, direction=direction,
                                               max_depth=depth)
                oracle = ProvenanceStore.lineage_closure(
                    store, tip, direction=direction, max_depth=depth)
                assert native == oracle

    def test_depth_bound_counts_run_hops(self, backend, tmp_path,
                                         chain_corpus):
        store = make_store(backend, tmp_path, chain_corpus)
        tip = chain_corpus[-1].id
        assert store.lineage_closure(f"run:{tip}", direction="up",
                                     max_depth=1) == \
            frozenset({f"run:{chain_corpus[-2].id}"})

    def test_deleting_a_generation_breaks_the_chain(self, backend,
                                                    tmp_path,
                                                    chain_corpus):
        store = make_store(backend, tmp_path, chain_corpus)
        g0, g1, g2, g3 = [run.id for run in chain_corpus]
        assert store.delete_run(g2)
        up = store.lineage_closure(f"run:{g3}", direction="up")
        # g3's own edge still names g2 as parent, but the walk cannot
        # continue past the deleted generation's contribution
        assert up == frozenset({f"run:{g2}"})
        store.save_run(chain_corpus[2])
        assert store.lineage_closure(f"run:{g3}", direction="up") == \
            frozenset({f"run:{g0}", f"run:{g1}", f"run:{g2}"})

    def test_run_chain_stays_out_of_artifact_queries(self, backend,
                                                     tmp_path,
                                                     chain_corpus):
        # run-level nodes share the index with hash-level edges but can
        # never leak into artifact ancestry: the namespaces are disjoint
        store = make_store(backend, tmp_path, chain_corpus)
        rows = store.select(ProvQuery.artifacts()
                            .upstream_of(_final_hash(chain_corpus))).all()
        assert rows
        assert all(not row["value_hash"].startswith("run:")
                   for row in rows)

    def test_manager_lineage_returns_run_rows(self, backend, tmp_path,
                                              chain_corpus):
        manager = ProvenanceManager(
            store=make_store(backend, tmp_path, chain_corpus))
        chain = manager.lineage(chain_corpus[-1].id)
        assert [row["id"] for row in chain] == \
            [run.id for run in chain_corpus[:-1]]
        assert all("workflow_name" in row for row in chain)
        derived = manager.lineage(chain_corpus[0].id, direction="down")
        assert [row["id"] for row in derived] == \
            [run.id for run in chain_corpus[1:]]

    def test_provql_lineage_of_run_walks_chain(self, backend, tmp_path,
                                               chain_corpus):
        from repro.query.provql import execute_on_store
        store = make_store(backend, tmp_path, chain_corpus)
        g2 = chain_corpus[2].id
        result = execute_on_store(f"LINEAGE OF '{g2}'", store)
        assert result["run"] == g2
        assert result["derived_from"] == sorted(
            run.id for run in chain_corpus[:2])
        assert result["derives"] == [chain_corpus[3].id]
        assert execute_on_store(f"COUNT LINEAGE OF '{g2}'", store) == 3


class TestRelationalReplayChainPersistence:
    def test_chain_survives_reopen_and_backfill(self, tmp_path,
                                                chain_corpus):
        path = str(tmp_path / "chain.db")
        with RelationalStore(path) as store:
            store.save_runs(chain_corpus)
            expected = store.lineage_closure(
                f"run:{chain_corpus[-1].id}", direction="up")
        assert len(expected) == 3
        reopened = RelationalStore(path)
        assert reopened.lineage_closure(
            f"run:{chain_corpus[-1].id}", direction="up") == expected
        # simulate a pre-chain-index database: edges vanish, backfill
        # reconstructs them (hash edges in SQL, run edges from tags)
        reopened._connection.execute("DELETE FROM lineage")
        reopened._connection.commit()
        reopened.close()
        healed = RelationalStore(path)
        assert healed.lineage_closure(
            f"run:{chain_corpus[-1].id}", direction="up") == expected
        assert healed.select(ProvQuery.artifacts().upstream_of(
            _final_hash(chain_corpus))).all()


class TestRelationalLineagePersistence:
    def test_index_survives_reopen(self, tmp_path, corpus):
        path = str(tmp_path / "lineage.db")
        with RelationalStore(path) as store:
            store.save_runs(corpus)
            expected = store.select(
                ProvQuery.artifacts()
                .upstream_of(_final_hash(corpus))).all()
        reopened = RelationalStore(path)
        _assert_lineage_parity(reopened, corpus)
        assert reopened.select(
            ProvQuery.artifacts()
            .upstream_of(_final_hash(corpus))).all() == expected

    def test_backfill_from_pre_index_database(self, tmp_path, corpus,
                                              monkeypatch):
        # simulate a database written before the lineage table existed
        path = str(tmp_path / "legacy.db")
        store = RelationalStore(path)
        store.save_runs(corpus)
        expected = [ProvenanceStore.select(store, query).all()
                    for query in _lineage_catalog(corpus)]
        store._connection.execute("DELETE FROM lineage")
        store._connection.commit()
        store.close()
        healed = RelationalStore(path)
        monkeypatch.setattr(
            healed, "load_run",
            lambda run_id: pytest.fail("backfill must stay inside SQL"))
        native = [healed.select(query).all()
                  for query in _lineage_catalog(corpus)]
        assert native == expected

    def test_ancestry_without_load_run_single_statement(self, tmp_path,
                                                        corpus,
                                                        monkeypatch):
        store = make_store("relational", tmp_path, corpus)
        monkeypatch.setattr(
            store, "load_run",
            lambda run_id: pytest.fail("ancestry must not load runs"))
        executed = []
        store._connection.set_trace_callback(executed.append)
        try:
            rows = store.select(ProvQuery.artifacts()
                                .upstream_of(_final_hash(corpus))).all()
        finally:
            store._connection.set_trace_callback(None)
        assert rows
        recursive = [sql for sql in executed if "WITH RECURSIVE" in sql]
        assert len(recursive) == 1, \
            "transitive ancestry should be one recursive CTE statement"


class TestDocumentLineageSidecar:
    def test_pre_lineage_index_self_heals(self, tmp_path, corpus):
        store = make_store("documents", tmp_path, corpus)
        store.select(ProvQuery.runs()).all()
        store.close()
        # strip the lineage edges, as an index written by an older
        # version would be
        index_path = store.root / "index" / "summaries.json"
        stale = json.loads(index_path.read_text())
        for entry in stale.values():
            entry.pop("lineage", None)
        index_path.write_text(json.dumps(stale, sort_keys=True))
        healed = DocumentStore(tmp_path / "docs")
        _assert_lineage_parity(healed, corpus)

    def test_lineage_answered_from_sidecar_not_documents(self, tmp_path,
                                                         corpus,
                                                         monkeypatch):
        store = make_store("documents", tmp_path, corpus)
        store.select(ProvQuery.runs()).all()  # index warm
        import repro.storage.documents as documents_module
        monkeypatch.setattr(
            documents_module.WorkflowRun, "from_dict",
            classmethod(lambda cls, data: pytest.fail(
                "lineage must be answered from the sidecar index")))
        rows = store.select(ProvQuery.artifacts()
                            .upstream_of(_final_hash(corpus))).all()
        assert rows


class TestLineageValidation:
    def test_lineage_only_on_artifacts(self):
        with pytest.raises(QueryError):
            ProvQuery.runs().upstream_of("h")
        with pytest.raises(QueryError):
            ProvQuery.executions().downstream_of("h")

    def test_single_clause_per_query(self):
        query = ProvQuery.artifacts().upstream_of("h")
        with pytest.raises(QueryError):
            query.downstream_of("h2")

    def test_bad_clause_arguments(self):
        with pytest.raises(QueryError):
            ProvQuery.artifacts().upstream_of("")
        with pytest.raises(QueryError):
            ProvQuery.artifacts().upstream_of("h", max_depth=0)
        with pytest.raises(QueryError):
            ProvQuery.artifacts().upstream_of("h", max_depth=True)

    def test_clause_is_immutable_refinement(self):
        base = ProvQuery.artifacts()
        refined = base.upstream_of("h", max_depth=2)
        assert base.lineage is None
        assert refined.lineage is not None
        assert refined.lineage.max_depth == 2
        assert "upstream_of" in repr(refined)


class TestManagerLineage:
    def test_manager_lineage_both_directions(self, tmp_path, corpus):
        manager = ProvenanceManager(store=make_store("relational",
                                                     tmp_path, corpus))
        up = manager.lineage(_final_hash(corpus))
        assert up
        assert up == sorted(up, key=lambda r: (r["run_id"], r["id"]))
        down = manager.lineage(_volume_hash(corpus), direction="down",
                               max_depth=1)
        assert down
        with pytest.raises(ValueError):
            manager.lineage("h", direction="sideways")


class TestResultCursor:
    def test_cursor_is_lazy_and_one_shot(self):
        produced = []

        def rows():
            for index in range(10):
                produced.append(index)
                yield {"id": index}

        cursor = ResultCursor(rows(), page_size=3)
        assert cursor.first() == {"id": 0}
        assert produced == [0]
        assert [row["id"] for row in cursor.fetchmany()] == [1, 2, 3]
        pages = list(cursor.pages(4))
        assert [[r["id"] for r in page] for page in pages] == \
            [[4, 5, 6, 7], [8, 9]]
        assert cursor.all() == []
        assert cursor.consumed == 10

    def test_fetchmany_zero_returns_nothing(self):
        cursor = ResultCursor(iter([{"a": 1}, {"a": 2}]))
        assert cursor.fetchmany(0) == []
        assert cursor.consumed == 0
        assert list(cursor.pages(0)) == []
        assert cursor.fetchmany(2) == [{"a": 1}, {"a": 2}]


class TestProvQueryValidation:
    def test_unknown_entity_field_and_op(self):
        with pytest.raises(QueryError):
            ProvQuery("bogus")
        with pytest.raises(QueryError):
            ProvQuery.runs().where(bogus_field=1)
        with pytest.raises(QueryError):
            ProvQuery.runs().where_op("status", "matches", "x")
        with pytest.raises(QueryError):
            ProvQuery.executions().order_by("parameters")
        with pytest.raises(QueryError):
            ProvQuery.executions().order_by("param.level")
        with pytest.raises(QueryError):
            ProvQuery.runs().project("bogus")
        with pytest.raises(QueryError):
            ProvQuery.runs().page(0, 10)
        with pytest.raises(QueryError):
            ProvQuery.runs().offset(-2)
        with pytest.raises(QueryError):
            ProvQuery.runs().limit(-1)

    def test_param_fields_only_on_executions(self):
        ProvQuery.executions().where(param__level=1)
        with pytest.raises(QueryError):
            ProvQuery.runs().where(param__level=1)

    def test_queries_are_immutable(self):
        base = ProvQuery.runs()
        refined = base.where(status="ok").limit(1)
        assert base.filters == ()
        assert base.limit_count is None
        assert refined.limit_count == 1


class TestManagerIntegration:
    def test_last_engine_result_defaults_to_none(self):
        manager = ProvenanceManager()
        assert manager.last_engine_result is None

    def test_manager_select_round_trip(self):
        manager = ProvenanceManager()
        run = manager.run(build_fig1_workflow(size=8))
        assert manager.last_engine_result is not None
        rows = manager.select(
            ProvQuery.runs().where(status="ok").project("id")).all()
        assert rows == [{"id": run.id}]
        executions = manager.select(
            ProvQuery.executions().where(run_id=run.id)).all()
        assert len(executions) == len(run.executions)


class TestStoreLevelQueryLanguages:
    def test_provql_execute_on_store_pushdown(self, tmp_path, corpus,
                                              monkeypatch):
        from repro.query.provql import execute_on_store
        store = make_store("relational", tmp_path, corpus)
        monkeypatch.setattr(
            store, "load_run",
            lambda run_id: pytest.fail("pushdown path must not load runs"))
        rows = execute_on_store(
            "EXECUTIONS WHERE module.type = 'IsosurfaceExtract'"
            " AND param.level = 90.0", store)
        assert len(rows) == len(corpus)
        count = execute_on_store(
            "COUNT ARTIFACTS WHERE external = false", store)
        assert count == sum(len(run.artifacts) for run in corpus)

    def test_provql_store_matches_per_run_union(self, tmp_path, corpus):
        from repro.query.provql import execute, execute_on_store
        store = make_store("relational", tmp_path, corpus)
        store_rows = execute_on_store(
            "EXECUTIONS WHERE status = 'ok'", store)
        merged = []
        for summary in store.list_runs():
            merged.extend(execute("EXECUTIONS WHERE status = 'ok'",
                                  store.load_run(summary.run_id)))
        assert sorted(r["id"] for r in store_rows) == \
            sorted(r["id"] for r in merged)

    def test_provql_store_artifact_rows_resolve_creators(self, tmp_path,
                                                         corpus,
                                                         monkeypatch):
        from repro.query.provql import execute, execute_on_store
        store = make_store("relational", tmp_path, corpus)
        monkeypatch.setattr(
            store, "load_run",
            lambda run_id: pytest.fail("creator resolution must not "
                                       "deserialize runs"))
        store_rows = {row["id"]: row for row in execute_on_store(
            "ARTIFACTS WHERE creator.type = 'IsosurfaceExtract'", store)}
        assert len(store_rows) == len(corpus)
        per_run = execute("ARTIFACTS WHERE creator.type ="
                          " 'IsosurfaceExtract'", corpus[0])
        assert per_run[0]["id"] in store_rows
        assert store_rows[per_run[0]["id"]] == per_run[0]

    def test_provql_creator_resolution_is_run_scoped(self):
        # two runs reuse the execution id 'exec-1' (legal for externally
        # ingested provenance) with different module types; each artifact
        # must resolve its creator within its own run
        from repro.query.provql import execute_on_store
        from repro.core.retrospective import WorkflowRun
        store = MemoryStore()
        for run_no, module_type in (("r1", "Alpha"), ("r2", "Beta")):
            store.save_run(WorkflowRun.from_dict({
                "id": run_no, "workflow_id": f"wf-{run_no}",
                "workflow_name": "ext", "workflow_signature": "s",
                "status": "ok", "started": 1.0, "finished": 2.0,
                "executions": [{
                    "id": "exec-1", "module_id": "m1",
                    "module_type": module_type, "status": "ok",
                    "outputs": [{"port": "out",
                                 "artifact_id": f"art-{run_no}"}],
                }],
                "artifacts": {f"art-{run_no}": {
                    "id": f"art-{run_no}", "value_hash": f"h-{run_no}",
                    "created_by": "exec-1", "role": "out"}},
            }))
        rows = execute_on_store(
            "ARTIFACTS WHERE creator.type = 'Alpha'", store)
        assert [(r["id"], r["creator.type"]) for r in rows] == \
            [("art-r1", "Alpha")]

    def test_provql_numeric_coercion_matches_per_run(self, corpus):
        # ProvQL's ordering ops coerce both sides numerically ('90' > 50
        # matches); the store path must not push them into an index that
        # compares raw types
        from repro.query.provql import execute, execute_on_store
        run = clone_run(corpus[0], "coerce")
        for execution in run.executions:
            if "level" in execution.parameters:
                execution.parameters["level"] = "90"
        store = MemoryStore()
        store.save_run(run)
        text = "EXECUTIONS WHERE param.level > 50"
        per_run = execute(text, run)
        assert per_run, "expected the coerced comparison to match"
        assert [r["id"] for r in execute_on_store(text, store)] == \
            [r["id"] for r in per_run]

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_provql_upstream_matches_select_lineage(self, backend,
                                                    tmp_path, corpus):
        from repro.query.provql import execute_on_store
        store = make_store(backend, tmp_path, corpus)
        key = _final_hash(corpus)
        rows = execute_on_store(f"UPSTREAM OF '{key}'", store)
        reference = store.select(
            ProvQuery.artifacts().upstream_of(key)
            .order_by("run_id", "id")).all()
        assert [row["id"] for row in rows] == \
            [row["id"] for row in reference]
        assert rows and all(row["hash"] != key for row in rows)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_provql_downstream_matches_select_lineage(self, backend,
                                                      tmp_path, corpus):
        from repro.query.provql import execute_on_store
        store = make_store(backend, tmp_path, corpus)
        key = _volume_hash(corpus)
        rows = execute_on_store(f"DOWNSTREAM OF '{key}'", store)
        reference = store.select(
            ProvQuery.artifacts().downstream_of(key)
            .order_by("run_id", "id")).all()
        assert [row["id"] for row in rows] == \
            [row["id"] for row in reference]

    def test_provql_lineage_commands_push_down(self, tmp_path, corpus,
                                               monkeypatch):
        from repro.query.provql import execute_on_store
        store = make_store("relational", tmp_path, corpus)
        monkeypatch.setattr(
            store, "load_run",
            lambda run_id: pytest.fail("cross-run lineage must answer "
                                       "from the index"))
        rows = execute_on_store(
            f"UPSTREAM OF '{_final_hash(corpus)}' WHERE size > 0", store)
        assert rows
        lineage = execute_on_store(
            f"LINEAGE OF '{_final_hash(corpus)}'", store)
        assert lineage["artifacts"] and lineage["executions"]
        count = execute_on_store(
            f"COUNT LINEAGE OF '{_final_hash(corpus)}'", store)
        assert count == (len(lineage["artifacts"])
                         + len(lineage["executions"]))

    def test_provql_paths_still_requires_single_run(self, tmp_path,
                                                    corpus):
        from repro.query.provql import ProvQLError, execute_on_store
        store = make_store("memory", tmp_path, corpus)
        with pytest.raises(ProvQLError):
            execute_on_store("PATHS FROM a TO b", store)

    def test_datalog_store_to_facts_filters_runs(self, tmp_path, corpus):
        from repro.query.facts import store_to_facts
        store = make_store("relational", tmp_path, corpus)
        everything = store_to_facts(store)
        failed_only = store_to_facts(
            store, ProvQuery.runs().where(status="failed"))
        failed_run_ids = {fact[1] for fact
                          in failed_only.rows("in_run")}
        assert failed_run_ids == {corpus[1].id, corpus[4].id}
        assert len(everything.rows("in_run")) > \
            len(failed_only.rows("in_run"))

    def test_qbe_find_in_store(self, registry):
        from repro.query.qbe import find_in_store
        from repro.workflow import Module, Workflow
        manager = ProvenanceManager()
        workflow = build_fig1_workflow(size=8)
        manager.run(workflow)
        pattern = Workflow("pattern")
        pattern.add_module(Module("IsosurfaceExtract"))
        assert find_in_store(pattern, manager.store) == [workflow.id]
