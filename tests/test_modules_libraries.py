"""Tests for the domain module libraries (vis, imaging, genomics, enviro)."""

import numpy as np
import pytest

from repro.workflow import Executor, Module, Workflow
from repro.workflow.modules.genomics import needleman_wunsch, synthetic_reads
from repro.workflow.modules.imaging import new_anatomy_image, reference_image
from repro.workflow.modules.vis import (decode_pgm, encode_pgm,
                                        synthetic_head_volume)


def run_single(registry, type_name, inputs=None, params=None):
    """Run one module in isolation and return its outputs dict."""
    workflow = Workflow()
    module = workflow.add_module(Module(type_name,
                                        parameters=dict(params or {})))
    executor = Executor(registry)
    bound = {(module.id, port): value
             for port, value in (inputs or {}).items()}
    run = executor.execute(workflow, inputs=bound)
    assert run.status == "ok", run.results[module.id].error
    return {port: record.value
            for port, record in run.results[module.id].outputs.items()}


class TestVisLibrary:
    def test_head_volume_deterministic(self):
        assert np.array_equal(synthetic_head_volume(16, seed=3),
                              synthetic_head_volume(16, seed=3))

    def test_head_volume_has_skull_shell(self):
        volume = synthetic_head_volume(32)
        # the shell is denser than interior tissue
        assert volume.max() > 120.0

    def test_pgm_roundtrip(self):
        image = np.arange(12, dtype=np.float64).reshape(3, 4)
        decoded = decode_pgm(encode_pgm(image))
        assert decoded.shape == (3, 4)
        assert decoded.min() == 0 and decoded.max() == 255

    def test_pgm_rejects_garbage(self):
        with pytest.raises(ValueError):
            decode_pgm(b"JUNK\n1 1\n255\nx")

    def test_histogram_counts_total(self, registry):
        volume = synthetic_head_volume(8)
        outputs = run_single(registry, "ComputeHistogram",
                             inputs={"volume": volume},
                             params={"bins": 8})
        counts = outputs["histogram"]["columns"]["count"]
        assert sum(counts) == volume.size
        assert len(counts) == 8

    def test_isosurface_level_monotone(self, registry):
        volume = synthetic_head_volume(12)
        low = run_single(registry, "IsosurfaceExtract",
                         inputs={"volume": volume},
                         params={"level": 50.0})["mesh"]
        high = run_single(registry, "IsosurfaceExtract",
                          inputs={"volume": volume},
                          params={"level": 150.0})["mesh"]
        assert len(low["faces"]) > len(high["faces"])

    def test_smooth_mesh_shrinks_spread(self, registry):
        volume = synthetic_head_volume(10)
        mesh = run_single(registry, "IsosurfaceExtract",
                          inputs={"volume": volume},
                          params={"level": 80.0})["mesh"]
        smoothed = run_single(registry, "SmoothMesh",
                              inputs={"mesh": mesh},
                              params={"iterations": 2})["mesh"]
        before = np.array(mesh["vertices"]).std()
        after = np.array(smoothed["vertices"]).std()
        assert after < before
        assert smoothed["smoothed"] is True
        assert len(smoothed["faces"]) == len(mesh["faces"])

    def test_download_parse_pipeline_deterministic(self, registry):
        first = run_single(registry, "DownloadFile",
                           params={"url": "http://x/data"})["data"]
        second = run_single(registry, "DownloadFile",
                            params={"url": "http://x/data"})["data"]
        assert first == second
        volume = run_single(registry, "ParseVolumeFile",
                            inputs={"data": first})["volume"]
        assert volume.ndim == 3

    def test_render_mesh_image_size(self, registry):
        volume = synthetic_head_volume(10)
        mesh = run_single(registry, "IsosurfaceExtract",
                          inputs={"volume": volume},
                          params={"level": 80.0})["mesh"]
        image = run_single(registry, "RenderMesh", inputs={"mesh": mesh},
                           params={"size": 32})["image"]
        assert image.shape == (32, 32)
        assert image.max() > 0


class TestImagingLibrary:
    def test_anatomy_images_differ_by_subject(self):
        image1, header1 = new_anatomy_image(1)
        image2, header2 = new_anatomy_image(2)
        assert not np.array_equal(image1, image2)
        assert header1["subject"] == "anatomy1"
        assert header2["global_maximum"] > header1["global_maximum"]

    def test_align_warp_estimates_offset_direction(self, registry):
        image, header = new_anatomy_image(1)
        ref, ref_header = reference_image()
        warp = run_single(registry, "AlignWarp",
                          inputs={"image": image, "header": header,
                                  "reference": ref,
                                  "ref_header": ref_header},
                          params={"model": 12})["warp"]
        assert len(warp["translation"]) == 3
        assert warp["subject"] == "anatomy1"

    def test_lower_model_truncates_warp(self, registry):
        image, header = new_anatomy_image(1)
        ref, ref_header = reference_image()
        inputs = {"image": image, "header": header, "reference": ref,
                  "ref_header": ref_header}
        full = run_single(registry, "AlignWarp", inputs=inputs,
                          params={"model": 12})["warp"]
        half = run_single(registry, "AlignWarp", inputs=inputs,
                          params={"model": 6})["warp"]
        assert all(abs(h) <= abs(f) + 1e-12 for h, f
                   in zip(half["translation"], full["translation"]))

    def test_reslice_improves_alignment(self, registry):
        image, header = new_anatomy_image(3)
        ref, ref_header = reference_image()
        warp = run_single(registry, "AlignWarp",
                          inputs={"image": image, "header": header,
                                  "reference": ref,
                                  "ref_header": ref_header})["warp"]
        outputs = run_single(registry, "Reslice",
                             inputs={"image": image, "warp": warp})
        def offset(img):
            total = img.sum()
            grids = np.indices(img.shape)
            com = np.array([(g * img).sum() / total for g in grids])
            return np.abs(com - (np.array(img.shape) - 1) / 2).sum()
        assert offset(outputs["image"]) <= offset(image) + 1e-9
        assert outputs["header"]["resliced"] is True

    def test_softmean_averages(self, registry):
        images = [new_anatomy_image(i)[0] for i in (1, 2, 3, 4)]
        outputs = run_single(registry, "Softmean",
                             inputs={f"image{i+1}": img
                                     for i, img in enumerate(images)})
        expected = np.mean(images, axis=0)
        assert np.allclose(outputs["atlas"], expected)
        assert outputs["atlas_header"]["subject"] == "atlas"

    def test_slicer_axes(self, registry):
        image, header = new_anatomy_image(1, size=16)
        for axis in ("x", "y", "z"):
            plane = run_single(registry, "Slicer",
                               inputs={"image": image, "header": header},
                               params={"axis": axis})["slice"]
            assert plane.shape == (16, 16)

    def test_convert_produces_pgm(self, registry):
        image, header = new_anatomy_image(1, size=8)
        plane = run_single(registry, "Slicer",
                           inputs={"image": image,
                                   "header": header})["slice"]
        graphic = run_single(registry, "Convert",
                             inputs={"slice": plane})["graphic"]
        assert graphic.startswith(b"P5\n")
        assert decode_pgm(graphic).shape == (8, 8)


class TestGenomicsLibrary:
    def test_synthetic_reads_deterministic(self):
        ref_a, reads_a = synthetic_reads(4, 30, seed=5)
        ref_b, reads_b = synthetic_reads(4, 30, seed=5)
        assert ref_a == ref_b and reads_a == reads_b

    def test_reads_close_to_reference(self):
        reference, reads = synthetic_reads(5, 100, seed=1,
                                           mutation_rate=0.01)
        for read in reads:
            mismatches = sum(1 for a, b in zip(read, reference) if a != b)
            assert mismatches < 10

    def test_needleman_wunsch_identical(self):
        result = needleman_wunsch("ACGT", "ACGT")
        assert result["score"] == 4.0
        assert result["aligned_query"] == "ACGT"

    def test_needleman_wunsch_gap(self):
        result = needleman_wunsch("ACGT", "AGT")
        assert "-" in result["aligned_target"]

    def test_consensus_recovers_reference(self, registry):
        reference, reads = synthetic_reads(15, 60, seed=2,
                                           mutation_rate=0.02)
        consensus = run_single(registry, "ConsensusCall",
                               inputs={"reads": reads})["consensus"]
        mismatches = sum(1 for a, b in zip(consensus, reference)
                         if a != b)
        assert mismatches <= 2

    def test_gc_content_bounds(self, registry):
        _, reads = synthetic_reads(6, 40, seed=3)
        table = run_single(registry, "GCContent",
                           inputs={"reads": reads})["table"]
        for fraction in table["columns"]["gc_fraction"]:
            assert 0.0 <= fraction <= 1.0

    def test_quality_filter_drops_low_complexity(self, registry):
        diverse = "ACGGTTACGATCCGATAGCT"   # many distinct 3-mers
        homopolymer = "AAAAAAAAAAAAAAAAAAAA"  # one distinct 3-mer
        kept = run_single(registry, "QualityFilter",
                          inputs={"reads": [diverse, homopolymer]},
                          params={"min_complexity": 0.3})["reads"]
        assert kept == [diverse]

    def test_variant_table_positions(self, registry):
        table = run_single(registry, "VariantTable",
                           inputs={"consensus": "ACGT",
                                   "reference": "ACCT"})["table"]
        assert table["columns"]["position"] == [2]
        assert table["columns"]["call"] == ["G"]


class TestEnviroLibrary:
    def test_sensor_series_shape(self, registry):
        series = run_single(registry, "SensorIngest",
                            params={"days": 2, "seed": 9})["series"]
        assert len(series["t"]) == 48
        assert series["station"] == "ST-01"

    def test_clean_removes_outliers(self, registry):
        series = run_single(registry, "SensorIngest",
                            params={"days": 5, "seed": 9})["series"]
        cleaned = run_single(registry, "CleanSeries",
                             inputs={"series": series},
                             params={"zmax": 4.0})["series"]
        finite_before = np.isfinite(np.array(series["v"])).sum()
        finite_after = np.isfinite(np.array(cleaned["v"])).sum()
        assert finite_after <= finite_before

    def test_interpolation_fills_all_gaps(self, registry):
        series = run_single(registry, "SensorIngest",
                            params={"days": 3, "seed": 4})["series"]
        filled = run_single(registry, "InterpolateGaps",
                            inputs={"series": series})["series"]
        assert np.isfinite(np.array(filled["v"])).all()

    def test_fit_ar_recovers_phi(self, registry):
        series = run_single(registry, "SensorIngest",
                            params={"days": 30, "seed": 7,
                                    "phi": 0.8})["series"]
        filled = run_single(registry, "InterpolateGaps",
                            inputs={"series": series})["series"]
        cleaned = run_single(registry, "CleanSeries",
                             inputs={"series": filled})["series"]
        filled2 = run_single(registry, "InterpolateGaps",
                             inputs={"series": cleaned})["series"]
        model = run_single(registry, "FitAR",
                           inputs={"series": filled2})["model"]
        assert 0.5 < model["phi"] < 0.95

    def test_forecast_converges_to_mean(self, registry):
        series = {"t": [0.0, 1.0], "v": [100.0, 100.0]}
        model = {"kind": "AR1", "mu": 10.0, "phi": 0.5, "sigma": 1.0}
        forecast = run_single(registry, "Forecast",
                              inputs={"series": series, "model": model},
                              params={"horizon": 50})["forecast"]
        assert abs(forecast["v"][-1] - 10.0) < 0.01

    def test_compare_series_metrics(self, registry):
        a = {"t": [0, 1, 2], "v": [1.0, 2.0, 3.0]}
        b = {"t": [0, 1, 2], "v": [1.0, 2.0, 5.0]}
        metrics = run_single(registry, "CompareSeries",
                             inputs={"actual": a,
                                     "predicted": b})["metrics"]
        values = dict(zip(metrics["columns"]["metric"],
                          metrics["columns"]["value"]))
        assert values["mae"] == pytest.approx(2.0 / 3.0)

    def test_fit_ar_rejects_gappy_series(self, registry):
        workflow = Workflow()
        module = workflow.add_module(Module("FitAR"))
        executor = Executor(registry)
        run = executor.execute(workflow, inputs={
            (module.id, "series"): {"t": [0, 1], "v": [1.0, float("nan")]}})
        assert run.status == "failed"


class TestBasicLibrary:
    def test_arithmetic_chain(self, registry):
        workflow = Workflow()
        a = workflow.add_module(Module("NumberConstant",
                                       parameters={"value": 6.0}))
        b = workflow.add_module(Module("NumberConstant",
                                       parameters={"value": 7.0}))
        mul = workflow.add_module(Module("Multiply"))
        workflow.connect(a.id, "value", mul.id, "a")
        workflow.connect(b.id, "value", mul.id, "b")
        run = Executor(registry).execute(workflow)
        assert run.output(mul.id, "result") == 42.0

    def test_table_pipeline(self, registry):
        workflow = Workflow()
        build = workflow.add_module(Module("BuildTable", parameters={
            "columns": {"x": [1, 2, 3, 4], "y": [10, 20, 30, 40]}}))
        filt = workflow.add_module(Module("FilterRows", parameters={
            "column": "x", "op": ">", "value": 2}))
        agg = workflow.add_module(Module("AggregateColumn", parameters={
            "column": "y", "func": "sum"}))
        workflow.connect(build.id, "table", filt.id, "table")
        workflow.connect(filt.id, "table", agg.id, "table")
        run = Executor(registry).execute(workflow)
        assert run.output(agg.id, "value") == 70.0

    def test_seeded_random_reproducible(self, registry):
        outputs_a = run_single(registry, "SeededRandom",
                               params={"seed": 42})
        outputs_b = run_single(registry, "SeededRandom",
                               params={"seed": 42})
        assert outputs_a["value"] == outputs_b["value"]

    def test_make_list_drops_missing(self, registry):
        workflow = Workflow()
        a = workflow.add_module(Module("Constant",
                                       parameters={"value": 1}))
        lst = workflow.add_module(Module("MakeList"))
        workflow.connect(a.id, "value", lst.id, "a")
        run = Executor(registry).execute(workflow)
        assert run.output(lst.id, "items") == [1]

    def test_divide_by_zero_fails_module(self, registry):
        workflow = Workflow()
        a = workflow.add_module(Module("NumberConstant",
                                       parameters={"value": 1.0}))
        b = workflow.add_module(Module("NumberConstant",
                                       parameters={"value": 0.0}))
        div = workflow.add_module(Module("Divide"))
        workflow.connect(a.id, "value", div.id, "a")
        workflow.connect(b.id, "value", div.id, "b")
        run = Executor(registry).execute(workflow)
        assert run.status == "failed"
