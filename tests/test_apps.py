"""Tests for the application layer: reproduce, invalidate, explore, social,
education."""

import pytest

from repro.apps import (Assignment, ClassSession, Collaboratory,
                        compare_products, detect_similar_submissions,
                        invalidate_by_hash, invalidate_in_run,
                        parameter_sweep, rerun, validate_reproduction)
from repro.core import ProvenanceManager
from repro.workflow import Module, Workflow
from repro.workloads import (build_genomics_workflow, build_vis_workflow,
                             random_edit_session)
from tests.conftest import module_by_name


@pytest.fixture()
def vis_setup():
    manager = ProvenanceManager()
    workflow = build_vis_workflow(size=8)
    run = manager.run(workflow)
    return manager, workflow, run


class TestReproduce:
    def test_deterministic_workflow_reproduces(self, vis_setup):
        manager, workflow, run = vis_setup
        reproduction = rerun(run, manager.registry)
        report = validate_reproduction(run, reproduction)
        assert report.reproducible
        # load(volume+header), hist, render_hist, iso, render_mesh, encode
        assert len(report.matching) == 7
        assert report.mismatched == []
        assert "REPRODUCED" in report.summary()

    def test_nondeterminism_detected(self):
        manager = ProvenanceManager(use_cache=False)
        workflow = manager.new_workflow("lucky")
        manager.add_module(workflow, "RandomNumber")
        run = manager.run(workflow)
        reproduction = rerun(run, manager.registry)
        report = validate_reproduction(run, reproduction)
        assert not report.reproducible
        assert len(report.mismatched) == 1

    def test_reproduction_tagged_with_origin(self, vis_setup):
        manager, _, run = vis_setup
        reproduction = rerun(run, manager.registry)
        assert reproduction.tags["reproduction_of"] == run.id

    def test_rerun_stores_when_asked(self, vis_setup):
        manager, _, run = vis_setup
        before = len(manager.store.list_runs())
        rerun(run, manager.registry, store=manager.store)
        assert len(manager.store.list_runs()) == before + 1


class TestInvalidation:
    def test_in_run_propagation(self, vis_setup):
        _, workflow, run = vis_setup
        load = module_by_name(workflow, "load")
        volume = run.artifacts_for_module(load.id, "volume")
        tainted = invalidate_in_run(run, volume.id)
        assert len(tainted) == 5  # everything downstream of the volume

    def test_store_wide_propagation(self, vis_setup):
        manager, workflow, run = vis_setup
        second = manager.run(workflow)  # cached: same hashes
        load = module_by_name(workflow, "load")
        volume = run.artifacts_for_module(load.id, "volume")
        report = invalidate_by_hash(manager.store, volume.value_hash)
        assert set(report.affected_runs) == {run.id, second.id}
        assert report.clean_runs == []
        assert report.total_invalidated >= 10

    def test_unrelated_runs_stay_clean(self, vis_setup):
        manager, workflow, run = vis_setup
        other = manager.run(build_genomics_workflow())
        load = module_by_name(workflow, "load")
        volume = run.artifacts_for_module(load.id, "volume")
        report = invalidate_by_hash(manager.store, volume.value_hash)
        assert other.id in report.clean_runs

    def test_affected_products_are_finals(self, vis_setup):
        manager, workflow, run = vis_setup
        load = module_by_name(workflow, "load")
        volume = run.artifacts_for_module(load.id, "volume")
        report = invalidate_by_hash(manager.store, volume.value_hash)
        final_ids = {artifact.id for artifact in run.final_artifacts()}
        assert set(report.affected_products[run.id]) <= final_ids


class TestExploration:
    def test_sweep_covers_grid(self, vis_setup):
        manager, workflow, _ = vis_setup
        iso = module_by_name(workflow, "iso")
        result = parameter_sweep(
            manager, workflow,
            {(iso.id, "level"): [60.0, 90.0, 120.0]})
        assert len(result.runs) == 3
        assert result.run_for(level=90.0) is not None

    def test_sweep_reuses_upstream(self, vis_setup):
        manager, workflow, _ = vis_setup
        iso = module_by_name(workflow, "iso")
        result = parameter_sweep(
            manager, workflow,
            {(iso.id, "level"): [50.0, 70.0, 90.0, 110.0]})
        # load/hist/render_hist identical in every run: high hit rate
        assert result.cache_hit_rate > 0.4

    def test_multi_parameter_grid(self, vis_setup):
        manager, workflow, _ = vis_setup
        iso = module_by_name(workflow, "iso")
        hist = module_by_name(workflow, "hist")
        result = parameter_sweep(
            manager, workflow,
            {(iso.id, "level"): [60.0, 90.0],
             (hist.id, "bins"): [8, 16]})
        assert len(result.runs) == 4

    def test_compare_products(self, vis_setup):
        manager, workflow, _ = vis_setup
        iso = module_by_name(workflow, "iso")
        load = module_by_name(workflow, "load")
        result = parameter_sweep(
            manager, workflow, {(iso.id, "level"): [60.0, 120.0]})
        same = compare_products(result.runs[0], result.runs[1],
                                load.id, "volume")
        assert same["identical"]
        different = compare_products(result.runs[0], result.runs[1],
                                     iso.id, "mesh")
        assert not different["identical"]


class TestCollaboratory:
    @pytest.fixture()
    def community(self, vis_setup):
        manager, workflow, run = vis_setup
        collab = Collaboratory(manager.registry)
        alice = collab.join("alice", "upenn")
        bob = collab.join("bob", "utah")
        entry = collab.publish(alice.id, workflow, "head visualization",
                               description="histogram + isosurface",
                               tags={"vis", "medical"}, runs=[run])
        collab.publish(bob.id, build_genomics_workflow(),
                       "consensus caller", tags={"genomics"})
        return collab, alice, bob, entry

    def test_keyword_search(self, community):
        collab, *_ = community
        assert len(collab.search("visual")) == 1
        assert len(collab.search("genomics")) == 1
        assert collab.search("nothing-here") == []

    def test_module_type_search(self, community):
        collab, *_ = community
        found = collab.search_by_module_type("IsosurfaceExtract")
        assert [entry.title for entry in found] == ["head visualization"]

    def test_pattern_search(self, community):
        collab, *_ = community
        pattern = Workflow("pattern")
        a = pattern.add_module(Module("QualityFilter"))
        b = pattern.add_module(Module("ConsensusCall"))
        pattern.connect(a.id, "reads", b.id, "reads")
        found = collab.search_by_pattern(pattern)
        assert [entry.title for entry in found] == ["consensus caller"]

    def test_fork_tracks_origin_and_downloads(self, community):
        collab, alice, bob, entry = community
        fork = collab.fork(bob.id, entry.workflow.id)
        assert fork.forked_from == entry.workflow.id
        assert collab.published[entry.workflow.id].downloads == 1
        assert fork.workflow.id != entry.workflow.id

    def test_stars_rank_popular(self, community):
        collab, alice, bob, entry = community
        collab.star(bob.id, entry.workflow.id)
        collab.star(bob.id, entry.workflow.id)  # idempotent
        popular = collab.popular(top_k=1)
        assert popular[0].title == "head visualization"
        assert popular[0].star_count == 1

    def test_crowd_recommendation(self, community):
        collab, *_ = community
        draft = Workflow("draft")
        draft.add_module(Module("LoadVolume"))
        suggestions = collab.suggest_completion(draft)
        assert suggestions
        assert all(0 < suggestion.score <= 1.0
                   for suggestion in suggestions)

    def test_statistics(self, community):
        collab, alice, bob, entry = community
        collab.star(bob.id, entry.workflow.id)
        stats = collab.statistics()
        assert stats["users"] == 2
        assert stats["workflows"] == 2
        assert stats["runs_shared"] == 1
        assert stats["total_stars"] == 1

    def test_unknown_user_rejected(self, community):
        collab, *_ = community
        with pytest.raises(KeyError):
            collab.publish("user-ghost", Workflow("w"), "t")


class TestEducation:
    def test_class_session_replay(self):
        vistrail = random_edit_session(actions=8, seed=3)
        session = ClassSession(topic="provenance", instructor="davidson",
                               vistrail=vistrail)
        session.note(vistrail.current, "this is the key step")
        lines = session.replay()
        assert lines[0].startswith("Session: provenance")
        assert any("note: this is the key step" in line
                   for line in lines)

    def test_assignment_pass(self, vis_setup):
        _, _, run = vis_setup
        assignment = Assignment(
            title="hw1",
            required_module_types={"LoadVolume", "IsosurfaceExtract"},
            required_product_type="Bytes", min_steps=4)
        report = assignment.grade("carol", run)
        assert report.passed
        assert report.points == report.max_points

    def test_assignment_missing_step(self, vis_setup):
        _, _, run = vis_setup
        assignment = Assignment(
            title="hw2", required_module_types={"Softmean"},
            min_steps=2)
        report = assignment.grade("dave", run)
        assert not report.passed
        assert any("MISSING required step Softmean" in finding
                   for finding in report.findings)

    def test_assignment_forbidden_module(self, vis_setup):
        _, _, run = vis_setup
        assignment = Assignment(
            title="hw3", required_module_types={"LoadVolume"},
            forbidden_module_types={"IsosurfaceExtract"}, min_steps=1)
        report = assignment.grade("eve", run)
        assert not report.passed

    def test_plagiarism_detection(self, vis_setup):
        manager, workflow, run = vis_setup
        copied = manager.run(workflow)  # identical provenance
        independent = manager.run(build_genomics_workflow())
        flagged = detect_similar_submissions({
            "carol": run, "dave": copied, "erin": independent})
        pairs = {(first, second) for first, second, _ in flagged}
        assert ("carol", "dave") in pairs
        assert all("erin" not in pair for pair in pairs)
