"""Tests for database provenance: semirings, algebra, the workflow bridge."""

import pytest

from repro.core import ProvenanceManager
from repro.dbprov import (Join, PolynomialSemiring, Project, Scan, Select,
                          Union, aggregate, base_relation,
                          cross_layer_lineage, expr_from_dict, expr_to_dict,
                          get_semiring, join, project, register_db_modules,
                          rename, select, table_to_relation, union)
from repro.dbprov.algebra import AlgebraError


def sample_relations(semiring):
    r = base_relation("R", ["a", "b"], [(1, 10), (2, 20), (2, 30)],
                      semiring)
    s = base_relation("S", ["b", "c"], [(10, "x"), (20, "y"), (30, "y")],
                      semiring)
    return r, s


class TestSemirings:
    def test_lookup(self):
        assert get_semiring("why").name == "why"
        with pytest.raises(KeyError):
            get_semiring("quantum")

    def test_boolean(self):
        ring = get_semiring("boolean")
        assert ring.plus(False, True) is True
        assert ring.times(True, False) is False
        assert ring.tag("t") is True

    def test_counting_join_multiplicity(self):
        ring = get_semiring("counting")
        r, s = sample_relations(ring)
        result = project(join(r, s, semiring=ring), ["c"],
                         semiring=ring)
        counts = dict(zip([row[0] for row in result.rows],
                          result.annotations))
        assert counts == {"x": 1, "y": 2}

    def test_lineage_zero_annihilates(self):
        ring = get_semiring("lineage")
        assert ring.times(None, frozenset({"t"})) is None
        assert ring.plus(None, frozenset({"t"})) == frozenset({"t"})

    def test_why_witnesses(self):
        ring = get_semiring("why")
        combined = ring.times(ring.tag("t1"), ring.tag("t2"))
        assert combined == frozenset([frozenset({"t1", "t2"})])
        either = ring.plus(ring.tag("t1"), ring.tag("t2"))
        assert len(either) == 2

    def test_polynomial_algebra(self):
        ring = PolynomialSemiring()
        t1, t2 = ring.tag("t1"), ring.tag("t2")
        square = ring.times(t1, t1)
        assert square == {(("t1", 2),): 1}
        total = ring.plus(ring.times(t1, t2), ring.times(t1, t2))
        assert total == {(("t1", 1), ("t2", 1)): 2}
        assert ring.render(total) == "2*t1*t2"
        assert ring.variables(total) == frozenset({"t1", "t2"})

    def test_polynomial_identities(self):
        ring = PolynomialSemiring()
        value = ring.tag("t")
        assert ring.plus(value, ring.zero) == value
        assert ring.times(value, ring.one) == value
        assert ring.is_zero(ring.times(value, ring.zero))

    def test_tropical_cheapest_derivation(self):
        ring = get_semiring("tropical")
        ring.set_cost("cheap", 1.0)
        ring.set_cost("dear", 10.0)
        joint = ring.times(ring.tag("cheap"), ring.tag("dear"))
        assert joint == 11.0
        best = ring.plus(joint, ring.tag("cheap"))
        assert best == 1.0


class TestAlgebra:
    def test_select_preserves_annotations(self):
        ring = get_semiring("lineage")
        r, _ = sample_relations(ring)
        result = select(r, lambda row: row["a"] == 2, semiring=ring)
        assert len(result) == 2
        assert all("R:" in next(iter(annotation))
                   for annotation in result.annotations)

    def test_project_merges_duplicates(self):
        ring = get_semiring("lineage")
        r, _ = sample_relations(ring)
        result = project(r, ["a"], semiring=ring)
        assert len(result) == 2
        merged = result.annotation_of((2,))
        assert merged == frozenset({"R:1", "R:2"})

    def test_join_combines(self):
        ring = PolynomialSemiring()
        r, s = sample_relations(ring)
        result = join(r, s, semiring=ring)
        annotation = result.annotation_of((1, 10, "x"))
        assert PolynomialSemiring.render(annotation) == "R:0*S:0"

    def test_join_on_explicit_columns(self):
        ring = get_semiring("boolean")
        r = base_relation("R", ["k", "v"], [(1, "a")], ring)
        s = base_relation("S", ["k", "w"], [(1, "b")], ring)
        result = join(r, s, semiring=ring, on=["k"])
        assert result.rows == [(1, "a", "b")]

    def test_union_requires_schema(self):
        ring = get_semiring("boolean")
        r, s = sample_relations(ring)
        with pytest.raises(AlgebraError):
            union(r, s, semiring=ring)

    def test_union_merges(self):
        ring = get_semiring("counting")
        r1 = base_relation("R1", ["a"], [(1,), (2,)], ring)
        r2 = base_relation("R2", ["a"], [(2,), (3,)], ring)
        result = union(r1, r2, semiring=ring)
        assert result.annotation_of((2,)) == 2

    def test_rename(self):
        ring = get_semiring("boolean")
        r, _ = sample_relations(ring)
        renamed = rename(r, {"a": "alpha"})
        assert renamed.columns == ("alpha", "b")

    def test_aggregate_annotations_union(self):
        ring = get_semiring("lineage")
        r, _ = sample_relations(ring)
        result = aggregate(r, ["a"], "b", "sum", semiring=ring)
        rows = dict(zip([row[0] for row in result.rows], result.rows))
        assert rows[2][1] == 50
        assert result.annotation_of((2, 50)) \
            == frozenset({"R:1", "R:2"})

    def test_aggregate_functions(self):
        ring = get_semiring("boolean")
        r, _ = sample_relations(ring)
        for func, expected in (("count", 2), ("min", 20), ("max", 30),
                               ("mean", 25)):
            result = aggregate(r, ["a"], "b", func, semiring=ring)
            values = {row[0]: row[1] for row in result.rows}
            assert values[2] == expected

    def test_expression_tree_roundtrip(self):
        expr = Project(Join(Scan("r"), Select(Scan("s"), "c", "=", "y")),
                       ("a", "c"))
        restored = expr_from_dict(expr_to_dict(expr))
        assert restored == expr

    def test_expression_evaluation(self):
        ring = get_semiring("lineage")
        r, s = sample_relations(ring)
        expr = Project(Join(Scan("R"), Scan("S")), ("a", "c"))
        result = expr.evaluate({"R": r, "S": s}, ring)
        assert sorted(result.rows) == [(1, "x"), (2, "y")]

    def test_unknown_scan_rejected(self):
        ring = get_semiring("boolean")
        with pytest.raises(AlgebraError):
            Scan("missing").evaluate({}, ring)


class TestBridge:
    @pytest.fixture()
    def manager(self):
        manager = ProvenanceManager()
        register_db_modules(manager.registry)
        return manager

    def build_query_workflow(self, manager, semiring="lineage"):
        workflow = manager.new_workflow("db-query")
        left = manager.add_module(workflow, "BuildTable", parameters={
            "columns": {"a": [1, 2, 2], "b": [10, 20, 30]}})
        right = manager.add_module(workflow, "BuildTable", parameters={
            "columns": {"b": [10, 20, 30], "c": ["x", "y", "y"]}})
        expression = expr_to_dict(
            Project(Join(Scan("r"), Scan("s")), ("a", "c")))
        query = manager.add_module(workflow, "RelationalQuery",
                                   parameters={
                                       "expression": expression,
                                       "semiring": semiring,
                                       "names": ["r", "s"]})
        workflow.connect(left.id, "table", query.id, "rel1")
        workflow.connect(right.id, "table", query.id, "rel2")
        return workflow, query

    def test_query_module_runs(self, manager):
        workflow, query = self.build_query_workflow(manager)
        run = manager.run(workflow)
        assert run.status == "ok"
        table = run.value(run.artifacts_for_module(query.id, "table").id)
        assert table["columns"]["a"] == [1, 2]

    def test_lineage_output_per_row(self, manager):
        workflow, query = self.build_query_workflow(manager)
        run = manager.run(workflow)
        lineage = run.value(
            run.artifacts_for_module(query.id, "lineage").id)
        assert set(lineage) == {"0", "1"}
        assert sorted(lineage["0"]) == ["r:0", "s:0"]

    def test_cross_layer_lineage(self, manager):
        workflow, query = self.build_query_workflow(manager)
        run = manager.run(workflow)
        result = cross_layer_lineage(run, query.id, 1)
        assert result.source_rows["r"] == {1, 2}
        assert result.source_rows["s"] == {1, 2}
        assert len(result.upstream_artifacts) == 2
        assert "derives from" in result.describe()

    def test_cross_layer_with_polynomial(self, manager):
        workflow, query = self.build_query_workflow(
            manager, semiring="polynomial")
        run = manager.run(workflow)
        result = cross_layer_lineage(run, query.id, 0)
        assert result.base_tuples == {"r:0", "s:0"}

    def test_non_query_module_rejected(self, manager):
        workflow, query = self.build_query_workflow(manager)
        run = manager.run(workflow)
        other = next(m for m in workflow.modules.values()
                     if m.type_name == "BuildTable")
        with pytest.raises(ValueError):
            cross_layer_lineage(run, other.id, 0)

    def test_table_to_relation_roundtrip(self):
        ring = get_semiring("boolean")
        table = {"columns": {"x": [1, 2], "y": ["a", "b"]}}
        relation = table_to_relation("t", table, ring)
        assert relation.columns == ("x", "y")
        assert relation.to_table() == table
