"""Shared fixtures: registries, reference workflows, managers."""

from __future__ import annotations

import pytest

from repro.core import ProvenanceManager
from repro.workflow import Executor, Module, ResultCache, Workflow
from repro.workflow.modules import standard_registry


@pytest.fixture(scope="session")
def registry():
    """One standard module registry shared across the test session."""
    return standard_registry()


@pytest.fixture()
def executor(registry):
    """A fresh executor (no cache) per test."""
    return Executor(registry)


@pytest.fixture()
def caching_executor(registry):
    """A fresh executor with result caching per test."""
    return Executor(registry, cache=ResultCache())


def build_fig1_workflow(size: int = 12, level: float = 90.0) -> Workflow:
    """The Figure 1 pipeline: volume -> (histogram branch, isosurface branch).

    Returns the workflow; module ids are discoverable via instance names
    'load', 'hist', 'render_hist', 'iso', 'render_mesh'.
    """
    workflow = Workflow("figure1")
    load = workflow.add_module(Module("LoadVolume", name="load",
                                      parameters={"size": size}))
    hist = workflow.add_module(Module("ComputeHistogram", name="hist"))
    render_hist = workflow.add_module(Module("RenderHistogram",
                                             name="render_hist"))
    iso = workflow.add_module(Module("IsosurfaceExtract", name="iso",
                                     parameters={"level": level}))
    render_mesh = workflow.add_module(Module("RenderMesh",
                                             name="render_mesh"))
    workflow.connect(load.id, "volume", hist.id, "volume")
    workflow.connect(hist.id, "histogram", render_hist.id, "histogram")
    workflow.connect(load.id, "volume", iso.id, "volume")
    workflow.connect(iso.id, "mesh", render_mesh.id, "mesh")
    return workflow


def build_chain_workflow(length: int = 4, work: int = 10) -> Workflow:
    """A linear chain: Constant -> SpinCompute x length."""
    workflow = Workflow("chain")
    first = workflow.add_module(Module("Constant", name="source",
                                       parameters={"value": 1.0}))
    previous_id, previous_port = first.id, "value"
    for index in range(length):
        module = workflow.add_module(Module(
            "SpinCompute", name=f"stage{index}",
            parameters={"work": work}))
        workflow.connect(previous_id, previous_port, module.id, "value")
        previous_id, previous_port = module.id, "value"
    return workflow


def run_pair_sharing_cache(registry, make_cache, workflow,
                           **execute_kwargs):
    """Run ``workflow`` twice concurrently, each run on its own executor
    with its own ``make_cache()`` store (typically both over one
    persistent file, or one shared in-memory instance).

    The shared harness for the lease exactly-once invariant — used by
    the scheduler tests, the hypothesis property, and the scheduler
    benchmark, so the contract is asserted identically everywhere.
    """
    import threading

    results, errors = [], []

    def one_run():
        try:
            executor = Executor(registry, cache=make_cache())
            results.append(executor.execute(workflow, **execute_kwargs))
        except Exception as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=one_run) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors, errors
    return results


def assert_each_key_computed_once(runs):
    """Assert the cross-run exactly-once + provenance-parity invariant.

    Every module in every run finished ``ok`` or ``cached``; each
    distinct cache key has exactly one ``ok`` (computed) result across
    all runs; and all runs recorded identical output hashes per module.
    """
    computed, keys = {}, set()
    for run in runs:
        for result in run.results.values():
            assert result.status in ("ok", "cached"), result.error
            keys.add(result.cache_key)
            if result.status == "ok":
                computed[result.cache_key] = \
                    computed.get(result.cache_key, 0) + 1
    assert computed == {key: 1 for key in keys}
    fingerprints = [
        {m: {p: r.value_hash for p, r in res.outputs.items()}
         for m, res in run.results.items()} for run in runs]
    assert all(fp == fingerprints[0] for fp in fingerprints[1:])


def module_by_name(workflow: Workflow, name: str) -> Module:
    """Find a module instance by its user-facing name."""
    for module in workflow.modules.values():
        if module.name == name:
            return module
    raise KeyError(name)


@pytest.fixture()
def fig1_workflow():
    """Fresh Figure-1 workflow."""
    return build_fig1_workflow()


@pytest.fixture()
def manager():
    """Fresh in-memory ProvenanceManager."""
    return ProvenanceManager()
