"""Tests for the typed provenance multigraph."""

import pytest

from repro.core.graph import ProvGraph


def diamond():
    """a -> b -> d, a -> c -> d (labels 'dep')."""
    graph = ProvGraph()
    for node in "abcd":
        graph.add_node(node, "artifact")
    graph.add_edge("b", "a", "dep")
    graph.add_edge("c", "a", "dep")
    graph.add_edge("d", "b", "dep")
    graph.add_edge("d", "c", "dep")
    return graph


class TestConstruction:
    def test_add_node_and_kind(self):
        graph = ProvGraph()
        graph.add_node("x", "execution", label="step")
        assert graph.kind("x") == "execution"
        assert graph.node("x")["label"] == "step"

    def test_add_node_update_merges_attrs(self):
        graph = ProvGraph()
        graph.add_node("x", "artifact", a=1)
        graph.add_node("x", "artifact", b=2)
        assert graph.node("x") == {"kind": "artifact", "a": 1, "b": 2}
        assert graph.node_count == 1

    def test_edge_requires_endpoints(self):
        graph = ProvGraph()
        graph.add_node("x", "artifact")
        with pytest.raises(KeyError):
            graph.add_edge("x", "missing", "dep")

    def test_edge_attrs(self):
        graph = ProvGraph()
        graph.add_node("x", "execution")
        graph.add_node("y", "artifact")
        edge = graph.add_edge("x", "y", "used", port="volume")
        assert edge.attr("port") == "volume"
        assert edge.attr("missing", "dflt") == "dflt"

    def test_multi_edges_allowed(self):
        graph = ProvGraph()
        graph.add_node("x", "execution")
        graph.add_node("y", "artifact")
        graph.add_edge("x", "y", "used", port="a")
        graph.add_edge("x", "y", "used", port="b")
        assert graph.edge_count == 2
        assert len(graph.out_edges("x", "used")) == 2


class TestTraversal:
    def test_reachable_out(self):
        graph = diamond()
        assert graph.reachable("d") == {"a", "b", "c"}

    def test_reachable_in(self):
        graph = diamond()
        assert graph.reachable("a", direction="in") == {"b", "c", "d"}

    def test_reachable_label_filter(self):
        graph = diamond()
        graph.add_node("e", "artifact")
        graph.add_edge("d", "e", "other")
        assert graph.reachable("d", labels={"dep"}) == {"a", "b", "c"}

    def test_reachable_excludes_start(self):
        graph = diamond()
        assert "d" not in graph.reachable("d")

    def test_reachable_unknown_raises(self):
        with pytest.raises(KeyError):
            diamond().reachable("zzz")

    def test_paths_enumeration(self):
        graph = diamond()
        paths = graph.paths("d", "a")
        assert paths == [["d", "b", "a"], ["d", "c", "a"]]

    def test_paths_bounded(self):
        graph = diamond()
        assert len(graph.paths("d", "a", max_paths=1)) == 1

    def test_topological_order(self):
        graph = diamond()
        order = graph.topological_order()
        assert order.index("d") < order.index("b")
        assert order.index("b") < order.index("a")

    def test_topological_rejects_cycle(self):
        graph = ProvGraph()
        graph.add_node("x", "a")
        graph.add_node("y", "a")
        graph.add_edge("x", "y", "l")
        graph.add_edge("y", "x", "l")
        with pytest.raises(ValueError):
            graph.topological_order()


class TestSubgraphAndExport:
    def test_subgraph_induced(self):
        graph = diamond()
        sub = graph.subgraph({"d", "b", "a"})
        assert sub.node_count == 3
        assert sub.edge_count == 2  # d->b, b->a

    def test_subgraph_keeps_parallel_edges_and_attrs(self):
        graph = ProvGraph()
        graph.add_node("x", "a")
        graph.add_node("y", "a")
        graph.add_node("z", "a")
        graph.add_edge("x", "y", "used", port="p1")
        graph.add_edge("x", "y", "used", port="p2")
        graph.add_edge("x", "z", "used")
        sub = graph.subgraph(["x", "y"])
        assert sub.edge_count == 2
        assert sorted(e.attr("port") for e in sub.out_edges("x")) == \
            ["p1", "p2"]

    def test_topological_breaks_ties_on_smallest_id(self):
        graph = ProvGraph()
        for node in ("c", "a", "b", "root"):
            graph.add_node(node, "n")
        for node in ("c", "a", "b"):
            graph.add_edge("root", node, "l")
        assert graph.topological_order() == ["root", "a", "b", "c"]

    def test_to_networkx(self):
        nx_graph = diamond().to_networkx()
        assert nx_graph.number_of_nodes() == 4
        assert nx_graph.number_of_edges() == 4

    def test_to_dot_contains_nodes_and_shapes(self):
        dot = diamond().to_dot(title="t")
        assert 'digraph "t"' in dot
        assert '"a" [label="a", shape=ellipse];' in dot
        assert '"d" -> "b" [label="dep"];' in dot

    def test_nodes_by_kind(self):
        graph = diamond()
        graph.add_node("p", "execution")
        assert graph.node_ids("execution") == ["p"]
        assert graph.node_ids("artifact") == ["a", "b", "c", "d"]
