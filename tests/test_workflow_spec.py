"""Tests for workflow specifications (the prospective-provenance backbone)."""

import pytest

from repro.workflow import Connection, CycleError, Module, SpecError, Workflow


def two_module_workflow():
    workflow = Workflow("pair")
    first = workflow.add_module(Module("Constant", name="a"))
    second = workflow.add_module(Module("Identity", name="b"))
    workflow.connect(first.id, "value", second.id, "value")
    return workflow, first, second


class TestMutation:
    def test_add_module(self):
        workflow = Workflow()
        module = workflow.add_module(Module("Constant"))
        assert module.id in workflow.modules

    def test_duplicate_module_id_rejected(self):
        workflow = Workflow()
        module = workflow.add_module(Module("Constant"))
        with pytest.raises(SpecError):
            workflow.add_module(Module("Constant", id=module.id))

    def test_remove_module_with_connections_rejected(self):
        workflow, first, _ = two_module_workflow()
        with pytest.raises(SpecError):
            workflow.remove_module(first.id)

    def test_remove_module_cascade_returns_removed(self):
        workflow, first, _ = two_module_workflow()
        module, connections = workflow.remove_module_cascade(first.id)
        assert module.id == first.id
        assert len(connections) == 1
        assert not workflow.connections

    def test_connection_to_missing_module_rejected(self):
        workflow = Workflow()
        module = workflow.add_module(Module("Constant"))
        with pytest.raises(SpecError):
            workflow.connect(module.id, "value", "mod-missing", "value")

    def test_input_port_single_binding(self):
        workflow, first, second = two_module_workflow()
        other = workflow.add_module(Module("Constant", name="c"))
        with pytest.raises(SpecError):
            workflow.connect(other.id, "value", second.id, "value")

    def test_set_and_unset_parameter(self):
        workflow = Workflow()
        module = workflow.add_module(Module("Constant"))
        workflow.set_parameter(module.id, "value", 42)
        assert module.parameters["value"] == 42
        assert workflow.unset_parameter(module.id, "value") == 42
        with pytest.raises(SpecError):
            workflow.unset_parameter(module.id, "value")

    def test_rename_module(self):
        workflow = Workflow()
        module = workflow.add_module(Module("Constant"))
        workflow.rename_module(module.id, "the source")
        assert workflow.modules[module.id].name == "the source"

    def test_remove_connection_unknown_rejected(self):
        workflow = Workflow()
        with pytest.raises(SpecError):
            workflow.remove_connection("conn-nope")


class TestStructureQueries:
    def test_sources_and_sinks(self):
        workflow, first, second = two_module_workflow()
        assert workflow.sources() == [first.id]
        assert workflow.sinks() == [second.id]

    def test_predecessors_successors(self):
        workflow, first, second = two_module_workflow()
        assert workflow.predecessors(second.id) == [first.id]
        assert workflow.successors(first.id) == [second.id]

    def test_topological_order_linear(self):
        workflow, first, second = two_module_workflow()
        assert workflow.topological_order() == [first.id, second.id]

    def test_topological_order_detects_cycle(self):
        workflow = Workflow()
        a = workflow.add_module(Module("Identity", name="a"))
        b = workflow.add_module(Module("Identity", name="b"))
        workflow.connect(a.id, "value", b.id, "value")
        workflow.connections["backedge"] = Connection(
            source_module=b.id, source_port="value",
            target_module=a.id, target_port="value", id="backedge")
        with pytest.raises(CycleError):
            workflow.topological_order()

    def test_upstream_downstream_closure(self):
        workflow = Workflow("diamond")
        a = workflow.add_module(Module("Constant", name="a"))
        b = workflow.add_module(Module("Identity", name="b"))
        c = workflow.add_module(Module("Identity", name="c"))
        d = workflow.add_module(Module("MakeList", name="d"))
        workflow.connect(a.id, "value", b.id, "value")
        workflow.connect(a.id, "value", c.id, "value")
        workflow.connect(b.id, "value", d.id, "a")
        workflow.connect(c.id, "value", d.id, "b")
        assert workflow.upstream_modules(d.id) == sorted([a.id, b.id, c.id])
        assert workflow.downstream_modules(a.id) == sorted(
            [b.id, c.id, d.id])

    def test_incoming_sorted_by_port(self):
        workflow = Workflow()
        a = workflow.add_module(Module("Constant", name="a"))
        d = workflow.add_module(Module("MakeList", name="d"))
        workflow.connect(a.id, "value", d.id, "b")
        workflow.connect(a.id, "value", d.id, "a")
        ports = [c.target_port for c in workflow.incoming(d.id)]
        assert ports == ["a", "b"]


class TestSignature:
    def test_copy_preserves_signature(self):
        workflow, _, _ = two_module_workflow()
        assert workflow.copy().signature() == workflow.signature()

    def test_signature_independent_of_ids(self):
        first, _, _ = two_module_workflow()
        second, _, _ = two_module_workflow()
        assert first.signature() == second.signature()

    def test_signature_changes_with_parameter(self):
        workflow, first, _ = two_module_workflow()
        before = workflow.signature()
        workflow.set_parameter(first.id, "value", 99)
        assert workflow.signature() != before

    def test_signature_changes_with_connection(self):
        workflow = Workflow()
        a = workflow.add_module(Module("Constant", name="a"))
        b = workflow.add_module(Module("Identity", name="b"))
        before = workflow.signature()
        workflow.connect(a.id, "value", b.id, "value")
        assert workflow.signature() != before

    def test_copy_is_independent(self):
        workflow, first, _ = two_module_workflow()
        duplicate = workflow.copy()
        duplicate.set_parameter(first.id, "value", 123)
        assert "value" not in workflow.modules[first.id].parameters
