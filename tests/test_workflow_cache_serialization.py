"""Tests for the result cache, workflow JSON serialization, and the
process-job spill-value wire format."""

import os

import pytest

from repro.workflow import (Module, SpecError, Workflow, dumps_workflow,
                            loads_workflow, workflow_from_dict,
                            workflow_to_dict)
from repro.workflow.cache import CacheEntry, ResultCache, module_cache_key
from repro.workflow.serialization import (SpilledValue, load_spilled,
                                          maybe_spill, resolve_spilled)
from tests.conftest import build_fig1_workflow


class TestCacheKey:
    def test_same_inputs_same_key(self):
        key_a = module_cache_key("M", "1.0", {"p": 1}, {"in": "h1"})
        key_b = module_cache_key("M", "1.0", {"p": 1}, {"in": "h1"})
        assert key_a == key_b

    def test_key_sensitive_to_every_component(self):
        base = module_cache_key("M", "1.0", {"p": 1}, {"in": "h1"})
        assert module_cache_key("N", "1.0", {"p": 1}, {"in": "h1"}) != base
        assert module_cache_key("M", "2.0", {"p": 1}, {"in": "h1"}) != base
        assert module_cache_key("M", "1.0", {"p": 2}, {"in": "h1"}) != base
        assert module_cache_key("M", "1.0", {"p": 1}, {"in": "h2"}) != base

    def test_parameter_order_irrelevant(self):
        key_a = module_cache_key("M", "1", {"a": 1, "b": 2}, {})
        key_b = module_cache_key("M", "1", {"b": 2, "a": 1}, {})
        assert key_a == key_b


class TestResultCache:
    def entry(self, tag="x"):
        return CacheEntry(outputs={"out": tag},
                          output_hashes={"out": f"hash-{tag}"},
                          source_execution=f"exec-{tag}")

    def test_put_get_roundtrip(self):
        cache = ResultCache()
        cache.put("k", self.entry())
        assert cache.get("k").outputs == {"out": "x"}

    def test_miss_returns_none_and_counts(self):
        cache = ResultCache()
        assert cache.get("absent") is None
        assert cache.stats.misses == 1

    def test_lru_eviction(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", self.entry("a"))
        cache.put("b", self.entry("b"))
        cache.get("a")             # refresh a; b is now LRU
        cache.put("c", self.entry("c"))
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1

    def test_invalidate(self):
        cache = ResultCache()
        cache.put("k", self.entry())
        assert cache.invalidate("k")
        assert not cache.invalidate("k")

    def test_clear_keeps_stats(self):
        cache = ResultCache()
        cache.put("k", self.entry())
        cache.get("k")
        cache.clear()
        assert len(cache) == 0
        assert cache.stats.hits == 1

    def test_unbounded_cache(self):
        cache = ResultCache(max_entries=None)
        for index in range(5000):
            cache.put(str(index), self.entry(str(index)))
        assert len(cache) == 5000

    def test_hit_rate_zero_when_untouched(self):
        assert ResultCache().stats.hit_rate == 0.0

    def test_byte_budget_evicts_lru(self):
        cache = ResultCache(max_entries=None, max_bytes=2000)
        for index in range(40):
            cache.put(f"k{index}", CacheEntry(
                outputs={"out": "x" * 200},
                output_hashes={"out": f"h{index}"}))
            assert cache.total_bytes() <= 2000
        assert cache.stats.evictions > 0
        assert f"k39" in cache and "k0" not in cache

    def test_invalidate_and_clear_count_invalidations(self):
        cache = ResultCache()
        cache.put("a", self.entry("a"))
        cache.put("b", self.entry("b"))
        assert cache.invalidate("a")
        assert cache.stats.invalidations == 1
        cache.clear()
        assert cache.stats.invalidations == 2
        assert cache.stats.evictions == 0


class TestSpilledValues:
    def test_small_values_stay_inline(self, tmp_path):
        assert maybe_spill(42, 1024, str(tmp_path)) == 42
        assert maybe_spill("tiny", 1024, str(tmp_path)) == "tiny"
        assert os.listdir(tmp_path) == []

    def test_large_value_spills_and_loads_back(self, tmp_path):
        value = {"blob": b"\x07" * 500_000, "label": "volume"}
        reference = maybe_spill(value, 1024, str(tmp_path))
        assert isinstance(reference, SpilledValue)
        assert os.path.getsize(reference.path) == reference.length
        assert load_spilled(reference) == value

    def test_resolve_spilled_mixed_mapping(self, tmp_path):
        big = list(range(50_000))
        mapping = {"small": 1, "big": maybe_spill(big, 64, str(tmp_path))}
        assert isinstance(mapping["big"], SpilledValue)
        assert resolve_spilled(mapping) == {"small": 1, "big": big}

    def test_disabled_spilling_is_identity(self, tmp_path):
        big = b"x" * 100_000
        assert maybe_spill(big, 0, str(tmp_path)) is big
        assert maybe_spill(big, 1024, "") is big

    def test_unpicklable_value_stays_inline(self, tmp_path):
        value = lambda: None  # noqa: E731
        assert maybe_spill(value, 1, str(tmp_path)) is value
        assert os.listdir(tmp_path) == []


class TestSerialization:
    def test_roundtrip_structure(self):
        workflow = build_fig1_workflow()
        restored = loads_workflow(dumps_workflow(workflow))
        assert restored.id == workflow.id
        assert restored.signature() == workflow.signature()
        assert set(restored.modules) == set(workflow.modules)
        assert set(restored.connections) == set(workflow.connections)

    def test_roundtrip_preserves_parameters(self):
        workflow = Workflow()
        module = workflow.add_module(Module(
            "Constant", parameters={"value": {"nested": [1, 2]}}))
        restored = loads_workflow(dumps_workflow(workflow))
        assert restored.modules[module.id].parameters == {
            "value": {"nested": [1, 2]}}

    def test_roundtrip_preserves_positions(self):
        workflow = Workflow()
        workflow.add_module(Module("Constant", position=(3.5, -1.0)))
        restored = loads_workflow(dumps_workflow(workflow))
        module = next(iter(restored.modules.values()))
        assert module.position == (3.5, -1.0)

    def test_bad_format_version_rejected(self):
        data = workflow_to_dict(Workflow())
        data["format_version"] = 999
        with pytest.raises(SpecError):
            workflow_from_dict(data)

    def test_dict_is_json_stable(self):
        workflow = build_fig1_workflow()
        assert workflow_to_dict(workflow) == workflow_to_dict(workflow)
