"""Crash-consistent ingest: SIGKILL recovery, fsck detection/repair,
and resumable streams that end byte-equivalent to uninterrupted ones.
"""

from __future__ import annotations

import json
import os
import signal
import sqlite3
import subprocess
import sys
import time

import pytest

from tests.conftest import build_fig1_workflow
from repro.cli import main
from repro.core.capture import ProvenanceCapture
from repro.core.retrospective import WorkflowRun
from repro.storage import (DocumentStore, INTERRUPTED_STATUS, MemoryStore,
                           RelationalStore, StoreError,
                           TripleProvenanceStore, fsck_cache, fsck_store,
                           resume_run)
from repro.workflow import CacheEntry, Executor, PersistentResultCache


def _cache_entry(value):
    return CacheEntry(outputs={"value": value},
                      output_hashes={"value": f"hash-{value}"},
                      source_execution="exec-src")


def _captured_fig1_run(registry):
    capture = ProvenanceCapture(registry=registry)
    workflow = build_fig1_workflow(size=6)
    Executor(registry, listeners=[capture]).execute(workflow)
    return capture.last_run(), workflow


def _store_fingerprint(store, run_id):
    """What an ingest left behind: executions, artifact hashes, lineage."""
    run = store.load_run(run_id)
    executions = [(e.module_id, e.status, e.attempt)
                  for e in sorted(run.executions,
                                  key=lambda e: (e.started, e.id))]
    artifacts = {a.id: a.value_hash for a in run.artifacts.values()}
    return executions, artifacts


def _final_hash(run):
    """Value hash of one terminal data product of the run."""
    final = run.final_artifacts()
    assert final
    return final[0].value_hash


def _sidecar_and_partial_db(registry, tmp_path, stem="crash"):
    """A sidecar export plus a relational db holding a partial ingest.

    Feeds every artifact and the first two executions, flushes once,
    then abandons the writer without finish/abort — the in-process
    stand-in for a coordinator that was SIGKILLed after its first
    committed batch.
    """
    run, _ = _captured_fig1_run(registry)
    sidecar = tmp_path / f"{stem}.json"
    sidecar.write_text(json.dumps(run.to_dict()))
    db = str(tmp_path / f"{stem}.db")
    store = RelationalStore(db)
    writer = store.save_run_stream(run)
    for artifact in run.artifacts.values():
        writer.add_artifact(artifact)
    for execution in run.executions[:2]:
        writer.add_execution(execution)
    writer.flush()
    # no finish(), no abort(): the journal row stays behind
    return run, str(sidecar), db, store


class TestSigkillMidStream:
    """A coordinator SIGKILLed mid-save_run_stream leaves a repairable,
    resumable store."""

    CHILD = "\n".join([
        "import sys, time",
        "sys.path.insert(0, 'src')",
        "sys.path.insert(0, 'tests')",
        "import json",
        "from conftest import build_fig1_workflow",
        "from repro.core.capture import ProvenanceCapture",
        "from repro.storage.relational import RelationalStore",
        "from repro.workflow.engine import Executor",
        "from repro.workflow.modules import standard_registry",
        "registry = standard_registry()",
        "capture = ProvenanceCapture(registry=registry)",
        "workflow = build_fig1_workflow(size=6)",
        "Executor(registry, listeners=[capture]).execute(workflow)",
        "run = capture.last_run()",
        "with open(sys.argv[2], 'w') as handle:",
        "    json.dump(run.to_dict(), handle)",
        "store = RelationalStore(sys.argv[1])",
        "writer = store.save_run_stream(run)",
        "for artifact in run.artifacts.values():",
        "    writer.add_artifact(artifact)",
        "for execution in run.executions[:2]:",
        "    writer.add_execution(execution)",
        "writer.flush()",
        "print('FLUSHED', flush=True)",
        "time.sleep(60)",
    ])

    @pytest.fixture()
    def killed_ingest(self, tmp_path):
        db = str(tmp_path / "killed.db")
        sidecar = str(tmp_path / "killed.json")
        child = subprocess.Popen(
            [sys.executable, "-c", self.CHILD, db, sidecar],
            cwd="/root/repo", stdout=subprocess.PIPE,
            stderr=subprocess.PIPE, text=True)
        try:
            marker = child.stdout.readline()
            assert marker.strip() == "FLUSHED", child.stderr.read()
            os.kill(child.pid, signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:  # pragma: no cover - cleanup
                child.kill()
                child.wait()
        with open(sidecar) as handle:
            run = WorkflowRun.from_dict(json.load(handle))
        return db, sidecar, run

    def test_fsck_detects_the_partial_run(self, killed_ingest):
        db, _, run = killed_ingest
        store = RelationalStore(db)
        try:
            issues = fsck_store(store)
            partial = [i for i in issues if i.kind == "partial-run"]
            assert [i.subject for i in partial] == [run.id]
            assert "stream epoch 1" in partial[0].detail
            assert "2 execution(s) committed" in partial[0].detail
        finally:
            store.close()

    def test_resume_completes_identically_to_uninterrupted(
            self, killed_ingest, tmp_path):
        db, _, run = killed_ingest
        crashed = RelationalStore(db)
        fresh = RelationalStore(str(tmp_path / "fresh.db"))
        try:
            resume_run(crashed, run)
            fresh.save_run(run)
            assert (_store_fingerprint(crashed, run.id)
                    == _store_fingerprint(fresh, run.id))
            key = _final_hash(run)
            assert (crashed.lineage_closure(key)
                    == fresh.lineage_closure(key))
            # the journal is gone and fsck is clean
            assert crashed.stream_states() == []
            assert fsck_store(crashed) == []
        finally:
            crashed.close()
            fresh.close()

    def test_cli_resume_round_trip(self, killed_ingest):
        db, sidecar, run = killed_ingest
        assert main(["fsck", db, "--resume", sidecar]) == 0
        store = RelationalStore(db)
        try:
            assert store.load_run(run.id).status == run.status
        finally:
            store.close()


class TestResumeRun:
    def test_relational_resume_skips_committed_executions(
            self, registry, tmp_path):
        run, _, db, store = _sidecar_and_partial_db(registry, tmp_path)
        writer = store.resume_run_stream(run.id)
        try:
            assert len(writer.already_ingested) == 2
            assert writer.already_ingested == {
                e.id for e in run.executions[:2]}
            assert writer.epoch == 2
        finally:
            writer.abort()
        store.close()

    def test_resume_equivalence_on_every_backend(self, registry,
                                                 tmp_path):
        run, _ = _captured_fig1_run(registry)
        key = _final_hash(run)

        def relational_crashed():
            store = RelationalStore(str(tmp_path / "rel.db"))
            writer = store.save_run_stream(run)
            for artifact in run.artifacts.values():
                writer.add_artifact(artifact)
            for execution in run.executions[:2]:
                writer.add_execution(execution)
            writer.flush()
            return store  # writer abandoned: simulated crash

        # buffering backends persist nothing mid-stream, so their crash
        # signature is simply "no run stored"
        backends = [
            (relational_crashed(), RelationalStore(str(tmp_path / "r2.db"))),
            (MemoryStore(), MemoryStore()),
            (TripleProvenanceStore(), TripleProvenanceStore()),
            (DocumentStore(tmp_path / "docs-crashed"),
             DocumentStore(tmp_path / "docs-fresh")),
        ]
        for crashed, fresh in backends:
            resume_run(crashed, run)
            fresh.save_run(run)
            assert (_store_fingerprint(crashed, run.id)
                    == _store_fingerprint(fresh, run.id)), type(crashed)
            assert (crashed.lineage_closure(key)
                    == fresh.lineage_closure(key)), type(crashed)

    def test_resume_into_empty_store_full_feeds(self, registry):
        run, _ = _captured_fig1_run(registry)
        store = MemoryStore()
        with pytest.raises(StoreError):
            store.resume_run_stream(run.id)
        resume_run(store, run)
        assert store.has_run(run.id)
        assert len(store.load_run(run.id).executions) == 5


class TestFsckStore:
    def test_partial_run_without_journal(self, registry):
        # a buffering backend can still hold a "running" run if the
        # caller saved one — fsck flags it with the journal-free detail
        run, _ = _captured_fig1_run(registry)
        run.status = "running"
        store = MemoryStore()
        store.save_run(run)
        issues = fsck_store(store)
        assert [i.kind for i in issues] == ["partial-run"]
        assert "no stream journal" in issues[0].detail

    def test_repair_marks_partial_runs_interrupted(self, registry,
                                                   tmp_path):
        run, _, db, store = _sidecar_and_partial_db(registry, tmp_path)
        issues = fsck_store(store, repair=True)
        assert [(i.kind, i.repaired) for i in issues] == [
            ("partial-run", True)]
        assert store.load_run(run.id).status == INTERRUPTED_STATUS
        # the repair cascaded the journal row away
        assert store.stream_states() == []
        assert fsck_store(store) == []
        store.close()

    def test_cli_exit_codes(self, registry, tmp_path):
        run, _, db, store = _sidecar_and_partial_db(registry, tmp_path)
        store.close()
        assert main(["fsck", db]) == 1          # found, unrepaired
        assert main(["fsck", db, "--repair"]) == 0
        assert main(["fsck", db]) == 0          # clean now
        verify = RelationalStore(db)
        assert verify.load_run(run.id).status == INTERRUPTED_STATUS
        verify.close()

    def test_stale_stream_journal(self, registry, tmp_path):
        run, _ = _captured_fig1_run(registry)
        db = str(tmp_path / "stale.db")
        store = RelationalStore(db)
        store.save_run(run)
        store._connection.execute(
            "INSERT INTO stream_state VALUES (?, 3, 5, 2, ?)",
            (run.id, time.time()))
        store._connection.commit()
        issues = fsck_store(store)
        assert [i.kind for i in issues] == ["stale-stream-journal"]
        assert "stream epoch 3" in issues[0].detail
        repaired = fsck_store(store, repair=True)
        assert repaired[0].repaired
        assert store.stream_states() == []
        store.close()

    def test_dangling_lineage_edge(self, registry, tmp_path):
        run, _ = _captured_fig1_run(registry)
        db = str(tmp_path / "dangling.db")
        store = RelationalStore(db)
        store.save_run(run)
        store._connection.execute(
            "INSERT INTO lineage VALUES (?, ?, ?, ?)",
            ("deadbeef" * 8, "cafebabe" * 8, run.id, "exec-gone"))
        store._connection.commit()
        issues = fsck_store(store)
        assert [i.kind for i in issues] == ["dangling-lineage"]
        assert issues[0].subject == "exec-gone"
        fsck_store(store, repair=True)
        assert fsck_store(store) == []
        store.close()


class TestFsckCache:
    def test_missing_file_is_reported_not_created(self, tmp_path):
        path = tmp_path / "nope.db"
        issues = fsck_cache(path)
        assert [i.kind for i in issues] == ["unreadable-cache"]
        assert not path.exists()  # fsck must not create the file

    def test_expired_lease_detect_and_repair(self, registry, tmp_path):
        path = str(tmp_path / "leases.db")
        cache = PersistentResultCache(path)
        cache.put("k1", _cache_entry(1))
        cache.close()
        connection = sqlite3.connect(path)
        connection.execute("INSERT INTO leases VALUES (?, ?, ?)",
                           ("k2", "dead-owner", time.time() - 120))
        connection.commit()
        connection.close()
        issues = fsck_cache(path)
        assert [i.kind for i in issues] == ["expired-lease"]
        assert "dead-owner" in issues[0].detail
        fsck_cache(path, repair=True)
        assert fsck_cache(path) == []

    def test_torn_payload_detect_and_repair(self, tmp_path):
        path = str(tmp_path / "torn.db")
        cache = PersistentResultCache(path)
        cache.put("good", _cache_entry(1))
        cache.close()
        connection = sqlite3.connect(path)
        connection.execute(
            "UPDATE entries SET payload = ? WHERE key = ?",
            (b"\x80\x04trunc", "good"))
        connection.commit()
        connection.close()
        issues = fsck_cache(path)
        assert [i.kind for i in issues] == ["torn-cache-entry"]
        fsck_cache(path, repair=True)
        assert fsck_cache(path) == []

    def test_cli_cache_only_invocation(self, tmp_path):
        path = str(tmp_path / "cli-cache.db")
        cache = PersistentResultCache(path)
        cache.put("k", _cache_entry(2))
        cache.close()
        assert main(["fsck", "--cache", path]) == 0


class TestStreamCrashSeam:
    def test_hard_crash_at_flush_leaves_journal(self, registry,
                                                tmp_path):
        # the crash_stream fault hard-crashes the capture coordinator at
        # the first flush; the stream writer's abort must NOT run, so the
        # committed prefix plus journal row survive for fsck to find
        from repro.core.capture import stream_run_to_store
        from repro.workflow import FaultPlan, HardCrash
        run, _ = _captured_fig1_run(registry)
        db = str(tmp_path / "crash-seam.db")
        store = RelationalStore(db)
        plan = FaultPlan().crash_stream(flush=1)
        with pytest.raises(HardCrash):
            stream_run_to_store(run, store, batch=2, fault_plan=plan)
        issues = fsck_store(store)
        assert [i.kind for i in issues] == ["partial-run"]
        assert "committed" in issues[0].detail
        resume_run(store, run)
        assert len(store.load_run(run.id).executions) == 5
        assert fsck_store(store) == []
        store.close()
