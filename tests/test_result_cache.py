"""Persistent result cache: durability, concurrency, corruption recovery.

The cache is an accelerator, never a source of truth — every failure mode
(corrupted file, truncated entry, unpicklable value, concurrent writers)
must degrade to clean misses, and the statistics contract must match the
in-memory :class:`ResultCache` operation for operation.
"""

import os
import subprocess
import sys
import threading

import pytest

from repro.workflow.cache import (CacheEntry, PersistentResultCache,
                                  ResultCache)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def entry(tag: str) -> CacheEntry:
    return CacheEntry(outputs={"out": tag},
                      output_hashes={"out": f"hash-{tag}"},
                      source_execution=f"exec-{tag}")


class TestPersistentBasics:
    def test_put_get_roundtrip(self, tmp_path):
        cache = PersistentResultCache(tmp_path / "c.db")
        cache.put("k", entry("x"))
        got = cache.get("k")
        assert got.outputs == {"out": "x"}
        assert got.output_hashes == {"out": "hash-x"}
        assert got.source_execution == "exec-x"
        assert "k" in cache and len(cache) == 1

    def test_miss_counts(self, tmp_path):
        cache = PersistentResultCache(tmp_path / "c.db")
        assert cache.get("absent") is None
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.0

    def test_invalidate_and_clear(self, tmp_path):
        cache = PersistentResultCache(tmp_path / "c.db")
        cache.put("k", entry("x"))
        assert cache.invalidate("k")
        assert not cache.invalidate("k")
        cache.put("a", entry("a"))
        cache.put("b", entry("b"))
        cache.clear()
        assert len(cache) == 0

    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "c.db"
        first = PersistentResultCache(path)
        first.put("k", entry("x"))
        first.close()
        second = PersistentResultCache(path)
        assert second.get("k").outputs == {"out": "x"}
        assert second.stats.hits == 1

    def test_unpicklable_value_is_skipped_not_fatal(self, tmp_path):
        cache = PersistentResultCache(tmp_path / "c.db")
        cache.put("bad", CacheEntry(outputs={"out": lambda: None},
                                    output_hashes={"out": "h"}))
        assert "bad" not in cache
        cache.put("good", entry("g"))
        assert cache.get("good") is not None

    def test_lru_eviction_by_recency(self, tmp_path):
        cache = PersistentResultCache(tmp_path / "c.db", max_entries=2)
        cache.put("a", entry("a"))
        cache.put("b", entry("b"))
        cache.get("a")             # refresh a; b is now LRU
        cache.put("c", entry("c"))
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1


class TestStatsParityWithInMemory:
    """The same operation sequence must produce identical statistics and
    the identical surviving key set on both cache implementations —
    including explicit-drop accounting (``invalidations`` from
    invalidate/clear, distinct from capacity ``evictions``)."""

    SEQUENCE = [
        ("put", "a"), ("put", "b"), ("get", "a"), ("get", "missing"),
        ("put", "c"), ("get", "b"), ("put", "d"), ("get", "c"),
        ("put", "a"), ("get", "d"), ("get", "a"), ("invalidate", "b"),
        ("get", "b"), ("put", "e"), ("put", "f"), ("get", "e"),
        ("invalidate", "missing"), ("clear", ""), ("put", "a"),
        ("get", "a"), ("put", "b"), ("invalidate", "a"),
    ]

    def _drive(self, cache):
        for op, key in self.SEQUENCE:
            if op == "put":
                cache.put(key, entry(key))
            elif op == "get":
                cache.get(key)
            elif op == "clear":
                cache.clear()
            else:
                cache.invalidate(key)
        return (cache.stats.hits, cache.stats.misses,
                cache.stats.evictions, cache.stats.invalidations,
                sorted(key for key in "abcdef" if key in cache))

    @pytest.mark.parametrize("cap", [None, 3, 2])
    def test_parity(self, tmp_path, cap):
        memory = self._drive(ResultCache(max_entries=cap))
        persistent = self._drive(PersistentResultCache(
            tmp_path / f"cap-{cap}.db", max_entries=cap))
        assert persistent == memory

    @pytest.mark.parametrize("byte_cap", [None, 90, 160])
    def test_parity_under_byte_budget(self, tmp_path, byte_cap):
        memory = self._drive(ResultCache(max_entries=None,
                                         max_bytes=byte_cap))
        persistent = self._drive(PersistentResultCache(
            tmp_path / f"bytes-{byte_cap}.db", max_entries=None,
            max_bytes=byte_cap))
        assert persistent == memory
        if byte_cap is not None:
            assert memory[2] > 0  # the budget actually evicted something

    def test_byte_totals_agree_across_stores(self, tmp_path):
        memory = ResultCache(max_entries=None, max_bytes=10_000)
        persistent = PersistentResultCache(tmp_path / "totals.db",
                                           max_entries=None,
                                           max_bytes=10_000)
        for index in range(8):
            for cache in (memory, persistent):
                cache.put(f"k{index}", entry(f"tag-{index:04d}"))
        assert memory.total_bytes() == persistent.total_bytes() > 0


class TestByteBudget:
    """max_bytes evicts by stored payload size in LRU order."""

    def big_entry(self, tag: str, payload_chars: int) -> CacheEntry:
        return CacheEntry(outputs={"out": tag * payload_chars},
                          output_hashes={"out": f"hash-{tag}"},
                          source_execution=f"exec-{tag}")

    @pytest.mark.parametrize("make", [
        lambda tmp_path, **kw: ResultCache(max_entries=None, **kw),
        lambda tmp_path, **kw: PersistentResultCache(
            tmp_path / "b.db", max_entries=None, **kw),
    ], ids=["memory", "persistent"])
    def test_total_never_exceeds_budget(self, tmp_path, make):
        budget = 4096
        cache = make(tmp_path, max_bytes=budget)
        for index in range(40):
            cache.put(f"k{index}", self.big_entry(chr(97 + index % 26),
                                                  400))
            assert cache.total_bytes() <= budget
        assert cache.stats.evictions > 0
        assert len(cache) < 40

    @pytest.mark.parametrize("make", [
        lambda tmp_path, **kw: ResultCache(max_entries=None, **kw),
        lambda tmp_path, **kw: PersistentResultCache(
            tmp_path / "b.db", max_entries=None, **kw),
    ], ids=["memory", "persistent"])
    def test_eviction_follows_recency(self, tmp_path, make):
        cache = make(tmp_path, max_bytes=3000)
        cache.put("a", self.big_entry("a", 1000))
        cache.put("b", self.big_entry("b", 1000))
        cache.get("a")                       # refresh a; b is now LRU
        cache.put("c", self.big_entry("c", 1000))
        assert "a" in cache and "c" in cache
        assert "b" not in cache

    @pytest.mark.parametrize("make", [
        lambda tmp_path, **kw: ResultCache(max_entries=None, **kw),
        lambda tmp_path, **kw: PersistentResultCache(
            tmp_path / "b.db", max_entries=None, **kw),
    ], ids=["memory", "persistent"])
    def test_oversize_entry_never_stored(self, tmp_path, make):
        cache = make(tmp_path, max_bytes=512)
        cache.put("small", entry("s"))
        cache.put("huge", self.big_entry("h", 4096))
        assert "huge" not in cache
        assert "small" in cache              # and nothing was evicted
        assert cache.stats.evictions == 0

    def test_entry_and_byte_budgets_compose(self, tmp_path):
        cache = PersistentResultCache(tmp_path / "both.db",
                                      max_entries=3, max_bytes=100_000)
        for index in range(6):
            cache.put(f"k{index}", entry(str(index)))
        assert len(cache) == 3
        assert cache.stats.evictions == 3

    def test_persistent_default_budget_is_finite(self, tmp_path):
        from repro.workflow.cache import DEFAULT_MAX_ENTRIES
        cache = PersistentResultCache(tmp_path / "d.db")
        assert cache.max_entries == DEFAULT_MAX_ENTRIES
        assert ResultCache().max_entries == DEFAULT_MAX_ENTRIES

    def test_file_size_tracks_budget_under_churn(self, tmp_path):
        """auto_vacuum returns evicted pages: the file cannot grow
        without bound while the payload budget is respected."""
        path = tmp_path / "churn.db"
        budget = 64 * 1024
        cache = PersistentResultCache(path, max_entries=None,
                                      max_bytes=budget)
        for index in range(120):
            cache.put(f"k{index}", self.big_entry("x", 8 * 1024))
            assert cache.total_bytes() <= budget
        cache.close()                        # checkpoints the WAL
        size = path.stat().st_size
        assert size <= budget + 8 * 1024 + 64 * 1024, size


class TestComputeLeases:
    """Per-key compute leases: the cross-run exactly-once substrate."""

    @pytest.mark.parametrize("make", [
        lambda tmp_path: ResultCache(),
        lambda tmp_path: PersistentResultCache(tmp_path / "l.db"),
    ], ids=["memory", "persistent"])
    def test_second_owner_is_refused(self, tmp_path, make):
        cache = make(tmp_path)
        assert cache.supports_leases
        assert cache.acquire_lease("k", "alice")
        assert not cache.acquire_lease("k", "bob")
        cache.release_lease("k", "alice")
        assert cache.acquire_lease("k", "bob")

    @pytest.mark.parametrize("make", [
        lambda tmp_path: ResultCache(),
        lambda tmp_path: PersistentResultCache(tmp_path / "l.db"),
    ], ids=["memory", "persistent"])
    def test_reacquire_refreshes_own_lease(self, tmp_path, make):
        cache = make(tmp_path)
        assert cache.acquire_lease("k", "alice")
        assert cache.acquire_lease("k", "alice")

    @pytest.mark.parametrize("make", [
        lambda tmp_path: ResultCache(),
        lambda tmp_path: PersistentResultCache(tmp_path / "l.db"),
    ], ids=["memory", "persistent"])
    def test_expired_lease_is_stolen(self, tmp_path, make):
        cache = make(tmp_path)
        assert cache.acquire_lease("k", "alice", ttl=0.0)
        assert cache.acquire_lease("k", "bob")

    @pytest.mark.parametrize("make", [
        lambda tmp_path: ResultCache(),
        lambda tmp_path: PersistentResultCache(tmp_path / "l.db"),
    ], ids=["memory", "persistent"])
    def test_release_by_non_owner_is_ignored(self, tmp_path, make):
        cache = make(tmp_path)
        assert cache.acquire_lease("k", "alice")
        cache.release_lease("k", "bob")
        assert not cache.acquire_lease("k", "carol")

    @pytest.mark.parametrize("make", [
        lambda tmp_path: ResultCache(),
        lambda tmp_path: PersistentResultCache(tmp_path / "l.db"),
    ], ids=["memory", "persistent"])
    def test_wait_sees_published_entry_as_hit(self, tmp_path, make):
        cache = make(tmp_path)
        assert cache.acquire_lease("k", "alice")

        def publish():
            cache.put("k", entry("x"))
            cache.release_lease("k", "alice")

        timer = threading.Timer(0.05, publish)
        timer.start()
        try:
            got = cache.wait_for_entry("k", timeout=5.0)
        finally:
            timer.join()
        assert got is not None and got.outputs == {"out": "x"}
        assert cache.stats.hits == 1

    @pytest.mark.parametrize("make", [
        lambda tmp_path: ResultCache(),
        lambda tmp_path: PersistentResultCache(tmp_path / "l.db"),
    ], ids=["memory", "persistent"])
    def test_wait_returns_none_when_lease_dies_empty(self, tmp_path,
                                                     make):
        cache = make(tmp_path)
        assert cache.acquire_lease("k", "alice")
        timer = threading.Timer(
            0.05, lambda: cache.release_lease("k", "alice"))
        timer.start()
        try:
            assert cache.wait_for_entry("k", timeout=5.0) is None
        finally:
            timer.join()

    def test_leases_coordinate_across_instances(self, tmp_path):
        path = tmp_path / "shared.db"
        first = PersistentResultCache(path)
        second = PersistentResultCache(path)
        assert first.acquire_lease("k", "run-1")
        assert not second.acquire_lease("k", "run-2")
        first.put("k", entry("x"))
        first.release_lease("k", "run-1")
        got = second.wait_for_entry("k", timeout=5.0)
        assert got is not None and got.source_execution == "exec-x"


class TestCorruptionRecovery:
    def test_garbage_file_degrades_to_empty_cache(self, tmp_path):
        path = tmp_path / "c.db"
        path.write_bytes(b"this is not a sqlite database at all")
        cache = PersistentResultCache(path)
        assert cache.get("k") is None          # clean miss, no crash
        assert cache.stats.misses == 1
        cache.put("k", entry("x"))             # and the file self-heals
        assert cache.get("k").outputs == {"out": "x"}

    def test_truncated_database_is_a_clean_miss(self, tmp_path):
        path = tmp_path / "c.db"
        writer = PersistentResultCache(path)
        for index in range(50):
            writer.put(f"k{index}", entry(str(index)))
        writer.close()
        size = path.stat().st_size
        with open(path, "r+b") as handle:     # chop the file mid-entry
            handle.truncate(size // 2)
        reopened = PersistentResultCache(path)
        for index in range(50):
            assert reopened.get(f"k{index}") is None
        assert reopened.stats.misses == 50
        reopened.put("fresh", entry("f"))
        assert reopened.get("fresh") is not None

    def test_partial_payload_bytes_are_a_miss(self, tmp_path):
        import sqlite3
        path = tmp_path / "c.db"
        cache = PersistentResultCache(path)
        cache.put("k", entry("x"))
        # overwrite the pickled payload with a torn prefix, as an
        # interrupted writer on a non-transactional filesystem would
        connection = sqlite3.connect(str(path))
        connection.execute("UPDATE entries SET payload = ?",
                           (b"\x80\x05only-half",))
        connection.commit()
        connection.close()
        assert cache.get("k") is None
        assert cache.stats.misses == 1
        assert "k" not in cache               # the torn entry is dropped


class TestConcurrentWriters:
    def test_threads_hammering_one_instance(self, tmp_path):
        cache = PersistentResultCache(tmp_path / "c.db", max_entries=64)
        errors = []

        def hammer(worker: int):
            try:
                for index in range(120):
                    key = f"k{(worker * 31 + index) % 96}"
                    cache.put(key, entry(key))
                    cache.get(key)
                    cache.get(f"k{index % 96}")
                    len(cache)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(worker,))
                   for worker in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64
        assert cache.stats.lookups == cache.stats.hits + cache.stats.misses

    def test_two_instances_share_one_file(self, tmp_path):
        path = tmp_path / "c.db"
        first = PersistentResultCache(path)
        second = PersistentResultCache(path)
        errors = []

        def hammer(cache, offset):
            try:
                for index in range(80):
                    cache.put(f"k{(index + offset) % 50}",
                              entry(str(index)))
                    cache.get(f"k{index % 50}")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(cache, offset))
                   for cache, offset in ((first, 0), (second, 25))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(first) == len(second) == 50


class TestFreshProcessReuse:
    """The acceptance scenario: a run in one OS process, a rerun in
    another, zero recomputation in between."""

    CHILD_SCRIPT = """
import sys
from repro.core import ProvenanceManager
from tests.conftest import build_fig1_workflow

manager = ProvenanceManager(cache_path=sys.argv[1])
run = manager.run(build_fig1_workflow(size=8))
assert run.status == "ok"
print(len(manager.last_engine_result.executed_modules()))
"""

    def test_second_process_executes_zero_modules(self, tmp_path):
        path = str(tmp_path / "cross.db")
        env = dict(os.environ)
        env["PYTHONPATH"] = (os.path.join(REPO_ROOT, "src")
                             + os.pathsep + REPO_ROOT
                             + os.pathsep + env.get("PYTHONPATH", ""))
        # first process: cold cache, every module computes
        first = subprocess.run(
            [sys.executable, "-c", self.CHILD_SCRIPT, path],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT)
        assert first.returncode == 0, first.stderr
        assert first.stdout.strip() == "5"
        # second process: warm persistent cache, zero modules compute
        second = subprocess.run(
            [sys.executable, "-c", self.CHILD_SCRIPT, path],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT)
        assert second.returncode == 0, second.stderr
        assert second.stdout.strip() == "0"
