"""Persistent result cache: durability, concurrency, corruption recovery.

The cache is an accelerator, never a source of truth — every failure mode
(corrupted file, truncated entry, unpicklable value, concurrent writers)
must degrade to clean misses, and the statistics contract must match the
in-memory :class:`ResultCache` operation for operation.
"""

import os
import subprocess
import sys
import threading

import pytest

from repro.workflow.cache import (CacheEntry, PersistentResultCache,
                                  ResultCache)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def entry(tag: str) -> CacheEntry:
    return CacheEntry(outputs={"out": tag},
                      output_hashes={"out": f"hash-{tag}"},
                      source_execution=f"exec-{tag}")


class TestPersistentBasics:
    def test_put_get_roundtrip(self, tmp_path):
        cache = PersistentResultCache(tmp_path / "c.db")
        cache.put("k", entry("x"))
        got = cache.get("k")
        assert got.outputs == {"out": "x"}
        assert got.output_hashes == {"out": "hash-x"}
        assert got.source_execution == "exec-x"
        assert "k" in cache and len(cache) == 1

    def test_miss_counts(self, tmp_path):
        cache = PersistentResultCache(tmp_path / "c.db")
        assert cache.get("absent") is None
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.0

    def test_invalidate_and_clear(self, tmp_path):
        cache = PersistentResultCache(tmp_path / "c.db")
        cache.put("k", entry("x"))
        assert cache.invalidate("k")
        assert not cache.invalidate("k")
        cache.put("a", entry("a"))
        cache.put("b", entry("b"))
        cache.clear()
        assert len(cache) == 0

    def test_survives_reopen(self, tmp_path):
        path = tmp_path / "c.db"
        first = PersistentResultCache(path)
        first.put("k", entry("x"))
        first.close()
        second = PersistentResultCache(path)
        assert second.get("k").outputs == {"out": "x"}
        assert second.stats.hits == 1

    def test_unpicklable_value_is_skipped_not_fatal(self, tmp_path):
        cache = PersistentResultCache(tmp_path / "c.db")
        cache.put("bad", CacheEntry(outputs={"out": lambda: None},
                                    output_hashes={"out": "h"}))
        assert "bad" not in cache
        cache.put("good", entry("g"))
        assert cache.get("good") is not None

    def test_lru_eviction_by_recency(self, tmp_path):
        cache = PersistentResultCache(tmp_path / "c.db", max_entries=2)
        cache.put("a", entry("a"))
        cache.put("b", entry("b"))
        cache.get("a")             # refresh a; b is now LRU
        cache.put("c", entry("c"))
        assert "a" in cache and "c" in cache
        assert "b" not in cache
        assert cache.stats.evictions == 1


class TestStatsParityWithInMemory:
    """The same operation sequence must produce identical statistics and
    the identical surviving key set on both cache implementations."""

    SEQUENCE = [
        ("put", "a"), ("put", "b"), ("get", "a"), ("get", "missing"),
        ("put", "c"), ("get", "b"), ("put", "d"), ("get", "c"),
        ("put", "a"), ("get", "d"), ("get", "a"), ("invalidate", "b"),
        ("get", "b"), ("put", "e"), ("put", "f"), ("get", "e"),
    ]

    def _drive(self, cache):
        for op, key in self.SEQUENCE:
            if op == "put":
                cache.put(key, entry(key))
            elif op == "get":
                cache.get(key)
            else:
                cache.invalidate(key)
        return (cache.stats.hits, cache.stats.misses,
                cache.stats.evictions,
                sorted(key for key in "abcdef" if key in cache))

    @pytest.mark.parametrize("cap", [None, 3, 2])
    def test_parity(self, tmp_path, cap):
        memory = self._drive(ResultCache(max_entries=cap))
        persistent = self._drive(PersistentResultCache(
            tmp_path / f"cap-{cap}.db", max_entries=cap))
        assert persistent == memory


class TestCorruptionRecovery:
    def test_garbage_file_degrades_to_empty_cache(self, tmp_path):
        path = tmp_path / "c.db"
        path.write_bytes(b"this is not a sqlite database at all")
        cache = PersistentResultCache(path)
        assert cache.get("k") is None          # clean miss, no crash
        assert cache.stats.misses == 1
        cache.put("k", entry("x"))             # and the file self-heals
        assert cache.get("k").outputs == {"out": "x"}

    def test_truncated_database_is_a_clean_miss(self, tmp_path):
        path = tmp_path / "c.db"
        writer = PersistentResultCache(path)
        for index in range(50):
            writer.put(f"k{index}", entry(str(index)))
        writer.close()
        size = path.stat().st_size
        with open(path, "r+b") as handle:     # chop the file mid-entry
            handle.truncate(size // 2)
        reopened = PersistentResultCache(path)
        for index in range(50):
            assert reopened.get(f"k{index}") is None
        assert reopened.stats.misses == 50
        reopened.put("fresh", entry("f"))
        assert reopened.get("fresh") is not None

    def test_partial_payload_bytes_are_a_miss(self, tmp_path):
        import sqlite3
        path = tmp_path / "c.db"
        cache = PersistentResultCache(path)
        cache.put("k", entry("x"))
        # overwrite the pickled payload with a torn prefix, as an
        # interrupted writer on a non-transactional filesystem would
        connection = sqlite3.connect(str(path))
        connection.execute("UPDATE entries SET payload = ?",
                           (b"\x80\x05only-half",))
        connection.commit()
        connection.close()
        assert cache.get("k") is None
        assert cache.stats.misses == 1
        assert "k" not in cache               # the torn entry is dropped


class TestConcurrentWriters:
    def test_threads_hammering_one_instance(self, tmp_path):
        cache = PersistentResultCache(tmp_path / "c.db", max_entries=64)
        errors = []

        def hammer(worker: int):
            try:
                for index in range(120):
                    key = f"k{(worker * 31 + index) % 96}"
                    cache.put(key, entry(key))
                    cache.get(key)
                    cache.get(f"k{index % 96}")
                    len(cache)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(worker,))
                   for worker in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64
        assert cache.stats.lookups == cache.stats.hits + cache.stats.misses

    def test_two_instances_share_one_file(self, tmp_path):
        path = tmp_path / "c.db"
        first = PersistentResultCache(path)
        second = PersistentResultCache(path)
        errors = []

        def hammer(cache, offset):
            try:
                for index in range(80):
                    cache.put(f"k{(index + offset) % 50}",
                              entry(str(index)))
                    cache.get(f"k{index % 50}")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(cache, offset))
                   for cache, offset in ((first, 0), (second, 25))]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(first) == len(second) == 50


class TestFreshProcessReuse:
    """The acceptance scenario: a run in one OS process, a rerun in
    another, zero recomputation in between."""

    CHILD_SCRIPT = """
import sys
from repro.core import ProvenanceManager
from tests.conftest import build_fig1_workflow

manager = ProvenanceManager(cache_path=sys.argv[1])
run = manager.run(build_fig1_workflow(size=8))
assert run.status == "ok"
print(len(manager.last_engine_result.executed_modules()))
"""

    def test_second_process_executes_zero_modules(self, tmp_path):
        path = str(tmp_path / "cross.db")
        env = dict(os.environ)
        env["PYTHONPATH"] = (os.path.join(REPO_ROOT, "src")
                             + os.pathsep + REPO_ROOT
                             + os.pathsep + env.get("PYTHONPATH", ""))
        # first process: cold cache, every module computes
        first = subprocess.run(
            [sys.executable, "-c", self.CHILD_SCRIPT, path],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT)
        assert first.returncode == 0, first.stderr
        assert first.stdout.strip() == "5"
        # second process: warm persistent cache, zero modules compute
        second = subprocess.run(
            [sys.executable, "-c", self.CHILD_SCRIPT, path],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT)
        assert second.returncode == 0, second.stderr
        assert second.stdout.strip() == "0"
