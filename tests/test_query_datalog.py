"""Tests for the Datalog engine: parsing, safety, stratification, fixpoint."""

import pytest

from repro.query.datalog import (Atom, Comparison, Database, DatalogError,
                                 Program, Rule, Var, parse_atom,
                                 parse_program, query)


def family_db():
    db = Database()
    db.add("parent", "ann", "bob")
    db.add("parent", "bob", "cal")
    db.add("parent", "cal", "dee")
    db.add("parent", "ann", "eve")
    return db


ANCESTOR_RULES = """
ancestor(X, Y) :- parent(X, Y).
ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).
"""


class TestParsing:
    def test_parse_rules(self):
        program = parse_program(ANCESTOR_RULES)
        assert len(program.rules) == 2
        assert program.rules[0].head.predicate == "ancestor"

    def test_parse_fact(self):
        program = parse_program("parent('ann', 'bob').")
        assert program.rules[0].body == ()
        assert program.rules[0].head.args == ("ann", "bob")

    def test_parse_numbers_and_bools(self):
        atom = parse_atom("p(1, 2.5, true, false, X)")
        assert atom.args == (1, 2.5, True, False, Var("X"))

    def test_parse_negation(self):
        program = parse_program(
            "only(X) :- node(X), not bad(X).")
        negated = [l for l in program.rules[0].body
                   if getattr(l, "negated", False)]
        assert len(negated) == 1

    def test_parse_comparison(self):
        program = parse_program("big(X) :- size(X, N), N > 10.")
        body = program.rules[0].body
        assert isinstance(body[1], Comparison)
        assert body[1].op == ">"

    def test_anonymous_variables_distinct(self):
        program = parse_program("p(X) :- q(X, _), r(X, _).")
        body_vars = set()
        for literal in program.rules[0].body:
            body_vars |= literal.variables()
        anonymous = [v for v in body_vars if v.name.startswith("_G")]
        assert len(anonymous) == 2

    def test_tokenizer_error(self):
        with pytest.raises(DatalogError):
            parse_program("p(X) :- q(X) & r(X).")

    def test_trailing_input_rejected(self):
        with pytest.raises(DatalogError):
            parse_atom("p(X) q")


class TestSafety:
    def test_unsafe_head_variable(self):
        with pytest.raises(DatalogError):
            Rule(head=Atom("p", (Var("X"), Var("Y"))),
                 body=(Atom("q", (Var("X"),)),)).check_safety()

    def test_unsafe_negated_variable(self):
        with pytest.raises(DatalogError):
            parse_program("p(X) :- q(X), not r(Y).")

    def test_unsafe_comparison_variable(self):
        with pytest.raises(DatalogError):
            parse_program("p(X) :- q(X), Y > 3.")

    def test_safe_rule_passes(self):
        parse_program("p(X) :- q(X), not r(X), X != 'bad'.")


class TestEvaluation:
    def test_transitive_closure(self):
        program = parse_program(ANCESTOR_RULES)
        result = program.evaluate(family_db())
        assert ("ann", "dee") in result.rows("ancestor")
        # ann->{bob,cal,dee,eve}, bob->{cal,dee}, cal->{dee}
        assert len(result.rows("ancestor")) == 7

    def test_query_bindings(self):
        program = parse_program(ANCESTOR_RULES)
        result = program.evaluate(family_db())
        bindings = query(result, parse_atom("ancestor(X, 'dee')"))
        ancestors = {b[Var("X")] for b in bindings}
        assert ancestors == {"ann", "bob", "cal"}

    def test_negation(self):
        db = family_db()
        for person in ("ann", "bob", "cal", "dee", "eve"):
            db.add("person", person)
        program = parse_program(
            "has_child(X) :- parent(X, _).\n"
            "leaf(X) :- person(X), not has_child(X).")
        result = program.evaluate(db)
        assert result.rows("leaf") == {("dee",), ("eve",)}

    def test_comparison_filters(self):
        db = Database()
        db.add("size", "a", 5)
        db.add("size", "b", 15)
        program = parse_program("big(X) :- size(X, N), N > 10.")
        result = program.evaluate(db)
        assert result.rows("big") == {("b",)}

    def test_stratification_rejects_negation_cycle(self):
        program = parse_program(
            "p(X) :- q(X), not r(X).\n"
            "r(X) :- q(X), not p(X).")
        with pytest.raises(DatalogError):
            program.evaluate(Database())

    def test_multiple_strata(self):
        db = family_db()
        for person in ("ann", "bob", "cal", "dee", "eve"):
            db.add("person", person)
        program = parse_program(
            ANCESTOR_RULES +
            "root(X) :- person(X), not descendant(X).\n"
            "descendant(X) :- ancestor(_, X).")
        result = program.evaluate(db)
        assert result.rows("root") == {("ann",)}

    def test_edb_unchanged(self):
        db = family_db()
        program = parse_program(ANCESTOR_RULES)
        program.evaluate(db)
        assert len(db.rows("ancestor")) == 0  # input db not mutated

    def test_long_chain_performance_shape(self):
        db = Database()
        for index in range(200):
            db.add("edge", index, index + 1)
        program = parse_program(
            "path(X, Y) :- edge(X, Y).\n"
            "path(X, Y) :- edge(X, Z), path(Z, Y).")
        result = program.evaluate(db)
        assert ("0", "200") not in result.rows("path")  # ints, not strs
        assert (0, 200) in result.rows("path")
        assert len(result.rows("path")) == 201 * 200 // 2


class TestDatabase:
    def test_add_deduplicates(self):
        db = Database()
        assert db.add("p", 1)
        assert not db.add("p", 1)
        assert len(db) == 1

    def test_merge(self):
        first, second = Database(), Database()
        first.add("p", 1)
        second.add("p", 2)
        second.add("q", 3)
        merged = first.merge(second)
        assert len(merged) == 3
        assert merged.predicates() == ["p", "q"]
