"""Seeded-defect catalog for the static-analysis subsystem.

Every diagnostic code in the ``repro.analysis`` catalog gets one fixture
that *plants exactly that defect* and asserts the rule fires — workflow
rules (E101–E109, W001–W008), stored-provenance rules (E121–E125,
W021–W023) and conformance rules (E130–E133).  The complement is the
zero-false-positive half: ``repro lint`` must report nothing on every
built-in example workflow and on freshly built stores across all four
backends, the sharded store, and a live ``ProvenanceClient``.

The legacy ``check_workflow`` API is asserted to be a strict view over
the same catalog (same findings, historical issue codes).
"""

from __future__ import annotations

import json

import pytest

from repro.analysis import (LintConfig, all_rules, check_conformance,
                            lint_run_record, lint_store, lint_workflow,
                            render_json, render_text, rule_for)
from repro.cli import main
from repro.core import ProvenanceCapture
from repro.core.prospective import ProspectiveProvenance
from repro.core.retrospective import DataArtifact, ModuleExecution, PortBinding
from repro.service import (ProvenanceClient, ProvenanceService,
                           ShardedProvenanceStore)
from repro.storage import (DocumentStore, MemoryStore, RelationalStore,
                           TripleProvenanceStore)
from repro.storage.lineage import DERIVED_FROM_RUN
from repro.workflow import Executor, Module, Workflow
from repro.workflow.faults import RetryPolicy
from repro.workflow.registry import (ModuleDefinition, ModuleRegistry,
                                     ParameterSpec, PortSpec)
from repro.workflow.serialization import dump_workflow
from repro.workflow.validation import check_workflow
from repro.workloads import clone_run
from tests.conftest import build_fig1_workflow, module_by_name

BACKENDS = ["memory", "relational", "triples", "documents"]

#: The complete catalog this suite seeds defects for.  A new rule must be
#: registered here *and* get a seeded-defect test below, or this fails.
EXPECTED_CODES = {
    # workflow: legacy validation tier
    "E101", "E102", "E103", "E104", "E105", "E106", "E107", "E108",
    "E109", "W001",
    # workflow: extended static analysis
    "W002", "W003", "W004", "W005", "W006", "W007", "W008",
    # stored provenance
    "E121", "E122", "E123", "E124", "E125", "W021", "W022", "W023",
    # conformance
    "E130", "E131", "E132", "E133",
}


def codes(diagnostics):
    """The multiset of codes as a sorted list (order-insensitive compare)."""
    return sorted(d.code for d in diagnostics)


def captured_fig1_run(registry, **execute_kwargs):
    """One clean Figure-1 run, captured without retained values."""
    capture = ProvenanceCapture(registry=registry, keep_values=False)
    executor = Executor(registry, listeners=[capture])
    executor.execute(build_fig1_workflow(size=6, level=80.0),
                     **execute_kwargs)
    return capture.last_run()


def typed_registry():
    """A tiny registry with a typed, default-less parameter (for E103/W004)."""
    registry = ModuleRegistry()
    registry.register(ModuleDefinition(
        type_name="TypedSource",
        compute=lambda ctx: {"value": ctx.param("count")},
        output_ports=(PortSpec("value", "Number"),),
        parameters=(ParameterSpec("count", default=None, kind="int"),)))
    return registry


def make_backend(name, root):
    root.mkdir(parents=True, exist_ok=True)
    return {
        "memory": lambda: MemoryStore(),
        "relational": lambda: RelationalStore(str(root / "prov.db")),
        "triples": lambda: TripleProvenanceStore(),
        "documents": lambda: DocumentStore(root / "docs"),
    }[name]()


# ----------------------------------------------------------------------
# the catalog itself
# ----------------------------------------------------------------------
class TestCatalog:
    def test_catalog_is_exactly_the_expected_set(self):
        assert {r.code for r in all_rules()} == EXPECTED_CODES

    def test_families_partition_the_catalog(self):
        families = {r.family for r in all_rules()}
        assert families == {"workflow", "store", "conformance"}
        assert {r.code for r in all_rules("workflow")} \
            == {c for c in EXPECTED_CODES if c[1] in "01"
                and c not in ("E121", "E122", "E123", "E124", "E125",
                              "W021", "W022", "W023")} \
            - {"E130", "E131", "E132", "E133"}

    def test_severity_follows_the_code_prefix(self):
        for rule in all_rules():
            expected = "error" if rule.code.startswith("E") else "warning"
            assert rule.severity == expected, rule

    def test_rule_names_are_unique(self):
        names = [r.name for r in all_rules()]
        assert len(names) == len(set(names))

    def test_rule_for_unknown_code_raises(self):
        with pytest.raises(KeyError):
            rule_for("E999")


class TestLintConfig:
    def test_empty_config_enables_everything(self):
        config = LintConfig()
        assert config.enabled("E101") and config.enabled("W023")

    def test_select_narrows_and_ignore_wins_on_longer_prefix(self):
        config = LintConfig.from_codes(select="E", ignore="E12")
        assert config.enabled("E101")
        assert not config.enabled("E121")
        assert not config.enabled("W002")

    def test_specific_select_overrides_broad_ignore(self):
        config = LintConfig.from_codes(select="E124", ignore="E")
        assert config.enabled("E124")
        assert not config.enabled("E123")

    def test_apply_filters_diagnostics(self, registry):
        workflow = Workflow("broken")
        workflow.add_module(Module("NoSuchType"))
        everything = lint_workflow(workflow, registry)
        nothing = lint_workflow(workflow, registry,
                                config=LintConfig.from_codes(ignore="E101"))
        assert codes(everything) == ["E101"] and nothing == []


# ----------------------------------------------------------------------
# workflow rules: one seeded defect per code
# ----------------------------------------------------------------------
class TestWorkflowDefects:
    def test_e101_unknown_module_type(self, registry):
        workflow = Workflow("wf")
        workflow.add_module(Module("Frobnicate"))
        assert codes(lint_workflow(workflow, registry)) == ["E101"]

    def test_e102_unknown_parameter(self, registry):
        workflow = Workflow("wf")
        workflow.add_module(Module("Constant",
                                   parameters={"vlaue": 3}))
        assert codes(lint_workflow(workflow, registry)) == ["E102"]

    def test_e103_bad_parameter_value(self):
        registry = typed_registry()
        workflow = Workflow("wf")
        workflow.add_module(Module("TypedSource",
                                   parameters={"count": "three"}))
        assert codes(lint_workflow(workflow, registry)) == ["E103"]

    def test_e104_dangling_connection(self, registry):
        workflow = Workflow("wf")
        source = workflow.add_module(Module("Constant"))
        target = workflow.add_module(Module("Identity"))
        workflow.connect(source.id, "value", target.id, "value")
        # bypass the mutator guards: delete the module out from under
        # the connection, the referential defect validation must catch
        del workflow.modules[target.id]
        assert codes(lint_workflow(workflow, registry)) == ["E104"]

    def test_e105_unknown_output_port(self, registry):
        workflow = Workflow("wf")
        source = workflow.add_module(Module("Constant"))
        target = workflow.add_module(Module("Identity"))
        workflow.connect(source.id, "valeu", target.id, "value")
        assert codes(lint_workflow(workflow, registry)) == ["E105"]

    def test_e106_unknown_input_port(self, registry):
        workflow = Workflow("wf")
        source = workflow.add_module(Module("Constant"))
        target = workflow.add_module(Module("Identity"))
        workflow.connect(source.id, "value", target.id, "valeu")
        assert codes(lint_workflow(workflow, registry)) == ["E106"]

    def test_e107_type_mismatch(self, registry):
        workflow = Workflow("wf")
        source = workflow.add_module(Module("StringConstant"))
        target = workflow.add_module(Module("Scale"))
        workflow.connect(source.id, "value", target.id, "value")
        assert codes(lint_workflow(workflow, registry)) == ["E107"]

    def test_e108_unbound_mandatory_input(self, registry):
        workflow = Workflow("wf")
        workflow.add_module(Module("Scale"))
        assert codes(lint_workflow(workflow, registry)) == ["E108"]

    def test_e109_cycle(self, registry):
        workflow = Workflow("wf")
        first = workflow.add_module(Module("Identity", name="a"))
        second = workflow.add_module(Module("Identity", name="b"))
        workflow.connect(first.id, "value", second.id, "value")
        workflow.connect(second.id, "value", first.id, "value")
        assert codes(lint_workflow(workflow, registry)) == ["E109"]

    def test_w001_implicit_downcast(self, registry):
        workflow = Workflow("wf")
        source = workflow.add_module(Module("Constant",
                                            parameters={"value": 2.0}))
        target = workflow.add_module(Module("Scale"))
        workflow.connect(source.id, "value", target.id, "value")
        assert codes(lint_workflow(workflow, registry)) == ["W001"]

    def test_w002_disconnected_module(self, registry):
        workflow = Workflow("wf")
        source = workflow.add_module(Module("Constant",
                                            parameters={"value": 1}))
        target = workflow.add_module(Module("Identity"))
        workflow.connect(source.id, "value", target.id, "value")
        dead = workflow.add_module(Module("Identity", name="dead"))
        found = lint_workflow(workflow, registry)
        assert codes(found) == ["W002"]
        assert found[0].subject == dead.id

    def test_w002_not_fired_for_single_module_workflow(self, registry):
        workflow = Workflow("wf")
        workflow.add_module(Module("Constant", parameters={"value": 1}))
        assert lint_workflow(workflow, registry) == []

    def test_w003_duplicate_producer(self, registry):
        workflow = build_fig1_workflow()
        load = module_by_name(workflow, "load")
        twin = workflow.add_module(Module("LoadVolume", name="load-twin",
                                          parameters=dict(load.parameters)))
        hist2 = workflow.add_module(Module("ComputeHistogram", name="h2"))
        workflow.connect(twin.id, "volume", hist2.id, "volume")
        found = lint_workflow(workflow, registry)
        # the twin cone duplicates both the loader and the histogram
        assert codes(found) == ["W003", "W003"]

    def test_w003_different_parameters_are_not_duplicates(self, registry):
        workflow = Workflow("wf")
        workflow.add_module(Module("NumberConstant", name="a",
                                   parameters={"value": 1.0}))
        workflow.add_module(Module("NumberConstant", name="b",
                                   parameters={"value": 2.0}))
        assert lint_workflow(workflow, registry) == []

    def test_w004_unbound_typed_parameter(self):
        registry = typed_registry()
        workflow = Workflow("wf")
        workflow.add_module(Module("TypedSource"))
        assert codes(lint_workflow(workflow, registry)) == ["W004"]

    def test_w004_override_silences_it(self):
        registry = typed_registry()
        workflow = Workflow("wf")
        workflow.add_module(Module("TypedSource", parameters={"count": 3}))
        assert lint_workflow(workflow, registry) == []

    def test_w005_interface_drift(self, registry):
        workflow = build_fig1_workflow()
        snapshot = ProspectiveProvenance.from_workflow(workflow, registry)
        drifted = ModuleRegistry()
        for type_name in registry.type_names():
            definition = registry.get(type_name)
            if type_name == "LoadVolume":
                import dataclasses
                definition = dataclasses.replace(definition, version="9.9")
            drifted.register(definition)
        found = lint_workflow(workflow, drifted, prospective=snapshot)
        assert codes(found) == ["W005"]
        assert "version" in found[0].message

    def test_w005_missing_snapshotted_type(self, registry):
        workflow = Workflow("wf")
        workflow.add_module(Module("Constant", parameters={"value": 1}))
        snapshot = ProspectiveProvenance.from_workflow(workflow, registry)
        empty = ModuleRegistry()
        found = lint_workflow(workflow, empty, prospective=snapshot)
        assert codes(found) == ["E101", "W005"]

    def test_w005_clean_when_registry_matches_snapshot(self, registry):
        workflow = build_fig1_workflow()
        snapshot = ProspectiveProvenance.from_workflow(workflow, registry)
        assert lint_workflow(workflow, registry,
                             prospective=snapshot) == []

    def test_w006_nondeterministic_producer_feeds_cached_cone(
            self, registry):
        workflow = Workflow("wf")
        noise = workflow.add_module(Module("RandomNumber"))
        scale = workflow.add_module(Module("Scale"))
        workflow.connect(noise.id, "value", scale.id, "value")
        found = lint_workflow(workflow, registry)
        assert codes(found) == ["W006"]
        assert found[0].subject == noise.id

    def test_w006_not_fired_for_sink_only_nondeterminism(self, registry):
        workflow = Workflow("wf")
        source = workflow.add_module(Module("NumberConstant", name="src",
                                            parameters={"value": 1.0}))
        sink = workflow.add_module(Module("Identity"))
        workflow.connect(source.id, "value", sink.id, "value")
        noise = workflow.add_module(Module("RandomNumber"))
        del noise  # disconnected nondeterministic module: W002, not W006
        assert codes(lint_workflow(workflow, registry)) == ["W002"]

    def test_w007_cooperative_timeout_on_thread_backend(self, registry):
        workflow = Workflow("wf")
        workflow.add_module(Module("Constant", parameters={"value": 1}))
        retry = RetryPolicy(max_attempts=2, timeout=5.0)
        found = lint_workflow(workflow, registry, retry=retry,
                              backend="thread")
        assert codes(found) == ["W007"]
        assert lint_workflow(workflow, registry, retry=retry,
                             backend="process") == []

    def test_w008_timeout_without_retry_budget(self, registry):
        workflow = Workflow("wf")
        workflow.add_module(Module("Constant", parameters={"value": 1}))
        retry = RetryPolicy(max_attempts=1, timeout=5.0)
        found = lint_workflow(workflow, registry, retry=retry,
                              backend="process")
        assert codes(found) == ["W008"]

    def test_retry_rules_silent_without_timeout(self, registry):
        workflow = Workflow("wf")
        workflow.add_module(Module("Constant", parameters={"value": 1}))
        assert lint_workflow(workflow, registry,
                             retry=RetryPolicy(max_attempts=3),
                             backend="thread") == []


class TestLegacyValidationView:
    """check_workflow stays a strict-mode view over the one catalog."""

    def test_same_findings_under_historical_codes(self, registry):
        workflow = Workflow("wf")
        workflow.add_module(Module("Frobnicate"))
        source = workflow.add_module(Module("Constant"))
        target = workflow.add_module(Module("Scale"))
        workflow.connect(source.id, "value", target.id, "value")
        issues = check_workflow(workflow, registry)
        assert sorted(i.code for i in issues) \
            == ["implicit-downcast", "unknown-module-type"]
        diagnostics = lint_workflow(workflow, registry,
                                    config=LintConfig.from_codes(
                                        select="E10,W001"))
        assert sorted(d.rule for d in diagnostics) \
            == sorted(i.code for i in issues)
        assert sorted(d.message for d in diagnostics) \
            == sorted(i.message for i in issues)

    def test_extended_rules_stay_out_of_validation(self, registry):
        workflow = Workflow("wf")
        source = workflow.add_module(Module("Constant",
                                            parameters={"value": 1}))
        target = workflow.add_module(Module("Identity"))
        workflow.connect(source.id, "value", target.id, "value")
        workflow.add_module(Module("Identity", name="dead"))
        assert check_workflow(workflow, registry) == []
        assert codes(lint_workflow(workflow, registry)) == ["W002"]


# ----------------------------------------------------------------------
# store rules: one seeded defect per code
# ----------------------------------------------------------------------
class TestStoreDefects:
    def test_e121_dangling_lineage_edge(self, registry, tmp_path):
        store = RelationalStore(str(tmp_path / "prov.db"))
        run = captured_fig1_run(registry)
        store.save_run(run)
        store._connection.execute(
            "INSERT INTO lineage VALUES (?, ?, ?, ?)",
            ("deadbeef" * 8, "cafebabe" * 8, run.id, "exec-gone"))
        store._connection.commit()
        found = lint_store(store)
        assert codes(found) == ["E121"]
        assert found[0].subject == "exec-gone"
        store.close()

    def test_e122_missing_producer(self, registry):
        run = captured_fig1_run(registry)
        artifact_id = next(iter(run.artifacts))
        run.artifacts[artifact_id].created_by = "exec-vanished"
        found = lint_run_record(run)
        assert "E122" in codes(found)
        assert any(d.subject == artifact_id for d in found
                   if d.code == "E122")

    def test_e123_binding_to_missing_artifact(self, registry):
        run = captured_fig1_run(registry)
        run.executions[0].inputs.append(
            PortBinding(port="ghost", artifact_id="art-gone"))
        found = lint_run_record(run)
        assert codes(found) == ["E123"]

    def test_e124_attempt_gap(self, registry):
        run = captured_fig1_run(registry)
        final = run.executions[0]
        # a lone attempt=2 record: attempt 1 was lost in ingest
        run.executions.append(ModuleExecution(
            id="exec-retry", module_id=final.module_id,
            module_type=final.module_type, module_name=final.module_name,
            status="failed", inputs=list(final.inputs), attempt=2))
        found = lint_run_record(run)
        assert codes(found) == ["E124"]
        assert found[0].subject == final.module_id

    def test_contiguous_attempts_are_clean(self, registry):
        run = captured_fig1_run(registry)
        final = run.executions[0]
        run.executions.append(ModuleExecution(
            id="exec-retry", module_id=final.module_id,
            module_type=final.module_type, module_name=final.module_name,
            status="failed", inputs=list(final.inputs), attempt=1))
        assert lint_run_record(run) == []

    def test_e125_missing_parent_run(self, registry):
        store = MemoryStore()
        run = captured_fig1_run(registry)
        run.tags[DERIVED_FROM_RUN] = "run-that-never-was"
        store.save_run(run)
        found = lint_store(store)
        assert codes(found) == ["E125"]

    def test_e125_clean_when_parent_present(self, registry):
        store = MemoryStore()
        parent = captured_fig1_run(registry)
        child = clone_run(parent, "child")
        child.tags[DERIVED_FROM_RUN] = parent.id
        store.save_run(parent)
        store.save_run(child)
        assert lint_store(store) == []

    def test_w021_orphan_artifact(self, registry):
        run = captured_fig1_run(registry)
        producer = run.executions[0]
        run.artifacts["art-orphan"] = DataArtifact(
            id="art-orphan", value_hash="ab" * 32,
            created_by=producer.id, role="debris")
        found = lint_run_record(run)
        assert codes(found) == ["W021"]
        assert found[0].subject == "art-orphan"

    def test_w022_partial_run(self, registry):
        store = MemoryStore()
        run = captured_fig1_run(registry)
        run.status = "running"
        store.save_run(run)
        found = lint_store(store)
        assert codes(found) == ["W022"]
        assert found[0].subject == run.id

    def test_w023_stale_stream_journal(self, registry, tmp_path):
        store = RelationalStore(str(tmp_path / "prov.db"))
        run = captured_fig1_run(registry)
        store.save_run(run)
        import time
        store._connection.execute(
            "INSERT INTO stream_state VALUES (?, 3, 5, 2, ?)",
            (run.id, time.time()))
        store._connection.commit()
        found = lint_store(store)
        assert codes(found) == ["W023"]
        store.close()

    def test_running_runs_skip_record_level_rules(self, registry):
        """A mid-stream run legitimately holds half its executions."""
        store = MemoryStore()
        run = captured_fig1_run(registry)
        run.status = "running"
        run.executions[0].inputs.append(
            PortBinding(port="ghost", artifact_id="art-gone"))
        store.save_run(run)
        assert codes(lint_store(store)) == ["W022"]  # no E123


# ----------------------------------------------------------------------
# conformance rules: tampered runs vs. untampered reloads
# ----------------------------------------------------------------------
class TestConformanceDefects:
    @pytest.fixture()
    def fig1(self, registry):
        workflow = build_fig1_workflow()
        capture = ProvenanceCapture(registry=registry, keep_values=False)
        Executor(registry, listeners=[capture]).execute(workflow)
        return workflow, capture.last_run()

    def test_untampered_run_conforms(self, registry, fig1):
        workflow, run = fig1
        assert check_conformance(run, workflow=workflow,
                                 registry=registry) == []

    def test_untampered_reload_conforms_via_recorded_spec(
            self, registry, fig1, tmp_path):
        _, run = fig1
        store = RelationalStore(str(tmp_path / "prov.db"))
        store.save_run(run)
        reloaded = store.load_run(run.id)
        assert check_conformance(reloaded, registry=registry) == []
        store.close()

    def test_observed_run_without_spec_conforms_vacuously(self, registry,
                                                          fig1):
        _, run = fig1
        run.workflow_spec = {}
        assert check_conformance(run, registry=registry) == []

    def test_e130_signature_mismatch(self, registry, fig1):
        workflow, run = fig1
        run.workflow_signature = "0" * 64
        found = check_conformance(run, workflow=workflow,
                                  registry=registry)
        assert codes(found) == ["E130"]

    def test_e131_rogue_execution(self, registry, fig1):
        workflow, run = fig1
        ghost = run.executions[0]
        run.executions.append(ModuleExecution(
            id="exec-rogue", module_id="mod-injected",
            module_type=ghost.module_type, module_name="injected",
            status="ok"))
        found = check_conformance(run, workflow=workflow,
                                  registry=registry)
        # the injected module also counts as an extra module the spec
        # does not contain; status stays ok so E133 must not fire
        assert codes(found) == ["E131"]

    def test_e132_rebound_port(self, registry, fig1):
        workflow, run = fig1
        hist = module_by_name(workflow, "hist")
        execution = run.execution_for_module(hist.id)
        other = run.execution_for_module(
            module_by_name(workflow, "iso").id)
        rebound = [PortBinding(port=b.port,
                               artifact_id=other.outputs[0].artifact_id)
                   if b.port == "volume" else b for b in execution.inputs]
        execution.inputs = rebound
        found = check_conformance(run, workflow=workflow,
                                  registry=registry)
        assert codes(found) == ["E132"]
        assert "rewritten after capture" in found[0].hint

    def test_e132_undeclared_port(self, registry, fig1):
        workflow, run = fig1
        execution = run.executions[0]
        execution.outputs.append(PortBinding(
            port="sidechannel",
            artifact_id=execution.outputs[0].artifact_id))
        found = check_conformance(run, workflow=workflow,
                                  registry=registry)
        assert codes(found) == ["E132"]
        assert "undeclared" in found[0].message

    def test_e133_silent_skip(self, registry, fig1):
        workflow, run = fig1
        dropped = module_by_name(workflow, "render_mesh")
        run.executions = [e for e in run.executions
                          if e.module_id != dropped.id]
        found = check_conformance(run, workflow=workflow,
                                  registry=registry)
        assert codes(found) == ["E133", "W021"] or codes(found) == ["E133"]
        assert any(d.code == "E133" and d.subject == dropped.id
                   for d in found)

    def test_e133_not_fired_for_failed_run(self, registry, fig1):
        workflow, run = fig1
        run.status = "failed"
        run.executions = run.executions[:2]
        found = check_conformance(run, workflow=workflow)
        assert "E133" not in codes(found)


# ----------------------------------------------------------------------
# zero false positives: examples and clean stores
# ----------------------------------------------------------------------
class TestZeroFalsePositives:
    def test_every_example_workflow_is_clean(self, registry):
        from repro.cli import _example_workflows
        for name, workflow in _example_workflows().items():
            found = lint_workflow(workflow, registry)
            assert found == [], (name, [d.render() for d in found])

    def test_cli_lint_examples_exits_clean(self, capsys):
        assert main(["lint", "--examples"]) == 0
        assert "clean" in capsys.readouterr().out

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_fresh_backend_store_is_clean(self, backend, registry,
                                          tmp_path):
        store = make_backend(backend, tmp_path / backend)
        base = captured_fig1_run(registry)
        store.save_runs([base, clone_run(base, "c1"),
                         clone_run(base, "c2", status="failed")])
        assert lint_store(store) == []
        if hasattr(store, "close"):
            store.close()

    def test_fresh_sharded_store_is_clean(self, registry, tmp_path):
        store = ShardedProvenanceStore.open(tmp_path / "prov", shards=3)
        base = captured_fig1_run(registry)
        store.save_runs([base, clone_run(base, "c1"),
                         clone_run(base, "c2")])
        assert lint_store(store) == []
        store.close()

    def test_store_via_client_is_clean_and_lintable(self, registry,
                                                    tmp_path):
        sharded = ShardedProvenanceStore.open(tmp_path / "prov", shards=3)
        server = ProvenanceService(sharded, close_store=True).start()
        try:
            client = ProvenanceClient(server.host, server.port)
            base = captured_fig1_run(registry)
            client.save_runs([base, clone_run(base, "c1")])
            assert lint_store(client) == []
            client.close()
        finally:
            server.close()

    def test_seeded_defect_is_visible_over_the_wire(self, registry,
                                                    tmp_path):
        """The read-only walk reports remote defects, not just local."""
        sharded = ShardedProvenanceStore.open(tmp_path / "prov", shards=2)
        run = captured_fig1_run(registry)
        run.tags[DERIVED_FROM_RUN] = "run-that-never-was"
        sharded.save_run(run)
        server = ProvenanceService(sharded, close_store=True).start()
        try:
            client = ProvenanceClient(server.host, server.port)
            assert codes(lint_store(client)) == ["E125"]
            client.close()
        finally:
            server.close()


# ----------------------------------------------------------------------
# reporters and the CLI surface
# ----------------------------------------------------------------------
class TestReportersAndCli:
    def test_render_text_clean_and_dirty(self, registry):
        assert render_text([]) == "clean: no findings"
        workflow = Workflow("wf")
        workflow.add_module(Module("Frobnicate"))
        report = render_text(lint_workflow(workflow, registry))
        assert "E101" in report and "1 error(s)" in report

    def test_render_json_schema(self, registry):
        workflow = Workflow("wf")
        workflow.add_module(Module("Frobnicate"))
        payload = json.loads(render_json(lint_workflow(workflow, registry)))
        assert payload["summary"] == {"findings": 1, "errors": 1,
                                      "warnings": 0}
        row = payload["diagnostics"][0]
        assert row["code"] == "E101" and row["rule"] == "unknown-module-type"
        assert set(row) == {"code", "rule", "severity", "message",
                            "subject", "location", "hint"}

    def test_cli_findings_exit_one_and_json_artifact(self, registry,
                                                     tmp_path, capsys):
        workflow = Workflow("broken")
        workflow.add_module(Module("Frobnicate"))
        spec = tmp_path / "broken.json"
        with open(spec, "w") as handle:
            dump_workflow(workflow, handle)
        artifact = tmp_path / "diag.json"
        assert main(["lint", "--workflow", str(spec), "--format", "json",
                     "--output", str(artifact)]) == 1
        printed = json.loads(capsys.readouterr().out)
        assert printed["summary"]["errors"] == 1
        saved = json.loads(artifact.read_text())
        assert saved["diagnostics"][0]["code"] == "E101"
        assert "workflow" in saved["diagnostics"][0]["location"]

    def test_cli_select_ignore_flip_the_exit_code(self, registry,
                                                  tmp_path, capsys):
        workflow = Workflow("warny")
        source = workflow.add_module(Module("Constant",
                                            parameters={"value": 1}))
        target = workflow.add_module(Module("Identity"))
        workflow.connect(source.id, "value", target.id, "value")
        workflow.add_module(Module("Identity", name="dead"))
        spec = tmp_path / "warny.json"
        with open(spec, "w") as handle:
            dump_workflow(workflow, handle)
        assert main(["lint", "--workflow", str(spec)]) == 1
        capsys.readouterr()
        assert main(["lint", "--workflow", str(spec),
                     "--ignore", "W002"]) == 0
        capsys.readouterr()
        assert main(["lint", "--workflow", str(spec),
                     "--select", "E"]) == 0

    def test_cli_load_error_exits_two(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(["lint", "--workflow", missing]) == 2
        assert "cannot load workflow" in capsys.readouterr().err

    def test_cli_run_requires_store(self, capsys):
        assert main(["lint", "--run", "some-run"]) == 2
        assert "--run requires" in capsys.readouterr().err

    def test_cli_store_lint_and_conformance(self, registry, tmp_path,
                                            capsys):
        db = str(tmp_path / "prov.db")
        store = RelationalStore(db)
        run = captured_fig1_run(registry)
        store.save_run(run)
        store.close()
        assert main(["lint", "--store", db, "--run", run.id]) == 0
        capsys.readouterr()
        # tamper: inject a rogue execution, re-save, expect findings
        store = RelationalStore(db)
        tampered = store.load_run(run.id)
        ghost = tampered.executions[0]
        tampered.executions.append(ModuleExecution(
            id="exec-rogue", module_id="mod-injected",
            module_type=ghost.module_type, module_name="injected",
            status="ok", inputs=list(ghost.inputs)))
        store.delete_run(run.id)
        store.save_run(tampered)
        store.close()
        assert main(["lint", "--store", db, "--run", run.id]) == 1
        out = capsys.readouterr().out
        assert "E131" in out

    def test_cli_missing_run_exits_two(self, registry, tmp_path, capsys):
        db = str(tmp_path / "prov.db")
        store = RelationalStore(db)
        store.save_run(captured_fig1_run(registry))
        store.close()
        assert main(["lint", "--store", db, "--run", "run-missing"]) == 2
        assert "cannot load run" in capsys.readouterr().err

    def test_cli_lint_over_the_wire(self, registry, tmp_path, capsys):
        sharded = ShardedProvenanceStore.open(tmp_path / "prov", shards=2)
        sharded.save_run(captured_fig1_run(registry))
        server = ProvenanceService(sharded, close_store=True).start()
        try:
            address = f"{server.host}:{server.port}"
            assert main(["lint", "--server", address]) == 0
            assert "clean" in capsys.readouterr().out
        finally:
            server.close()
