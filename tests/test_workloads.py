"""Tests for workload generators and the First Provenance Challenge."""

import pytest

from repro.core import ProvenanceManager
from repro.workloads import (CHALLENGE_QUERIES, ChallengeSession,
                             build_enviro_workflow, build_fig2_pair,
                             build_fmri_workflow, build_genomics_workflow,
                             build_vis_workflow, chain_workflow,
                             domain_corpus, random_edit_session,
                             random_workflow, synthetic_corpus)
from repro.workflow import check_workflow, validate_workflow


class TestGenerators:
    def test_chain_shape(self, registry):
        workflow = chain_workflow(5)
        assert len(workflow.modules) == 6
        assert len(workflow.connections) == 5
        validate_workflow(workflow, registry)

    def test_random_workflow_deterministic(self):
        first = random_workflow(modules=15, seed=9)
        second = random_workflow(modules=15, seed=9)
        assert first.signature() == second.signature()

    def test_random_workflow_validates_and_runs(self, registry):
        from repro.workflow import Executor
        for seed in range(5):
            workflow = random_workflow(modules=12, seed=seed, work=5)
            validate_workflow(workflow, registry)
            run = Executor(registry).execute(workflow)
            assert run.status == "ok"

    def test_random_workflow_size(self):
        workflow = random_workflow(modules=30, width=5, seed=1)
        assert len(workflow.modules) == 30

    def test_edit_session_always_materializable(self):
        for seed in range(4):
            vistrail = random_edit_session(actions=25, seed=seed)
            for leaf in vistrail.leaves():
                vistrail.materialize(leaf)

    def test_synthetic_corpus(self):
        manager, runs = synthetic_corpus(runs=4, modules=8)
        assert len(runs) == 4
        assert all(run.status == "ok" for run in runs)
        assert len(manager.store.list_runs()) == 4


class TestDomainWorkflows:
    @pytest.mark.parametrize("builder", [
        build_vis_workflow, build_genomics_workflow,
        build_enviro_workflow])
    def test_domain_workflows_validate_and_run(self, registry, builder):
        from repro.workflow import Executor
        workflow = builder()
        assert check_workflow(workflow, registry) == [] or all(
            not issue.is_error()
            for issue in check_workflow(workflow, registry))
        run = Executor(registry).execute(workflow)
        assert run.status == "ok", [
            r.error for r in run.results.values() if r.error]

    def test_fig2_pair_differs_by_smoothing(self):
        before, after = build_fig2_pair()
        types_before = {m.type_name for m in before.modules.values()}
        types_after = {m.type_name for m in after.modules.values()}
        assert types_after - types_before == {"SmoothMesh"}

    def test_domain_corpus_variants(self):
        corpus = domain_corpus(variants=2)
        assert len(corpus) == 10
        names = {workflow.name for workflow in corpus.values()}
        assert "genomics-consensus-v1" in names


class TestChallengeWorkflow:
    def test_structure(self):
        workflow = build_fmri_workflow()
        type_counts = {}
        for module in workflow.modules.values():
            type_counts[module.type_name] = \
                type_counts.get(module.type_name, 0) + 1
        assert type_counts == {
            "LoadAnatomyImage": 4, "LoadReferenceImage": 1,
            "AlignWarp": 4, "Reslice": 4, "Softmean": 1,
            "Slicer": 3, "Convert": 3}

    def test_runs_green(self, registry):
        from repro.workflow import Executor
        run = Executor(registry).execute(build_fmri_workflow(size=10))
        assert run.status == "ok"


class TestChallengeQueries:
    @pytest.fixture(scope="class")
    def session(self):
        return ChallengeSession.create(size=10)

    def test_all_queries_documented(self):
        assert set(CHALLENGE_QUERIES) == {f"q{i}" for i in range(1, 10)}

    def test_q1_full_history(self, session):
        result = session.q1()
        # 1 reference + 4x(anatomy, align, reslice) + softmean + slicer_x
        # + convert_x = 16 executions upstream of atlas-x graphic
        assert len(result["executions"]) == 16
        assert len(result["artifacts"]) >= 20

    def test_q2_cut_at_softmean(self, session):
        result = session.q2()
        names = {session.run.execution(execution_id).module_name
                 for execution_id in result["executions"]}
        assert names == {"softmean", "slicer_x", "convert_x"}

    def test_q3_stage_details(self, session):
        rows = session.q3()
        assert [row["type"] for row in rows].count("Softmean") == 1
        assert all(row["type"] in ("Softmean", "Slicer", "Convert")
                   for row in rows)

    def test_q4_align_warp_model12(self, session):
        rows = session.q4()
        assert len(rows) == 4
        assert all(row["param.model"] == 12 for row in rows)

    def test_q5_global_maximum(self, session):
        graphics = session.q5(threshold=95.0)
        assert len(graphics) == 3
        assert session.q5(threshold=1e9) == []

    def test_q6_softmean_after_model12(self, session):
        atlases = session.q6()
        assert len(atlases) == 1

    def test_q7_run_differences(self, session):
        diff = session.q7()
        assert diff["spec_identical"]
        assert len(diff["parameter_differences"]) == 4  # anatomy loaders
        assert diff["differing_outputs"]  # different seeds → new data

    def test_q8_annotation_propagation(self, session):
        outputs = session.q8()
        # anatomy1 and anatomy2 are annotated; their align_warp outputs
        assert len(outputs) == 2

    def test_q9_modality_annotations(self, session):
        results = session.q9()
        values = {value for _, value in results}
        assert values == {"speech", "visual"}

    def test_all_queries_runnable(self, session):
        results = session.all_queries()
        assert set(results) == set(CHALLENGE_QUERIES)
