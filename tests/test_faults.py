"""Fault-tolerant execution: retry policies, fault injection, recovery.

The fault matrix here is the tentpole contract: for every injected
failure mode (module exception x N, worker kill, timeout, torn cache
write, stolen lease) across serial/thread/process backends, the engine
recovers with exactly-once artifact computation, attempt-tagged
provenance, and artifacts/lineage identical to a fault-free run.
"""

from __future__ import annotations

import subprocess
import sys
import threading
import time

import pytest

from tests.conftest import (build_chain_workflow, build_fig1_workflow,
                            module_by_name)
from repro.core.capture import ProvenanceCapture
from repro.storage import MemoryStore, RelationalStore, fsck_cache
from repro.workflow import (Executor, FaultInjected, FaultPlan, FaultSpec,
                            Module, ModuleContext, PersistentResultCache,
                            ResultCache, RetryPolicy, Workflow,
                            resolve_retry)

BACKENDS = [("serial", {}),
            ("thread", {"workers": 2}),
            ("process", {"workers": 2, "backend": "process"})]


def _engine_fingerprint(result):
    """Timing- and id-independent digest of an engine run."""
    statuses = {m: r.status for m, r in result.results.items()}
    hashes = {(m, port): record.value_hash
              for m, r in result.results.items()
              for port, record in r.outputs.items()}
    return statuses, hashes


def _final_provenance_fingerprint(run):
    """Id-independent digest of a captured run, attempts excluded."""
    executions = sorted(
        (e.module_id, e.status,
         tuple(sorted((b.port, run.artifacts[b.artifact_id].value_hash)
                      for b in e.outputs)))
        for e in run.executions if not e.attempt)
    artifact_hashes = sorted(a.value_hash for a in run.artifacts.values())
    return executions, artifact_hashes


class TestRetryPolicy:
    def test_defaults_mean_single_attempt(self):
        policy = RetryPolicy()
        assert policy.max_attempts == 1
        assert policy.timeout is None
        assert policy.delay("m", 1) == 0.0

    def test_exponential_backoff_with_cap(self):
        policy = RetryPolicy(max_attempts=5, backoff=1.0,
                             backoff_factor=2.0, backoff_max=3.0)
        assert policy.delay("m", 1) == 1.0
        assert policy.delay("m", 2) == 2.0
        assert policy.delay("m", 3) == 3.0  # capped
        assert policy.delay("m", 4) == 3.0

    def test_jitter_is_deterministic_and_bounded(self):
        policy = RetryPolicy(max_attempts=2, backoff=1.0, jitter=0.5)
        first = policy.delay("module-a", 1)
        assert first == policy.delay("module-a", 1)
        assert 1.0 <= first < 1.5
        # different module or attempt draws a different (but stable) value
        assert first != policy.delay("module-b", 1)
        assert first != policy.delay("module-a", 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=-1)
        with pytest.raises(ValueError):
            RetryPolicy(timeout=0)

    def test_resolve_retry(self):
        everywhere = RetryPolicy(max_attempts=3)
        special = RetryPolicy(max_attempts=5)
        assert resolve_retry(None, "X").max_attempts == 1
        assert resolve_retry(everywhere, "X") is everywhere
        mapping = {"Special": special, "*": everywhere}
        assert resolve_retry(mapping, "Special") is special
        assert resolve_retry(mapping, "Other") is everywhere
        assert resolve_retry({"Special": special}, "Other").max_attempts == 1


class TestFaultPlan:
    def test_draw_counts_occurrences_per_site_and_key(self):
        plan = FaultPlan().fail_module("m1", attempts=2)
        assert plan.draw("module", "m1") is None      # occurrence 1
        spec = plan.draw("module", "m1")              # occurrence 2
        assert spec is not None and spec.kind == "fail"
        assert plan.draw("module", "m1") is None      # occurrence 3
        assert plan.fired == [("module", "m1", 2, "fail")]

    def test_wildcard_shares_concrete_counters(self):
        plan = FaultPlan().add(FaultSpec("cache-put", "*", (2,), "tear"))
        assert plan.draw("cache-put", "k1") is None
        assert plan.draw("cache-put", "k2") is None
        assert plan.draw("cache-put", "k1") is not None  # k1's 2nd visit
        assert plan.draw("cache-put", "k2") is not None  # k2's 2nd visit

    def test_sites_are_independent(self):
        plan = FaultPlan().fail_module("x")
        assert plan.draw("drainer", "x") is None
        assert plan.draw("module", "x") is not None

    def test_fired_at_filters_by_site(self):
        plan = (FaultPlan().fail_module("m")
                .crash_drainer("r"))
        plan.draw("module", "m")
        plan.draw("drainer", "r")
        assert len(plan.fired_at("module")) == 1
        assert len(plan.fired_at("drainer")) == 1


class TestModuleContextDeadline:
    def test_no_deadline_is_unlimited(self):
        ctx = ModuleContext({}, {}, module_name="m")
        assert ctx.remaining_time() is None
        ctx.check_deadline()  # no-op

    def test_expired_deadline_raises(self):
        ctx = ModuleContext({}, {}, module_name="slow",
                            deadline=time.monotonic() - 1)
        assert ctx.remaining_time() < 0
        with pytest.raises(TimeoutError, match="ModuleTimeout.*slow"):
            ctx.check_deadline()


class TestFaultMatrix:
    """Injected failures recover identically on every backend."""

    @pytest.mark.parametrize("label,kwargs", BACKENDS)
    def test_module_exception_retry_recovers(self, registry, label,
                                             kwargs):
        workflow = build_fig1_workflow(size=6)
        hist = module_by_name(workflow, "hist")
        clean = Executor(registry, **kwargs).execute(workflow)
        plan = FaultPlan().fail_module(hist.id)
        result = Executor(registry, retry=RetryPolicy(max_attempts=2),
                          fault_plan=plan, **kwargs).execute(workflow)
        assert result.status == "ok"
        assert _engine_fingerprint(result) == _engine_fingerprint(clean)
        failures = result.results[hist.id].attempts
        assert [f.attempt for f in failures] == [1]
        assert failures[0].status == "failed"
        assert not failures[0].outputs
        assert plan.fired_at("module")

    @pytest.mark.parametrize("label,kwargs", BACKENDS)
    def test_repeated_exceptions_exhaust_then_fail(self, registry, label,
                                                   kwargs):
        workflow = build_fig1_workflow(size=6)
        hist = module_by_name(workflow, "hist")
        plan = FaultPlan().fail_module(hist.id, attempts=(1, 2, 3))
        result = Executor(registry, retry=RetryPolicy(max_attempts=3),
                          fault_plan=plan, **kwargs).execute(workflow)
        assert result.status == "failed"
        hist_result = result.results[hist.id]
        assert hist_result.status == "failed"
        assert [f.attempt for f in hist_result.attempts] == [1, 2]
        # downstream of the exhausted module skips; the other branch runs
        names = {workflow.modules[m].name: r.status
                 for m, r in result.results.items()}
        assert names["render_hist"] == "skipped"
        assert names["iso"] == "ok" and names["render_mesh"] == "ok"

    @pytest.mark.parametrize("label,kwargs", BACKENDS)
    def test_kill_fault_recovers_on_every_backend(self, registry, label,
                                                  kwargs):
        # on the process backend this kills a real worker (os._exit);
        # in-process backends degrade it to a plain failure — recovery
        # must look identical either way
        workflow = build_chain_workflow(length=2, work=5)
        stage0 = module_by_name(workflow, "stage0")
        clean = Executor(registry, **kwargs).execute(workflow)
        plan = FaultPlan().kill_worker(stage0.id)
        result = Executor(registry, retry=RetryPolicy(max_attempts=2),
                          fault_plan=plan, **kwargs).execute(workflow)
        assert result.status == "ok"
        assert _engine_fingerprint(result) == _engine_fingerprint(clean)
        failures = result.results[stage0.id].attempts
        assert len(failures) == 1 and failures[0].attempt == 1

    def test_per_type_retry_mapping_with_wildcard(self, registry):
        workflow = build_fig1_workflow(size=6)
        hist = module_by_name(workflow, "hist")
        plan = FaultPlan().fail_module(hist.id)
        retry = {"ComputeHistogram": RetryPolicy(max_attempts=2),
                 "*": RetryPolicy(max_attempts=1)}
        result = Executor(registry, retry=retry,
                          fault_plan=plan).execute(workflow)
        assert result.status == "ok"
        assert len(result.results[hist.id].attempts) == 1


class TestTimeouts:
    def test_cooperative_timeout_retries_in_process(self, registry):
        workflow = build_fig1_workflow(size=6)
        hist = module_by_name(workflow, "hist")
        plan = FaultPlan().hang_module(hist.id, seconds=0.3)
        result = Executor(
            registry, fault_plan=plan,
            retry=RetryPolicy(max_attempts=2, timeout=0.1),
        ).execute(workflow)
        assert result.status == "ok"
        failures = result.results[hist.id].attempts
        assert len(failures) == 1
        assert "ModuleTimeout" in failures[0].error

    def test_deadline_kill_on_process_backend(self, registry):
        workflow = build_chain_workflow(length=1, work=5)
        stage0 = module_by_name(workflow, "stage0")
        plan = FaultPlan().hang_module(stage0.id, seconds=30.0)
        result = Executor(
            registry, workers=2, backend="process", fault_plan=plan,
            retry=RetryPolicy(max_attempts=2, timeout=0.5),
        ).execute(workflow)
        assert result.status == "ok"
        failures = result.results[stage0.id].attempts
        assert len(failures) == 1
        assert "deadline-kill" in failures[0].error

    def test_exhausted_timeout_is_a_failure(self, registry):
        workflow = build_chain_workflow(length=1, work=5)
        stage0 = module_by_name(workflow, "stage0")
        plan = FaultPlan().hang_module(stage0.id, seconds=0.3,
                                       attempts=(1, 2))
        result = Executor(
            registry, fault_plan=plan,
            retry=RetryPolicy(max_attempts=2, timeout=0.1),
        ).execute(workflow)
        assert result.status == "failed"
        stage = result.results[stage0.id]
        assert stage.status == "failed"
        assert "ModuleTimeout" in stage.error


class TestWorkerSupervision:
    def test_poison_module_is_quarantined(self, registry):
        # a module that kills its worker on every attempt must not take
        # the run down with it: it settles failed ("quarantined"),
        # downstream skips, the sibling branch completes
        # a linear chain keeps the in-flight set deterministic: in a
        # branching workflow a sibling job can share the pool during
        # both kills and get quarantined itself as collateral (each
        # kill breaks the whole pool), which is legitimate supervision
        # behaviour but not what this test pins down
        workflow = build_chain_workflow(length=3, work=5)
        stage1 = module_by_name(workflow, "stage1")
        plan = FaultPlan().kill_worker(stage1.id, attempts=(1, 2, 3))
        result = Executor(registry, workers=2, backend="process",
                          fault_plan=plan).execute(workflow)
        names = {workflow.modules[m].name: r for m, r in
                 result.results.items()}
        assert names["source"].status == "ok"
        assert names["stage0"].status == "ok"
        assert names["stage1"].status == "failed"
        assert "quarantined" in names["stage1"].error
        assert names["stage2"].status == "skipped"

    def test_quarantine_releases_compute_lease(self, registry):
        cache = ResultCache()
        workflow = build_chain_workflow(length=1, work=5)
        stage0 = module_by_name(workflow, "stage0")
        plan = FaultPlan().kill_worker(stage0.id, attempts=(1, 2, 3))
        Executor(registry, cache=cache, workers=2,
                 backend="process", fault_plan=plan).execute(workflow)
        # a leaked lease would make this second run wait out the TTL;
        # instead it recomputes immediately and succeeds
        started = time.monotonic()
        second = Executor(registry, cache=cache).execute(workflow)
        assert second.status == "ok"
        assert time.monotonic() - started < 30.0


class TestAttemptProvenance:
    def test_retried_run_matches_fault_free_modulo_attempts(self,
                                                            registry):
        workflow = build_fig1_workflow(size=6)
        iso = module_by_name(workflow, "iso")
        clean_capture = ProvenanceCapture(registry=registry)
        Executor(registry, listeners=[clean_capture]).execute(workflow)
        clean = clean_capture.last_run()

        plan = FaultPlan().fail_module(iso.id, attempts=(1, 2))
        capture = ProvenanceCapture(registry=registry)
        result = Executor(registry, listeners=[capture],
                          retry=RetryPolicy(max_attempts=3),
                          fault_plan=plan).execute(workflow)
        run = capture.last_run()
        assert result.status == "ok"
        attempts = [e for e in run.executions if e.attempt]
        assert sorted(e.attempt for e in attempts) == [1, 2]
        assert all(e.status == "failed" and not e.outputs
                   for e in attempts)
        final_iso = next(e for e in run.executions
                         if e.module_id == iso.id and not e.attempt)
        for failed in attempts:
            assert failed.module_id == iso.id
            # attempt records bind the same input artifacts as the final
            assert ({(b.port, b.artifact_id) for b in failed.inputs}
                    == {(b.port, b.artifact_id) for b in final_iso.inputs})
        # modulo the attempt executions, retried provenance is identical
        assert (_final_provenance_fingerprint(run)
                == _final_provenance_fingerprint(clean))

    def test_attempt_round_trips_through_every_backend(self, registry,
                                                       tmp_path):
        from repro.storage import DocumentStore, TripleProvenanceStore
        workflow = build_fig1_workflow(size=6)
        hist = module_by_name(workflow, "hist")
        plan = FaultPlan().fail_module(hist.id)
        capture = ProvenanceCapture(registry=registry)
        Executor(registry, listeners=[capture],
                 retry=RetryPolicy(max_attempts=2),
                 fault_plan=plan).execute(workflow)
        run = capture.last_run()
        expected = sorted((e.module_id, e.attempt, e.status)
                          for e in run.executions)
        assert any(attempt for _, attempt, _ in expected)
        stores = [MemoryStore(),
                  RelationalStore(str(tmp_path / "attempts.db")),
                  TripleProvenanceStore(),
                  DocumentStore(tmp_path / "docs")]
        for store in stores:
            store.save_run(run)
            loaded = store.load_run(run.id)
            assert sorted((e.module_id, e.attempt, e.status)
                          for e in loaded.executions) == expected

    def test_attempt_survives_relational_reopen_and_migration(
            self, registry, tmp_path):
        # a database created by an older schema (no attempt column) must
        # be migrated in place on reopen
        import sqlite3
        path = str(tmp_path / "old.db")
        store = RelationalStore(path)
        store.close()
        connection = sqlite3.connect(path)
        connection.execute("DROP TABLE executions")
        connection.execute(
            "CREATE TABLE executions (id TEXT PRIMARY KEY, run_id TEXT,"
            " module_id TEXT, module_type TEXT, module_name TEXT,"
            " status TEXT, parameters TEXT, started REAL, finished REAL,"
            " error TEXT, cache_key TEXT, cached_from TEXT,"
            " seq INTEGER NOT NULL DEFAULT 0)")
        connection.commit()
        connection.close()
        reopened = RelationalStore(path)
        columns = {row[1] for row in reopened._connection.execute(
            "PRAGMA table_info(executions)").fetchall()}
        assert "attempt" in columns
        reopened.close()


class TestCacheFaults:
    def test_torn_cache_write_degrades_to_recompute(self, registry,
                                                    tmp_path):
        path = str(tmp_path / "memo.db")
        workflow = build_fig1_workflow(size=6)
        plan = FaultPlan().tear_cache_write()  # first put is torn
        first = Executor(registry, cache=PersistentResultCache(
            path, fault_plan=plan)).execute(workflow)
        assert first.status == "ok"
        assert plan.fired_at("cache-put")
        issues = fsck_cache(path)
        assert any(i.kind == "torn-cache-entry" for i in issues)
        # a fresh process hits the torn entry, recomputes, same hashes
        second = Executor(registry, cache=PersistentResultCache(
            path)).execute(workflow)
        assert second.status == "ok"
        assert (_engine_fingerprint(first)[1]
                == _engine_fingerprint(second)[1])
        recomputed = [r for r in second.results.values()
                      if r.status == "ok"]
        assert recomputed  # the torn module really ran again
        # reading the torn entry dropped it: the cache is clean now
        assert not fsck_cache(path)

    def test_stolen_lease_does_not_block_completion(self, registry):
        plan = FaultPlan().steal_lease()
        result = Executor(registry, cache=ResultCache(),
                          fault_plan=plan).execute(
                              build_fig1_workflow(size=6))
        assert result.status == "ok"
        assert plan.fired_at("lease")

    def test_stolen_lease_on_persistent_cache(self, registry, tmp_path):
        plan = FaultPlan().steal_lease()
        cache = PersistentResultCache(str(tmp_path / "lease.db"))
        result = Executor(registry, cache=cache,
                          fault_plan=plan).execute(
                              build_fig1_workflow(size=6))
        assert result.status == "ok"
        assert plan.fired_at("lease")


def _heartbeat_threads():
    return [t for t in threading.enumerate()
            if t.name == "repro-lease-heartbeat" and t.is_alive()]


class TestHeartbeatLifecycle:
    def test_heartbeat_thread_stops_when_run_unwinds(self, registry):
        executor = Executor(registry, cache=ResultCache())
        executor.execute(build_fig1_workflow(size=6))
        deadline = time.monotonic() + 5.0
        while _heartbeat_threads() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert not _heartbeat_threads()

    def test_heartbeat_restarts_for_a_second_run(self, registry):
        executor = Executor(registry, cache=ResultCache())
        executor.execute(build_chain_workflow(length=1, work=5))
        deadline = time.monotonic() + 5.0
        while _heartbeat_threads() and time.monotonic() < deadline:
            time.sleep(0.02)
        second = executor.execute(build_chain_workflow(length=2, work=5))
        assert second.status == "ok"
        deadline = time.monotonic() + 5.0
        while _heartbeat_threads() and time.monotonic() < deadline:
            time.sleep(0.02)
        assert not _heartbeat_threads()


class TestCaptureFaults:
    def test_drainer_crash_retries_materialization(self, registry):
        store = MemoryStore()
        plan = FaultPlan().crash_drainer()
        capture = ProvenanceCapture(registry=registry, store=store,
                                    queue_size=32, fault_plan=plan)
        workflow = build_fig1_workflow(size=6)
        result = Executor(registry, listeners=[capture]).execute(workflow)
        capture.close()
        assert plan.fired_at("drainer")
        assert store.has_run(result.run_id)
        assert len(store.load_run(result.run_id).executions) == 5

    def test_capture_atexit_flushes_queued_tail(self, registry,
                                                tmp_path):
        # a process that exits without close() must not lose the queued
        # run: the atexit hook drains and flushes it
        db = str(tmp_path / "atexit.db")
        code = "\n".join([
            "import sys",
            f"sys.path.insert(0, {repr('src')})",
            "from repro.core.capture import ProvenanceCapture",
            "from repro.storage.relational import RelationalStore",
            "from repro.workflow.engine import Executor",
            "from repro.workflow.modules import standard_registry",
            "from repro.workflow.spec import Module, Workflow",
            "registry = standard_registry()",
            f"store = RelationalStore({db!r})",
            "capture = ProvenanceCapture(registry=registry, store=store,",
            "                            queue_size=64)",
            "workflow = Workflow('atexit')",
            "workflow.add_module(Module('Constant', name='c',",
            "                           parameters={'value': 7}))",
            "result = Executor(registry,",
            "                  listeners=[capture]).execute(workflow)",
            "print(result.run_id)",
            "# deliberately no capture.close(): atexit must flush",
        ])
        completed = subprocess.run(
            [sys.executable, "-c", code], cwd="/root/repo",
            capture_output=True, text=True, timeout=120)
        assert completed.returncode == 0, completed.stderr
        run_id = completed.stdout.strip().splitlines()[-1]
        store = RelationalStore(db)
        try:
            assert store.has_run(run_id)
            assert len(store.load_run(run_id).executions) == 1
        finally:
            store.close()

    def test_capture_close_is_idempotent(self, registry):
        capture = ProvenanceCapture(registry=registry, store=MemoryStore(),
                                    queue_size=8)
        workflow = build_chain_workflow(length=1, work=5)
        Executor(registry, listeners=[capture]).execute(workflow)
        capture.close()
        capture.close()  # second close must be a no-op, not an error


class TestManagerIntegration:
    def test_manager_threads_retry_and_fault_plan(self):
        from repro.core import ProvenanceManager
        manager = ProvenanceManager(retry=RetryPolicy(max_attempts=2))
        workflow = manager.new_workflow("retry-demo")
        manager.add_module(workflow, "Constant", name="c",
                           parameters={"value": 3})
        run = manager.run(workflow)
        assert run.status == "ok"
        manager.close()

    def test_manager_fault_plan_reaches_engine(self):
        from repro.core import ProvenanceManager
        plan = FaultPlan().add(FaultSpec("module", "*", (1,), "fail"))
        manager = ProvenanceManager(retry=RetryPolicy(max_attempts=2),
                                    fault_plan=plan)
        workflow = manager.new_workflow("fault-demo")
        manager.add_module(workflow, "Constant", name="c",
                           parameters={"value": 3})
        run = manager.run(workflow)
        assert run.status == "ok"
        assert plan.fired_at("module")
        attempts = [e for e in run.executions if e.attempt]
        assert len(attempts) == 1
        manager.close()
