"""Tests for annotations and the ProvenanceManager facade."""

import pytest

from repro.core import Annotation, AnnotationStore, ProvenanceManager
from tests.conftest import build_fig1_workflow, module_by_name


class TestAnnotationStore:
    def test_annotate_and_fetch(self):
        store = AnnotationStore()
        store.annotate("artifact", "art-1", "note", "looks wrong",
                       author="alice")
        found = store.for_target("artifact", "art-1")
        assert len(found) == 1
        assert found[0].value == "looks wrong"

    def test_rejects_unknown_kind(self):
        store = AnnotationStore()
        with pytest.raises(ValueError):
            store.annotate("galaxy", "x", "k", "v")

    def test_multiple_annotations_ordered(self):
        store = AnnotationStore()
        store.annotate("module", "mod-1", "a", 1)
        store.annotate("module", "mod-1", "b", 2)
        keys = [a.key for a in store.for_target("module", "mod-1")]
        assert keys == ["a", "b"]

    def test_by_key_and_author(self):
        store = AnnotationStore()
        store.annotate("run", "run-1", "quality", "good", author="alice")
        store.annotate("run", "run-2", "quality", "bad", author="bob")
        assert len(store.by_key("quality")) == 2
        assert [a.value for a in store.by_author("bob")] == ["bad"]

    def test_search_matches_keys_and_values(self):
        store = AnnotationStore()
        store.annotate("artifact", "art-1", "scanner", "CT unit five")
        store.annotate("artifact", "art-2", "note", 42)
        assert len(store.search("ct unit")) == 1
        assert len(store.search("scanner")) == 1
        assert store.search("missing") == []

    def test_remove(self):
        store = AnnotationStore()
        annotation = store.annotate("run", "run-1", "k", "v")
        assert store.remove(annotation.id)
        assert not store.remove(annotation.id)
        assert store.for_target("run", "run-1") == []

    def test_roundtrip_dicts(self):
        store = AnnotationStore()
        store.annotate("execution", "exec-1", "k", {"deep": [1]})
        restored = AnnotationStore.from_dicts(store.to_dicts())
        assert restored.for_target("execution", "exec-1")[0].value == \
            {"deep": [1]}
        assert len(restored) == 1


class TestProvenanceManager:
    def test_run_captures_and_stores(self, manager):
        workflow = build_fig1_workflow(size=8)
        run = manager.run(workflow)
        assert manager.get_run(run.id).id == run.id
        assert manager.store.load_workflow(workflow.id).signature \
            == workflow.signature()

    def test_add_module_validates_type(self, manager):
        workflow = manager.new_workflow("w")
        with pytest.raises(Exception):
            manager.add_module(workflow, "NoSuchType")

    def test_causality_from_id_and_object(self, manager):
        workflow = build_fig1_workflow(size=8)
        run = manager.run(workflow)
        by_object = manager.causality(run)
        by_id = manager.causality(run.id)
        assert by_object.node_count == by_id.node_count

    def test_annotate_persists_to_store(self, manager):
        workflow = build_fig1_workflow(size=8)
        run = manager.run(workflow)
        manager.annotate("run", run.id, "review", "approved",
                         author="carol")
        stored = manager.store.annotations_for("run", run.id)
        assert stored[0].value == "approved"
        assert manager.annotations_for("run", run.id)[0].author == "carol"

    def test_cache_speeds_second_run(self, manager):
        workflow = build_fig1_workflow(size=8)
        manager.run(workflow)
        second = manager.run(workflow)
        assert all(e.status == "cached" for e in second.executions)
        stats = manager.cache_stats()
        assert stats["hits"] >= 5

    def test_cache_disabled(self):
        manager = ProvenanceManager(use_cache=False)
        workflow = build_fig1_workflow(size=8)
        manager.run(workflow)
        second = manager.run(workflow)
        assert all(e.status == "ok" for e in second.executions)
        assert manager.cache_stats() == {"hits": 0, "misses": 0,
                                         "hit_rate": 0.0, "evictions": 0,
                                         "invalidations": 0}

    def test_runs_listing_ordered(self, manager):
        workflow = build_fig1_workflow(size=8)
        first = manager.run(workflow)
        second = manager.run(workflow)
        listed = [run.id for run in manager.runs()]
        assert listed.index(first.id) < listed.index(second.id)

    def test_prospective_snapshot(self, manager):
        workflow = build_fig1_workflow(size=8)
        prospective = manager.prospective(workflow)
        assert prospective.signature == workflow.signature()

    def test_to_opm_handoff(self, manager):
        workflow = build_fig1_workflow(size=8)
        run = manager.run(workflow)
        opm_graph = manager.to_opm(run)
        assert opm_graph.artifacts and opm_graph.processes

    def test_query_handoff(self, manager):
        workflow = build_fig1_workflow(size=8)
        run = manager.run(workflow)
        rows = manager.query("EXECUTIONS", run)
        assert len(rows) == 5
