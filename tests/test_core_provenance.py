"""Tests for prospective/retrospective records, capture and causality."""

import pytest

from repro.core import (ProspectiveProvenance, ProvenanceCapture,
                        ScriptCapture, WorkflowRun, artifacts_affected_by,
                        causality_graph, data_dependencies,
                        derivation_paths, downstream_artifacts,
                        run_from_result, upstream_artifacts,
                        upstream_executions)
from repro.workflow import Executor, Module, Workflow
from tests.conftest import build_fig1_workflow, module_by_name


@pytest.fixture()
def fig1_run(registry):
    workflow = build_fig1_workflow(size=8)
    capture = ProvenanceCapture(registry=registry)
    executor = Executor(registry, listeners=[capture])
    executor.execute(workflow, tags={"case": "fig1"})
    return workflow, capture.last_run()


class TestRunFromResult:
    def test_execution_count_matches_modules(self, fig1_run):
        workflow, run = fig1_run
        assert len(run.executions) == len(workflow.modules)

    def test_status_and_tags(self, fig1_run):
        _, run = fig1_run
        assert run.status == "ok"
        assert run.tags == {"case": "fig1"}

    def test_spec_snapshot_embedded(self, fig1_run):
        workflow, run = fig1_run
        assert run.workflow_spec["id"] == workflow.id
        assert len(run.workflow_spec["modules"]) == len(workflow.modules)

    def test_artifact_types_from_registry(self, fig1_run):
        workflow, run = fig1_run
        load = module_by_name(workflow, "load")
        artifact = run.artifacts_for_module(load.id, "volume")
        assert artifact.type_name == "VolumeData"

    def test_shared_value_is_one_artifact(self, fig1_run):
        workflow, run = fig1_run
        # load.volume feeds both hist and iso: one artifact, 3 references
        load = module_by_name(workflow, "load")
        hist = module_by_name(workflow, "hist")
        iso = module_by_name(workflow, "iso")
        volume_artifact = run.artifacts_for_module(load.id, "volume")
        hist_exec = run.execution_for_module(hist.id)
        iso_exec = run.execution_for_module(iso.id)
        assert hist_exec.inputs[0].artifact_id == volume_artifact.id
        assert iso_exec.inputs[0].artifact_id == volume_artifact.id

    def test_values_kept(self, fig1_run):
        workflow, run = fig1_run
        load = module_by_name(workflow, "load")
        artifact = run.artifacts_for_module(load.id, "volume")
        assert run.value(artifact.id).ndim == 3

    def test_values_can_be_dropped(self, registry):
        workflow = build_fig1_workflow(size=8)
        capture = ProvenanceCapture(registry=registry, keep_values=False)
        Executor(registry, listeners=[capture]).execute(workflow)
        assert capture.last_run().values == {}

    def test_final_artifacts_are_sink_products(self, fig1_run):
        workflow, run = fig1_run
        finals = run.final_artifacts()
        roles = {artifact.role for artifact in finals}
        # two rendered images plus the never-consumed volume header
        assert roles == {"image", "header"}
        assert len(finals) == 3

    def test_roundtrip_to_dict(self, fig1_run):
        _, run = fig1_run
        restored = WorkflowRun.from_dict(run.to_dict())
        assert restored.id == run.id
        assert len(restored.executions) == len(run.executions)
        assert set(restored.artifacts) == set(run.artifacts)
        assert restored.executions[0].parameters == \
            run.executions[0].parameters


class TestCaptureJournal:
    def test_journal_records_lifecycle(self, registry):
        capture = ProvenanceCapture(registry=registry)
        executor = Executor(registry, listeners=[capture])
        executor.execute(build_fig1_workflow(size=8))
        kinds = [event.event for event in capture.journal]
        assert kinds[0] == "run-start"
        assert kinds[-1] == "run-finish"
        assert kinds.count("module-start") == 5

    def test_journal_bounded(self, registry):
        capture = ProvenanceCapture(registry=registry, journal_limit=3)
        executor = Executor(registry, listeners=[capture])
        executor.execute(build_fig1_workflow(size=8))
        assert len(capture.journal) == 3

    def test_run_by_id(self, registry):
        capture = ProvenanceCapture(registry=registry)
        executor = Executor(registry, listeners=[capture])
        executor.execute(build_fig1_workflow(size=8))
        run = capture.last_run()
        assert capture.run_by_id(run.id) is run
        assert capture.run_by_id("run-nope") is None

    def test_size_hint_estimates_large_values(self):
        from repro.core.capture import _SIZE_HINT_CAP, _size_hint
        assert _size_hint(None) == 0
        assert _size_hint("abc") == len(repr("abc"))
        assert _size_hint([1, 2, 3]) == len(repr([1, 2, 3]))
        big_text = "x" * (_SIZE_HINT_CAP + 1)
        assert _size_hint(big_text) == len(big_text) + 2
        big_list = list(range(_SIZE_HINT_CAP + 1))
        # estimated from the length — never reprs the whole container
        assert _size_hint(big_list) == len(big_list) * 8
        assert _size_hint(12345) == len(repr(12345))

    def test_size_hint_bytes_estimate_matches_exact_at_cap(self):
        """Regression: the estimate for large bytes/bytearray values must
        include the repr affixes (``b'...'`` / ``bytearray(b'...')``), so
        estimated and exact sizes agree across the cap boundary for
        escape-free payloads."""
        from repro.core.capture import _SIZE_HINT_CAP, _size_hint
        for make in (str, lambda s: s.encode(), lambda s: bytearray(
                s.encode())):
            at_cap = make("x" * _SIZE_HINT_CAP)          # exact repr
            over_cap = make("x" * (_SIZE_HINT_CAP + 1))  # estimated
            assert _size_hint(at_cap) == len(repr(at_cap))
            assert _size_hint(over_cap) == _size_hint(at_cap) + 1, \
                type(at_cap).__name__
        # sanity: the affixes really differ per type
        assert _size_hint(b"x" * (_SIZE_HINT_CAP + 1)) \
            == _SIZE_HINT_CAP + 4
        assert _size_hint(bytearray(_SIZE_HINT_CAP + 1)) \
            == _SIZE_HINT_CAP + 15


class TestCausality:
    def test_graph_shape(self, fig1_run):
        _, run = fig1_run
        graph = causality_graph(run)
        artifacts = graph.node_ids("artifact")
        executions = graph.node_ids("execution")
        assert len(executions) == 5
        # volume+header+histogram+hist image+mesh+mesh image
        assert len(artifacts) == 6

    def test_upstream_artifacts(self, fig1_run):
        workflow, run = fig1_run
        load = module_by_name(workflow, "load")
        render = module_by_name(workflow, "render_mesh")
        image = run.artifacts_for_module(render.id, "image")
        volume = run.artifacts_for_module(load.id, "volume")
        ups = upstream_artifacts(causality_graph(run), image.id)
        assert volume.id in ups

    def test_downstream_artifacts(self, fig1_run):
        workflow, run = fig1_run
        load = module_by_name(workflow, "load")
        volume = run.artifacts_for_module(load.id, "volume")
        downs = downstream_artifacts(causality_graph(run), volume.id)
        # histogram, hist image, mesh, mesh image — but not header
        assert len(downs) == 4

    def test_histogram_branch_independent_of_mesh(self, fig1_run):
        workflow, run = fig1_run
        hist = module_by_name(workflow, "hist")
        iso = module_by_name(workflow, "iso")
        histogram = run.artifacts_for_module(hist.id, "histogram")
        mesh = run.artifacts_for_module(iso.id, "mesh")
        graph = causality_graph(run)
        assert mesh.id not in upstream_artifacts(graph, histogram.id)
        assert mesh.id not in downstream_artifacts(graph, histogram.id)

    def test_upstream_executions(self, fig1_run):
        workflow, run = fig1_run
        render = module_by_name(workflow, "render_mesh")
        image = run.artifacts_for_module(render.id, "image")
        executions = upstream_executions(causality_graph(run), image.id)
        names = {run.execution(e).module_name for e in executions}
        assert names == {"load", "iso", "render_mesh"}

    def test_data_dependencies_pairs(self, fig1_run):
        workflow, run = fig1_run
        load = module_by_name(workflow, "load")
        hist = module_by_name(workflow, "hist")
        volume = run.artifacts_for_module(load.id, "volume")
        histogram = run.artifacts_for_module(hist.id, "histogram")
        assert (histogram.id, volume.id) in data_dependencies(run)

    def test_derivation_paths_alternate(self, fig1_run):
        workflow, run = fig1_run
        load = module_by_name(workflow, "load")
        render = module_by_name(workflow, "render_mesh")
        image = run.artifacts_for_module(render.id, "image")
        volume = run.artifacts_for_module(load.id, "volume")
        paths = derivation_paths(causality_graph(run), image.id, volume.id)
        assert len(paths) == 1
        # artifact, exec, artifact, exec, artifact
        assert len(paths[0]) == 5

    def test_defective_scanner_invalidation(self, fig1_run):
        """The paper's CT-scanner scenario: everything downstream of the
        volume is invalidated, the header branch is not."""
        workflow, run = fig1_run
        load = module_by_name(workflow, "load")
        volume = run.artifacts_for_module(load.id, "volume")
        header = run.artifacts_for_module(load.id, "header")
        affected = artifacts_affected_by(run, volume.id)
        assert len(affected) == 4
        assert header.id not in affected


class TestProspective:
    def test_recipe_order_and_interfaces(self, registry):
        workflow = build_fig1_workflow()
        prospective = ProspectiveProvenance.from_workflow(workflow,
                                                          registry)
        steps = prospective.recipe()
        assert steps[0].module_name == "load"
        assert len(steps) == 5
        assert "LoadVolume" in prospective.interfaces
        assert prospective.interfaces["LoadVolume"]["outputs"][0]["type"] \
            in ("VolumeData", "Mapping")

    def test_describe_mentions_every_module(self, registry):
        workflow = build_fig1_workflow()
        text = ProspectiveProvenance.from_workflow(
            workflow, registry).describe()
        for module in workflow.modules.values():
            assert module.name in text

    def test_roundtrip(self, registry):
        workflow = build_fig1_workflow()
        prospective = ProspectiveProvenance.from_workflow(workflow,
                                                          registry)
        restored = ProspectiveProvenance.from_dict(prospective.to_dict())
        assert restored.signature == prospective.signature
        assert restored.to_workflow().signature() == workflow.signature()

    def test_module_types(self, registry):
        workflow = build_fig1_workflow()
        prospective = ProspectiveProvenance.from_workflow(workflow,
                                                          registry)
        assert "IsosurfaceExtract" in prospective.module_types()


class TestScriptCapture:
    def test_successful_call(self):
        capture = ScriptCapture(author="bob")
        result, run = capture.record(len, [1, 2, 3])
        assert result == 3
        assert run.status == "ok"
        assert run.tags["author"] == "bob"
        assert run.executions[0].module_type == "script:len"

    def test_failing_call_captured(self):
        capture = ScriptCapture()
        result, run = capture.record(int, "not a number")
        assert result is None
        assert run.status == "failed"
        assert "ValueError" in run.executions[0].error

    def test_kwargs_become_ports(self):
        capture = ScriptCapture()
        _, run = capture.record(sorted, [3, 1], reverse=True)
        ports = {binding.port for binding
                 in run.executions[0].inputs}
        assert ports == {"arg0", "kwarg:reverse"}

    def test_wrap_keeps_behaviour(self):
        capture = ScriptCapture()
        wrapped = capture.wrap(abs)
        assert wrapped(-4) == 4
        assert len(capture.runs) == 1

    def test_return_artifact_linked(self):
        capture = ScriptCapture()
        _, run = capture.record(sum, [1, 2, 3])
        execution = run.executions[0]
        output = execution.outputs[0]
        assert run.artifacts[output.artifact_id].created_by == execution.id
