"""Tests for static workflow validation."""

import pytest

from repro.workflow import (Connection, Module, ValidationError, Workflow,
                            check_workflow, validate_workflow)


def issue_codes(workflow, registry):
    return {issue.code for issue in check_workflow(workflow, registry)}


class TestModuleChecks:
    def test_clean_workflow_has_no_issues(self, registry):
        workflow = Workflow()
        const = workflow.add_module(Module("Constant"))
        ident = workflow.add_module(Module("Identity"))
        workflow.connect(const.id, "value", ident.id, "value")
        assert check_workflow(workflow, registry) == []

    def test_unknown_module_type(self, registry):
        workflow = Workflow()
        workflow.add_module(Module("Bogus"))
        assert "unknown-module-type" in issue_codes(workflow, registry)

    def test_unknown_parameter(self, registry):
        workflow = Workflow()
        workflow.add_module(Module("Constant",
                                   parameters={"nonsense": 1}))
        assert "unknown-parameter" in issue_codes(workflow, registry)

    def test_bad_parameter_value(self, registry):
        workflow = Workflow()
        workflow.add_module(Module("SpinCompute",
                                   parameters={"work": "lots"}))
        # SpinCompute's work is declared via define() as json kind, so use
        # a module whose params are typed: build one with ParameterSpec int
        # via FilterRows which has str column
        codes = issue_codes(workflow, registry)
        # json kind accepts anything, so no issue expected here
        assert "bad-parameter-value" not in codes


class TestConnectionChecks:
    def test_unknown_output_port(self, registry):
        workflow = Workflow()
        a = workflow.add_module(Module("Constant"))
        b = workflow.add_module(Module("Identity"))
        workflow.connect(a.id, "nope", b.id, "value")
        assert "unknown-output-port" in issue_codes(workflow, registry)

    def test_unknown_input_port(self, registry):
        workflow = Workflow()
        a = workflow.add_module(Module("Constant"))
        b = workflow.add_module(Module("Identity"))
        workflow.connect(a.id, "value", b.id, "nope")
        assert "unknown-input-port" in issue_codes(workflow, registry)

    def test_type_mismatch(self, registry):
        workflow = Workflow()
        a = workflow.add_module(Module("StringConstant"))
        b = workflow.add_module(Module("Scale"))  # expects Number
        workflow.connect(a.id, "value", b.id, "value")
        assert "type-mismatch" in issue_codes(workflow, registry)

    def test_subtype_connection_allowed(self, registry):
        workflow = Workflow()
        # ComputeHistogram emits Histogram (< Table); SelectColumns takes
        # Table
        load = workflow.add_module(Module("LoadVolume"))
        hist = workflow.add_module(Module("ComputeHistogram"))
        select = workflow.add_module(Module(
            "SelectColumns", parameters={"names": ["count"]}))
        workflow.connect(load.id, "volume", hist.id, "volume")
        workflow.connect(hist.id, "histogram", select.id, "table")
        assert check_workflow(workflow, registry) == []

    def test_any_input_accepts_everything(self, registry):
        workflow = Workflow()
        load = workflow.add_module(Module("LoadVolume"))
        ident = workflow.add_module(Module("Identity"))
        workflow.connect(load.id, "volume", ident.id, "value")
        assert check_workflow(workflow, registry) == []

    def test_dangling_connection(self, registry):
        workflow = Workflow()
        a = workflow.add_module(Module("Constant"))
        b = workflow.add_module(Module("Identity"))
        workflow.connect(a.id, "value", b.id, "value")
        del workflow.modules[a.id]  # simulate corruption
        assert "dangling-connection" in issue_codes(workflow, registry)


class TestMandatoryInputs:
    def test_unbound_input_reported(self, registry):
        workflow = Workflow()
        workflow.add_module(Module("Scale"))
        assert "unbound-input" in issue_codes(workflow, registry)

    def test_optional_input_not_reported(self, registry):
        workflow = Workflow()
        workflow.add_module(Module("Identity"))  # optional input
        assert "unbound-input" not in issue_codes(workflow, registry)


class TestValidateWorkflow:
    def test_raises_with_summary(self, registry):
        workflow = Workflow("broken")
        workflow.add_module(Module("Bogus"))
        with pytest.raises(ValidationError) as excinfo:
            validate_workflow(workflow, registry)
        assert "unknown-module-type" in str(excinfo.value)

    def test_cycle_reported(self, registry):
        workflow = Workflow()
        a = workflow.add_module(Module("Identity", name="a"))
        b = workflow.add_module(Module("Identity", name="b"))
        workflow.connect(a.id, "value", b.id, "value")
        workflow.connections["back"] = Connection(
            source_module=b.id, source_port="value",
            target_module=a.id, target_port="value", id="back")
        assert "cycle" in issue_codes(workflow, registry)
