"""Tests for the ready-set scheduler: serial/parallel determinism,
failure propagation on diamond DAGs, partial re-execution planning, and
the thread-safety of shared engine components."""

import threading

import pytest

from repro.core import (ProvenanceCapture, ProvenanceManager, ReplayError,
                        compute_replay_plan)
from repro.apps import partial_rerun, replay_invalidated
from repro.workflow import (CacheEntry, ExecutionError, Executor, Module,
                            PersistentResultCache, ResultCache, Workflow)
from repro.workflow.scheduler import (ProcessPoolBackend, ReadySetScheduler,
                                      SerialBackend, ThreadPoolBackend,
                                      make_backend)
from repro.workflow.serialization import ProcessJob
from repro.workloads import random_workflow, wide_workflow
from tests.conftest import (assert_each_key_computed_once,
                            build_chain_workflow, build_fig1_workflow,
                            module_by_name, run_pair_sharing_cache)


def build_diamond_workflow(fail_left: bool = False) -> Workflow:
    """source -> (left, right) -> join; left optionally fails."""
    workflow = Workflow("diamond")
    source = workflow.add_module(Module("Constant", name="src",
                                        parameters={"value": 2.0}))
    left = workflow.add_module(Module("FailIf", name="left",
                                      parameters={"fail": fail_left}))
    right = workflow.add_module(Module("Scale", name="right",
                                       parameters={"factor": 3.0}))
    join = workflow.add_module(Module("Add", name="join"))
    workflow.connect(source.id, "value", left.id, "value")
    workflow.connect(source.id, "value", right.id, "value")
    workflow.connect(left.id, "value", join.id, "a")
    workflow.connect(right.id, "result", join.id, "b")
    return workflow


class TestReadySetScheduler:
    def test_sources_ready_first_sorted(self):
        workflow = build_diamond_workflow()
        scheduler = ReadySetScheduler(workflow)
        sources = scheduler.take_ready()
        assert sources == sorted(workflow.sources())
        assert scheduler.take_ready() == []

    def test_resolution_promotes_dependents(self):
        workflow = build_diamond_workflow()
        scheduler = ReadySetScheduler(workflow)
        (source_id,) = scheduler.take_ready()
        promoted = scheduler.resolve(source_id)
        assert sorted(promoted) == sorted(
            workflow.successors(source_id))
        assert not scheduler.finished()

    def test_full_drive_resolves_everything(self):
        workflow = random_workflow(modules=15, seed=7)
        scheduler = ReadySetScheduler(workflow)
        resolved = []
        while not scheduler.finished():
            batch = scheduler.take_ready()
            assert batch, "scheduler stalled"
            for module_id in batch:
                scheduler.resolve(module_id)
                resolved.append(module_id)
        assert sorted(resolved) == sorted(workflow.modules)
        position = {m: i for i, m in enumerate(resolved)}
        for connection in workflow.connections.values():
            assert (position[connection.source_module]
                    < position[connection.target_module])

    def test_double_resolution_rejected(self):
        workflow = build_diamond_workflow()
        scheduler = ReadySetScheduler(workflow)
        (source_id,) = scheduler.take_ready()
        scheduler.resolve(source_id)
        with pytest.raises(ExecutionError):
            scheduler.resolve(source_id)


class TestBackends:
    def test_make_backend_selects(self):
        assert isinstance(make_backend(None), SerialBackend)
        assert isinstance(make_backend(1), SerialBackend)
        backend = make_backend(3)
        assert isinstance(backend, ThreadPoolBackend)
        backend.shutdown()

    def test_make_backend_kind_selects(self):
        assert isinstance(make_backend(4, "serial"), SerialBackend)
        assert isinstance(make_backend(None, "process"), SerialBackend)
        backend = make_backend(2, "process")
        try:
            assert isinstance(backend, ProcessPoolBackend)
            assert backend.out_of_process
        finally:
            backend.shutdown()
        thread = make_backend(2, "thread")
        assert isinstance(thread, ThreadPoolBackend)
        assert not thread.out_of_process
        thread.shutdown()

    def test_make_backend_rejects_unknown_kind(self):
        with pytest.raises(ExecutionError):
            make_backend(4, "quantum")

    def test_workers_must_be_positive(self):
        with pytest.raises(ExecutionError):
            ThreadPoolBackend(0)
        with pytest.raises(ExecutionError):
            ProcessPoolBackend(0)

    def test_process_backend_runs_jobs(self):
        backend = ProcessPoolBackend(2)
        try:
            for index in range(4):
                backend.submit(f"m{index}", ProcessJob(
                    module_id=f"m{index}", module_name="scale",
                    type_name="Scale",
                    parameters={"factor": float(index)},
                    inputs={"value": 10.0}))
            harvested = {}
            while backend.outstanding():
                harvested.update(dict(backend.wait()))
        finally:
            backend.shutdown()
        assert {m: o.status for m, o in harvested.items()} == \
            {f"m{i}": "ok" for i in range(4)}
        assert harvested["m3"].outputs == {"result": 30.0}

    def test_broken_pool_recreates_and_recovers(self):
        # killing every worker breaks the pool; the supervisor must
        # recreate it (bounded) so later submissions run on fresh
        # workers — never submitted to the dead executor, never raised
        # into the scheduling loop
        backend = ProcessPoolBackend(1)
        try:
            backend.submit("warm", ProcessJob(
                module_id="warm", module_name="c", type_name="Constant",
                parameters={"value": 1.0}))
            while backend.outstanding():
                backend.wait()
            for process in backend._pool._processes.values():
                process.kill()
                process.join()
            harvested = {}
            for index in range(3):
                backend.submit(f"m{index}", ProcessJob(
                    module_id=f"m{index}", module_name="c",
                    type_name="Constant", parameters={"value": 1.0}))
            while backend.outstanding():
                harvested.update(dict(backend.wait()))
            # jobs caught on the broken pool surface as worker-lost (the
            # engine re-dispatches those); the pool itself must be fresh
            lost = {m for m, o in harvested.items() if o.status != "ok"}
            assert all(harvested[m].worker_lost for m in lost)
            for module_id in lost:
                backend.submit(module_id, ProcessJob(
                    module_id=module_id, module_name="c",
                    type_name="Constant", parameters={"value": 1.0}))
            while backend.outstanding():
                harvested.update(dict(backend.wait()))
        finally:
            backend.shutdown()
        assert set(harvested) == {"m0", "m1", "m2"}
        assert all(outcome.status == "ok"
                   for outcome in harvested.values())
        assert backend.restarts >= 1

    def test_broken_pool_fails_fast_once_restarts_exhausted(self):
        backend = ProcessPoolBackend(1, max_restarts=0)
        try:
            backend.submit("boom", ProcessJob(
                module_id="boom", module_name="c", type_name="Constant",
                parameters={"value": 1.0}, inject="kill"))
            harvested = {}
            while backend.outstanding():
                harvested.update(dict(backend.wait()))
            # restart budget is 0: the backend is dead and must refuse
            # further submissions with terminal failures, immediately
            backend.submit("after", ProcessJob(
                module_id="after", module_name="c", type_name="Constant",
                parameters={"value": 1.0}))
            while backend.outstanding():
                harvested.update(dict(backend.wait()))
        finally:
            backend.shutdown()
        assert harvested["boom"].status == "failed"
        assert harvested["boom"].worker_lost
        assert harvested["after"].status == "failed"
        assert not harvested["after"].worker_lost
        assert "restart budget exhausted" in harvested["after"].error

    def test_process_backend_failures_come_back_as_outcomes(self):
        backend = ProcessPoolBackend(1)
        try:
            backend.submit("bad-type", ProcessJob(
                module_id="bad-type", module_name="x",
                type_name="NoSuchModule"))
            backend.submit("bad-provider", ProcessJob(
                module_id="bad-provider", module_name="x",
                type_name="Scale",
                registry_provider="no.such.module:factory"))
            harvested = {}
            while backend.outstanding():
                harvested.update(dict(backend.wait()))
        finally:
            backend.shutdown()
        assert harvested["bad-type"].status == "failed"
        assert "NoSuchModule" in harvested["bad-type"].error
        assert harvested["bad-provider"].status == "failed"

    def test_serial_wait_without_work_rejected(self):
        with pytest.raises(ExecutionError):
            SerialBackend().wait()

    def test_thread_backend_runs_jobs(self):
        backend = ThreadPoolBackend(2)
        try:
            for index in range(5):
                backend.submit(f"m{index}",
                               lambda index=index: index * 10)
            harvested = {}
            while backend.outstanding():
                harvested.update(dict(backend.wait()))
            assert harvested == {f"m{i}": i * 10 for i in range(5)}
        finally:
            backend.shutdown()


def _engine_fingerprint(result):
    """Timing-independent digest of an engine run."""
    statuses = {m: r.status for m, r in result.results.items()}
    hashes = {(m, port): record.value_hash
              for m, r in result.results.items()
              for port, record in r.outputs.items()}
    errors = {m: r.error for m, r in result.results.items()
              if r.status == "skipped"}
    return statuses, hashes, errors


def _provenance_fingerprint(run):
    """Timing-independent digest of a captured WorkflowRun."""
    executions = [(e.module_id, e.status,
                   sorted((b.port, run.artifacts[b.artifact_id].value_hash)
                          for b in e.outputs))
                  for e in run.executions]
    artifact_hashes = sorted(a.value_hash for a in run.artifacts.values())
    return run.status, executions, artifact_hashes


class TestSerialParallelDeterminism:
    @pytest.mark.parametrize("build", [
        lambda: build_fig1_workflow(size=8),
        lambda: random_workflow(modules=18, width=5, seed=3, work=10),
        lambda: wide_workflow(branches=6, depth=2, sleep=0.002),
    ])
    def test_results_identical_across_modes(self, registry, build):
        workflow = build()
        serial = Executor(registry).execute(workflow)
        parallel = Executor(registry, workers=4).execute(workflow)
        assert _engine_fingerprint(serial) == _engine_fingerprint(parallel)
        assert serial.order == parallel.order

    def test_captured_provenance_identical(self, registry):
        workflow = build_fig1_workflow(size=8)
        captures = {}
        for workers in (None, 4):
            capture = ProvenanceCapture(registry=registry)
            Executor(registry, listeners=[capture],
                     workers=workers).execute(workflow)
            captures[workers] = capture
        assert (_provenance_fingerprint(captures[None].last_run())
                == _provenance_fingerprint(captures[4].last_run()))

    def test_listener_events_identical_normalized(self, registry):
        workflow = build_fig1_workflow(size=8)
        journals = {}
        for workers in (None, 4):
            capture = ProvenanceCapture(registry=registry)
            executor = Executor(registry, listeners=[capture],
                                workers=workers)
            result = executor.execute(workflow)
            journals[workers] = capture.normalized_journal(result.run_id)
        assert journals[None] == journals[4]

    def test_diamond_failure_propagation_parity(self, registry):
        workflow = build_diamond_workflow(fail_left=True)
        serial = Executor(registry).execute(workflow)
        parallel = Executor(registry, workers=4).execute(workflow)
        assert _engine_fingerprint(serial) == _engine_fingerprint(parallel)
        names = {workflow.modules[m].name: r.status
                 for m, r in parallel.results.items()}
        assert names == {"src": "ok", "left": "failed",
                         "right": "ok", "join": "skipped"}
        left = module_by_name(workflow, "left")
        assert left.id in parallel.results[
            module_by_name(workflow, "join").id].error

    def test_wide_failure_only_kills_its_branch(self, registry):
        workflow = wide_workflow(branches=4, depth=3, sleep=0.001)
        bad = module_by_name(workflow, "b01s01")
        result = Executor(registry, workers=4).execute(
            workflow, parameter_overrides={})
        assert result.status == "ok"
        failing = Executor(registry, workers=4).execute(
            workflow,
            parameter_overrides={bad.id: {"seconds": "not-a-number"}})
        statuses = {workflow.modules[m].name: r.status
                    for m, r in failing.results.items()}
        assert statuses["b01s01"] == "failed"
        assert statuses["b01s02"] == "skipped"
        # every other branch is untouched
        assert all(status == "ok" for name, status in statuses.items()
                   if not name.startswith("b01s0") and name != "source")

    def test_parallel_cache_shared_safely(self, registry):
        cache = ResultCache()
        executor = Executor(registry, cache=cache, workers=4)
        workflow = wide_workflow(branches=8, depth=2, sleep=0.001)
        executor.execute(workflow)
        second = executor.execute(workflow)
        assert all(r.status == "cached"
                   for r in second.results.values())


#: (label, executor kwargs) for the serial / thread / process matrix.
BACKEND_MATRIX = [
    ("serial", {}),
    ("thread", {"workers": 4}),
    ("process", {"workers": 2, "backend": "process"}),
]

#: Workload generators the matrix runs: a wide fan-out (sleep-bound and
#: CPU-bound variants), a linear derivation chain (the executable shape of
#: the derivation_chain_corpus lineage workload), and a random layered DAG.
MATRIX_WORKLOADS = [
    ("wide-sleep", lambda: wide_workflow(branches=5, depth=2, sleep=0.002)),
    ("wide-cpu", lambda: wide_workflow(branches=5, depth=2, work=200)),
    ("derivation-chain", lambda: build_chain_workflow(length=4, work=10)),
    ("random-dag", lambda: random_workflow(modules=14, width=4, seed=11,
                                           work=10)),
]


class TestBackendDeterminismMatrix:
    """Serial, thread and process runs of one workflow must produce
    byte-identical retrospective provenance: statuses, output hashes,
    balanced listener events, and ``executions.seq`` reload order."""

    def _run_all(self, registry, build):
        workflow = build()
        outcomes = {}
        for label, kwargs in BACKEND_MATRIX:
            capture = ProvenanceCapture(registry=registry)
            executor = Executor(registry, listeners=[capture], **kwargs)
            result = executor.execute(workflow)
            outcomes[label] = (workflow, result, capture)
        return outcomes

    @pytest.mark.parametrize("name,build", MATRIX_WORKLOADS,
                             ids=[n for n, _ in MATRIX_WORKLOADS])
    def test_statuses_and_hashes_identical(self, registry, name, build):
        outcomes = self._run_all(registry, build)
        fingerprints = {label: _engine_fingerprint(result)
                        for label, (_, result, _) in outcomes.items()}
        assert fingerprints["serial"] == fingerprints["thread"]
        assert fingerprints["serial"] == fingerprints["process"]
        orders = {label: result.order
                  for label, (_, result, _) in outcomes.items()}
        assert orders["serial"] == orders["thread"] == orders["process"]

    @pytest.mark.parametrize("name,build", MATRIX_WORKLOADS,
                             ids=[n for n, _ in MATRIX_WORKLOADS])
    def test_captured_provenance_identical(self, registry, name, build):
        outcomes = self._run_all(registry, build)
        prints = {label: _provenance_fingerprint(capture.last_run())
                  for label, (_, _, capture) in outcomes.items()}
        assert prints["serial"] == prints["thread"] == prints["process"]

    def test_listener_events_balanced_and_identical(self, registry):
        workflow = wide_workflow(branches=5, depth=2, work=50)
        journals = {}
        for label, kwargs in BACKEND_MATRIX:
            capture = ProvenanceCapture(registry=registry)
            executor = Executor(registry, listeners=[capture], **kwargs)
            result = executor.execute(workflow)
            journal = capture.normalized_journal(result.run_id)
            kinds = [event for event, _, _ in journal]
            assert kinds.count("module-start") == len(workflow.modules)
            assert kinds.count("module-finish") == len(workflow.modules)
            journals[label] = journal
        assert journals["serial"] == journals["thread"]
        assert journals["serial"] == journals["process"]

    def test_executions_seq_reload_order_identical(self, registry,
                                                   tmp_path):
        from repro.storage import RelationalStore
        workflow = wide_workflow(branches=5, depth=2, work=50)
        reloaded_orders = {}
        for label, kwargs in BACKEND_MATRIX:
            store = RelationalStore(
                str(tmp_path / f"{label}.db"))
            capture = ProvenanceCapture(registry=registry, store=store)
            executor = Executor(registry, listeners=[capture], **kwargs)
            result = executor.execute(workflow)
            loaded = store.load_run(result.run_id)
            assert [e.module_id for e in loaded.executions] == result.order
            reloaded_orders[label] = [e.module_id
                                      for e in loaded.executions]
        assert (reloaded_orders["serial"] == reloaded_orders["thread"]
                == reloaded_orders["process"])

    def test_process_failure_propagation_parity(self, registry):
        workflow = build_diamond_workflow(fail_left=True)
        serial = Executor(registry).execute(workflow)
        process = Executor(registry, workers=2,
                           backend="process").execute(workflow)
        assert _engine_fingerprint(serial) == _engine_fingerprint(process)
        names = {workflow.modules[m].name: r.status
                 for m, r in process.results.items()}
        assert names == {"src": "ok", "left": "failed",
                         "right": "ok", "join": "skipped"}

    def test_process_run_memoizes_in_coordinator_cache(self, registry):
        cache = ResultCache()
        executor = Executor(registry, cache=cache, workers=2,
                            backend="process")
        workflow = wide_workflow(branches=4, depth=2, work=50)
        first = executor.execute(workflow)
        # stages repeat their branch's causal signature (SpinCompute
        # passes the value through), so the first run already mixes ok
        # and cached — every module of the second run must be cached
        assert first.executed_modules()
        second = executor.execute(workflow)
        assert all(r.status == "cached" for r in second.results.values())
        # the cached run's hashes match the computed run's exactly
        assert _engine_fingerprint(first)[1] == \
            _engine_fingerprint(second)[1]

    def test_process_unpicklable_output_fails_cleanly(self, registry):
        # a module whose output cannot cross the process boundary must
        # come back as an ordinary failed result, not an exception
        workflow = Workflow("unpicklable")
        module = workflow.add_module(Module(
            "BuildTable", name="t",
            parameters={"columns": {"a": [1, 2]}}))
        result = Executor(registry, workers=2,
                          backend="process").execute(workflow)
        assert result.results[module.id].status == "ok"  # tables pickle
        bad = Workflow("unpicklable-param")
        bad_module = bad.add_module(Module(
            "Constant", name="c", parameters={"value": lambda: None}))
        outcome = Executor(registry, workers=2, backend="process",
                           validate=False).execute(bad)
        assert outcome.results[bad_module.id].status == "failed"
        assert outcome.status == "failed"


class TestPersistentCacheWithEngine:
    def test_fresh_executor_reuses_persistent_results(self, registry,
                                                      tmp_path):
        path = str(tmp_path / "memo.db")
        workflow = build_fig1_workflow(size=8)
        first = Executor(registry,
                         cache=PersistentResultCache(path)).execute(workflow)
        assert all(r.status == "ok" for r in first.results.values())
        # a brand-new cache instance (as a fresh process would build)
        second = Executor(registry,
                          cache=PersistentResultCache(path)).execute(
                              workflow)
        assert all(r.status == "cached"
                   for r in second.results.values())
        assert _engine_fingerprint(first)[1] == \
            _engine_fingerprint(second)[1]

    def test_persistent_cache_serves_process_backend(self, registry,
                                                     tmp_path):
        path = str(tmp_path / "memo.db")
        workflow = wide_workflow(branches=4, depth=2, work=50)
        Executor(registry,
                 cache=PersistentResultCache(path)).execute(workflow)
        warm = Executor(registry, cache=PersistentResultCache(path),
                        workers=2, backend="process").execute(workflow)
        assert all(r.status == "cached" for r in warm.results.values())

    def test_manager_cache_path_round_trip(self, tmp_path):
        path = str(tmp_path / "memo.db")
        first = ProvenanceManager(cache_path=path)
        workflow = build_fig1_workflow(size=8)
        first.run(workflow)
        assert first.cache_stats()["hits"] == 0
        second = ProvenanceManager(cache_path=path)
        second.run(build_fig1_workflow(size=8))
        assert second.last_engine_result.executed_modules() == []
        assert second.cache_stats()["hits"] == len(workflow.modules)


class TestCacheLeasesWithEngine:
    """Concurrent runs sharing one cache compute each distinct causal
    signature exactly once (the winners), while the losers replay the
    published entry as ``"cached"`` executions with identical hashes."""

    @pytest.mark.parametrize("name,kwargs", BACKEND_MATRIX)
    def test_shared_file_runs_compute_each_key_once(self, registry,
                                                    tmp_path, name,
                                                    kwargs):
        path = str(tmp_path / "shared.db")
        workflow = wide_workflow(branches=3, depth=2, work=60_000)
        runs = run_pair_sharing_cache(
            registry, lambda: PersistentResultCache(path), workflow,
            **kwargs)
        assert_each_key_computed_once(runs)

    def test_shared_in_memory_cache_runs_compute_each_key_once(
            self, registry):
        cache = ResultCache()
        workflow = wide_workflow(branches=3, depth=2, work=60_000)
        runs = run_pair_sharing_cache(registry, lambda: cache, workflow,
                                      workers=2)
        assert_each_key_computed_once(runs)

    def test_duplicate_signatures_within_one_parallel_run(self, registry):
        """Two identical modules in one ready batch: one computes, the
        other replays it — same statuses a serial run records."""
        workflow = Workflow("twins")
        source = workflow.add_module(Module("Constant", name="src",
                                            parameters={"value": 7.0}))
        for index in range(2):
            twin = workflow.add_module(Module("SpinCompute",
                                              name=f"twin{index}",
                                              parameters={"work": 40_000}))
            workflow.connect(source.id, "value", twin.id, "value")
        result = Executor(registry, cache=ResultCache()).execute(
            workflow, workers=2)
        statuses = sorted(r.status for r in result.results.values()
                          if r.module_id != source.id)
        assert statuses == ["cached", "ok"]

    def test_heartbeat_outlives_short_lease_ttl(self, registry,
                                                monkeypatch):
        """A held lease is refreshed by the executor heartbeat, so slow
        computations are never stolen mid-compute by a waiter."""
        import time as time_module

        import repro.workflow.engine as engine_module
        monkeypatch.setattr(engine_module, "_HEARTBEAT_INTERVAL", 0.02)
        cache = ResultCache()
        executor = Executor(registry, cache=cache)
        assert cache.acquire_lease("k", "holder", ttl=0.1)
        executor._register_lease(cache, "k", "holder")
        time_module.sleep(0.5)   # >> the 0.1s TTL seeded above
        assert not cache.acquire_lease("k", "rival")
        executor._release_lease(cache, "k", "holder")
        assert cache.acquire_lease("k", "rival")

    def test_lease_losers_record_cached_from_winner(self, registry,
                                                    tmp_path):
        path = str(tmp_path / "prov.db")
        workflow = build_chain_workflow(length=3, work=40_000)
        runs = run_pair_sharing_cache(
            registry, lambda: PersistentResultCache(path), workflow)
        by_key = {}
        for run in runs:
            for result in run.results.values():
                if result.status == "ok":
                    by_key[result.cache_key] = result.execution_id
        for run in runs:
            for result in run.results.values():
                if result.status == "cached":
                    assert result.cached_from == by_key[result.cache_key]


class TestPayloadSpill:
    """Large process-job values travel as spill-file references."""

    @staticmethod
    def blob_workflow(size: int) -> Workflow:
        workflow = Workflow("blob")
        blob = workflow.add_module(Module("MakeBlob", name="blob",
                                          parameters={"size": size}))
        passthrough = workflow.add_module(Module("Identity", name="pass"))
        workflow.connect(blob.id, "value", passthrough.id, "value")
        return workflow

    def test_multi_mb_payload_roundtrip(self, registry):
        workflow = self.blob_workflow(3_000_000)
        executor = Executor(registry, payload_spill_threshold=64 * 1024)
        serial = executor.execute(workflow)
        process = executor.execute(workflow, workers=2, backend="process")
        assert process.status == "ok"
        assert {m: r.status for m, r in serial.results.items()} \
            == {m: r.status for m, r in process.results.items()}
        assert {m: {p: r.value_hash for p, r in res.outputs.items()}
                for m, res in serial.results.items()} \
            == {m: {p: r.value_hash for p, r in res.outputs.items()}
                for m, res in process.results.items()}
        final = next(iter(process.results[m] for m in process.results
                          if process.workflow.modules[m].name == "pass"))
        assert len(final.outputs["value"].value) == 3_000_000

    def test_spill_files_cleaned_after_run(self, registry, tmp_path,
                                           monkeypatch):
        import tempfile as real_tempfile

        import repro.workflow.engine as engine_module
        created = []
        original = real_tempfile.mkdtemp

        def tracking_mkdtemp(*args, **kwargs):
            kwargs["dir"] = str(tmp_path)
            path = original(*args, **kwargs)
            created.append(path)
            return path

        monkeypatch.setattr(engine_module.tempfile, "mkdtemp",
                            tracking_mkdtemp)
        workflow = self.blob_workflow(2_000_000)
        result = Executor(registry,
                          payload_spill_threshold=32 * 1024).execute(
            workflow, workers=2, backend="process")
        assert result.status == "ok"
        assert created, "spill directory was never created"
        import os
        assert not any(os.path.exists(path) for path in created)

    def test_zero_threshold_disables_spilling(self, registry,
                                              monkeypatch):
        import repro.workflow.engine as engine_module

        def forbidden_mkdtemp(*args, **kwargs):  # pragma: no cover
            raise AssertionError("spill dir created despite threshold=0")

        monkeypatch.setattr(engine_module.tempfile, "mkdtemp",
                            forbidden_mkdtemp)
        workflow = self.blob_workflow(200_000)
        result = Executor(registry, payload_spill_threshold=0).execute(
            workflow, workers=2, backend="process")
        assert result.status == "ok"

    def test_in_process_backends_never_spill(self, registry,
                                             monkeypatch):
        import repro.workflow.engine as engine_module

        def forbidden_mkdtemp(*args, **kwargs):  # pragma: no cover
            raise AssertionError("in-process run created a spill dir")

        monkeypatch.setattr(engine_module.tempfile, "mkdtemp",
                            forbidden_mkdtemp)
        workflow = self.blob_workflow(2_000_000)
        assert Executor(registry).execute(workflow).status == "ok"
        assert Executor(registry).execute(workflow,
                                          workers=2).status == "ok"


class TestExecutorEnvironmentCache:
    def test_probed_once_per_executor(self, registry, monkeypatch):
        import repro.workflow.engine as engine_module
        calls = []
        real = engine_module.capture_environment
        monkeypatch.setattr(engine_module, "capture_environment",
                            lambda: calls.append(1) or real())
        executor = Executor(registry)
        executor.execute(build_chain_workflow(length=1))
        executor.execute(build_chain_workflow(length=1))
        assert len(calls) == 1

    def test_refresh_reprobes(self, registry):
        executor = Executor(registry)
        first = executor.environment()
        assert executor.environment() is first
        refreshed = executor.refresh_environment()
        assert refreshed is not first
        assert executor.environment() is refreshed


class TestResultCacheThreadSafety:
    def test_concurrent_hammering_keeps_invariants(self):
        cache = ResultCache(max_entries=64)
        errors = []

        def hammer(worker: int):
            try:
                for index in range(500):
                    key = f"k{(worker * 31 + index) % 128}"
                    cache.put(key, CacheEntry(outputs={"v": index},
                                              output_hashes={"v": "h"}))
                    cache.get(key)
                    cache.get(f"k{index % 128}")
                    len(cache)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(n,))
                   for n in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(cache) <= 64
        assert cache.stats.lookups == cache.stats.hits + cache.stats.misses


class TestReplayPlan:
    @pytest.fixture()
    def recorded(self):
        manager = ProvenanceManager()
        workflow = build_fig1_workflow(size=8)
        run = manager.run(workflow)
        return manager, workflow, run

    def test_parameter_change_stales_exact_cone(self, recorded):
        manager, workflow, run = recorded
        iso = module_by_name(workflow, "iso")
        plan = manager.replay_plan(
            run.id, parameter_overrides={iso.id: {"level": 50.0}})
        stale_names = {workflow.modules[m].name for m in plan.stale}
        assert stale_names == {"iso", "render_mesh"}
        reused_names = {workflow.modules[m].name for m in plan.reused}
        assert reused_names == {"load", "hist", "render_hist"}
        assert plan.reasons[iso.id] == "parameter-change"

    def test_reuse_points_at_original_executions(self, recorded):
        manager, workflow, run = recorded
        iso = module_by_name(workflow, "iso")
        plan = manager.replay_plan(
            run.id, parameter_overrides={iso.id: {"level": 50.0}})
        originals = {e.module_id: e.id for e in run.executions}
        for module_id, record in plan.reuse_records.items():
            assert record.source_execution == originals[module_id]
            assert record.outputs  # every reused module carries its values

    def test_invalidated_hash_stales_consumers(self, recorded):
        manager, workflow, run = recorded
        load = module_by_name(workflow, "load")
        volume = run.artifacts_for_module(load.id, "volume")
        plan = manager.replay_plan(
            run.id, invalidated_hashes={volume.value_hash})
        stale_names = {workflow.modules[m].name for m in plan.stale}
        # the producer and every consumer of the bad bytes re-execute
        assert {"load", "hist", "iso"} <= stale_names
        assert "render_mesh" in stale_names  # downstream cone

    def test_force_stales_named_module(self, recorded):
        manager, workflow, run = recorded
        hist = module_by_name(workflow, "hist")
        plan = manager.replay_plan(run.id, force=[hist.id])
        assert plan.reasons[hist.id] == "forced"
        stale_names = {workflow.modules[m].name for m in plan.stale}
        assert stale_names == {"hist", "render_hist"}

    def test_no_change_reuses_everything(self, recorded):
        manager, workflow, run = recorded
        plan = manager.replay_plan(run.id)
        assert plan.stale == []
        assert len(plan.reused) == len(workflow.modules)

    def test_missing_values_force_full_replay(self):
        manager = ProvenanceManager(keep_values=False)
        workflow = build_fig1_workflow(size=8)
        run = manager.run(workflow)
        plan = compute_replay_plan(run)
        assert plan.is_full_replay()
        assert all(reason in ("missing-value", "upstream-stale")
                   for reason in plan.reasons.values())

    def test_connection_fed_changed_input_rejected(self, recorded):
        manager, workflow, run = recorded
        hist = module_by_name(workflow, "hist")
        with pytest.raises(ReplayError):
            manager.replay_plan(
                run.id, changed_inputs={(hist.id, "volume"): None})

    def test_unknown_module_rejected(self, recorded):
        manager, _, run = recorded
        with pytest.raises(ReplayError):
            manager.replay_plan(run.id, force=["mod-nonexistent"])

    def test_failed_run_replays_failed_modules(self, registry):
        manager = ProvenanceManager()
        workflow = build_diamond_workflow(fail_left=True)
        run = manager.run(workflow)
        assert run.status == "failed"
        plan = manager.replay_plan(run.id)
        stale_names = {plan.workflow.modules[m].name for m in plan.stale}
        assert {"left", "join"} <= stale_names
        assert {plan.workflow.modules[m].name
                for m in plan.reused} == {"src", "right"}


class TestManagerRerun:
    def test_only_stale_cone_executes(self):
        manager = ProvenanceManager()
        workflow = build_fig1_workflow(size=8)
        run = manager.run(workflow)
        iso = module_by_name(workflow, "iso")
        new_run, plan = manager.rerun(
            run.id, parameter_overrides={iso.id: {"level": 50.0}})
        statuses = {e.module_name: e.status for e in new_run.executions}
        assert statuses == {"load": "cached", "hist": "cached",
                            "render_hist": "cached", "iso": "ok",
                            "render_mesh": "ok"}
        executed = manager.last_engine_result.executed_modules()
        assert {workflow.modules[m].name for m in executed} == \
            {"iso", "render_mesh"}
        assert new_run.tags["replay_of"] == run.id

    def test_reused_executions_link_to_originals(self):
        manager = ProvenanceManager()
        workflow = build_fig1_workflow(size=8)
        run = manager.run(workflow)
        iso = module_by_name(workflow, "iso")
        new_run, _ = manager.rerun(
            run.id, parameter_overrides={iso.id: {"level": 50.0}})
        originals = {e.module_id: e.id for e in run.executions}
        for execution in new_run.executions:
            if execution.status == "cached":
                assert execution.cached_from == originals[
                    execution.module_id]

    def test_forced_module_recomputes_despite_result_cache(self):
        # force=[...] must bypass the memo cache: an unchanged causal
        # signature would otherwise serve the old result as "cached"
        manager = ProvenanceManager()  # cache enabled (the default)
        workflow = build_fig1_workflow(size=8)
        run = manager.run(workflow)
        iso = module_by_name(workflow, "iso")
        new_run, plan = manager.rerun(run.id, force=[iso.id])
        assert plan.reasons[iso.id] == "forced"
        statuses = {e.module_name: e.status for e in new_run.executions}
        assert statuses["iso"] == "ok"  # genuinely recomputed
        assert statuses["load"] == "cached"

    def test_invalidated_rerun_recomputes_despite_result_cache(self):
        # the memo cache holds exactly the result being repudiated; an
        # invalidation-driven replay must not serve it back
        manager = ProvenanceManager()  # cache enabled (the default)
        workflow = build_fig1_workflow(size=8)
        run = manager.run(workflow)
        iso = module_by_name(workflow, "iso")
        mesh_hash = run.artifacts_for_module(iso.id, "mesh").value_hash
        new_run, plan = manager.rerun(
            run.id, invalidated_hashes={mesh_hash})
        assert plan.stale  # iso + consumers
        executed = set(manager.last_engine_result.executed_modules())
        assert set(plan.stale) == executed  # genuinely recomputed

    def test_replay_run_is_stored(self):
        manager = ProvenanceManager()
        run = manager.run(build_fig1_workflow(size=8))
        before = len(manager.store.list_runs())
        new_run, _ = manager.rerun(run.id)
        assert len(manager.store.list_runs()) == before + 1
        assert manager.get_run(new_run.id).tags["replay_of"] == run.id

    def test_unchanged_outputs_hash_identical(self):
        manager = ProvenanceManager()
        workflow = build_fig1_workflow(size=8)
        run = manager.run(workflow)
        new_run, plan = manager.rerun(run.id)
        assert plan.stale == []
        original = {a.value_hash for a in run.artifacts.values()}
        replayed = {a.value_hash for a in new_run.artifacts.values()}
        assert replayed == original

    def test_same_session_rerun_reuses_despite_valueless_store(self,
                                                               tmp_path):
        # the DocumentStore persists metadata only by default; planning
        # must fall back to the in-session captured run, which has values
        from repro.storage import DocumentStore
        manager = ProvenanceManager(store=DocumentStore(tmp_path / "docs"))
        workflow = build_fig1_workflow(size=8)
        run = manager.run(workflow)
        iso = module_by_name(workflow, "iso")
        _, plan = manager.rerun(
            run.id, parameter_overrides={iso.id: {"level": 50.0}})
        assert len(plan.reused) == 3
        assert len(plan.stale) == 2

    def test_parallel_rerun_matches_serial(self):
        manager = ProvenanceManager(use_cache=False)
        workflow = build_fig1_workflow(size=8)
        run = manager.run(workflow)
        iso = module_by_name(workflow, "iso")
        serial_run, _ = manager.rerun(
            run.id, parameter_overrides={iso.id: {"level": 50.0}})
        parallel_run, _ = manager.rerun(
            run.id, parameter_overrides={iso.id: {"level": 50.0}},
            workers=4)
        assert ({e.module_name: e.status for e in serial_run.executions}
                == {e.module_name: e.status
                    for e in parallel_run.executions})


class TestPartialRerunApp:
    def test_standalone_partial_rerun(self, registry):
        manager = ProvenanceManager()
        workflow = build_fig1_workflow(size=8)
        run = manager.run(workflow)
        iso = module_by_name(workflow, "iso")
        new_run, plan = partial_rerun(
            run, manager.registry,
            parameter_overrides={iso.id: {"level": 50.0}})
        assert len(plan.stale) == 2
        assert new_run.tags["replay_of"] == run.id
        assert new_run.tags["replay_reused"] == 3

    def test_replay_events_balanced_start_finish(self, registry):
        manager = ProvenanceManager()
        workflow = build_fig1_workflow(size=8)
        run = manager.run(workflow)
        iso = module_by_name(workflow, "iso")
        manager.rerun(run.id, parameter_overrides={iso.id: {"level": 50.0}})
        replay_id = manager.last_engine_result.run_id
        events = manager.capture.normalized_journal(replay_id)
        kinds = [event for event, _, _ in events]
        # reused, cached and computed modules all emit start AND finish
        assert kinds.count("module-start") == len(workflow.modules)
        assert kinds.count("module-finish") == len(workflow.modules)

    def test_replay_invalidated_repairs_affected_only(self):
        manager = ProvenanceManager()
        vis = build_fig1_workflow(size=8)
        affected = manager.run(vis)
        clean = manager.run(build_chain_workflow(length=2))
        load = module_by_name(vis, "load")
        volume = affected.artifacts_for_module(load.id, "volume")
        repaired = replay_invalidated(
            manager.store, manager.registry, volume.value_hash)
        assert set(repaired) == {affected.id}
        new_run, plan = repaired[affected.id]
        assert clean.id not in repaired
        assert new_run.tags["replay_of"] == affected.id
        assert plan.stale  # the tainted cone actually re-executed

    def test_replay_invalidated_changed_inputs_scoped_per_run(self):
        # module ids are per-workflow-instance; a changed-input key for
        # one run must not abort the repair of the others
        manager = ProvenanceManager(use_cache=False)
        first_wf = Workflow("scripted")
        first_scale = first_wf.add_module(Module("Scale", name="s",
                                                 parameters={"factor": 2.0}))
        second_wf = Workflow("scripted")
        second_scale = second_wf.add_module(Module(
            "Scale", name="s", parameters={"factor": 2.0}))
        first = manager.run(first_wf,
                            inputs={(first_scale.id, "value"): 7.0})
        manager.run(second_wf, inputs={(second_scale.id, "value"): 7.0})
        bad = first.external_artifacts()[0].value_hash
        repaired = replay_invalidated(
            manager.store, manager.registry, bad,
            changed_inputs={(first_scale.id, "value"): 9.0,
                            (second_scale.id, "value"): 9.0})
        assert len(repaired) == 2
        for new_run, _ in repaired.values():
            values = set(new_run.values.values())
            assert 9.0 in values and 18.0 in values


class TestSerialOrderFidelity:
    def test_serial_timestamps_follow_canonical_order(self, registry):
        # the serial scheduler must execute in exactly run.order, so a
        # started-ordered reload reproduces the canonical execution list
        for seed in range(5):
            workflow = random_workflow(modules=16, width=4, seed=seed,
                                       work=5)
            result = Executor(registry).execute(workflow)
            started = sorted(result.order,
                             key=lambda m: (result.results[m].started,
                                            result.results[m].execution_id))
            assert started == result.order

    def test_relational_roundtrip_preserves_parallel_order(self, tmp_path):
        from repro.storage import RelationalStore
        store = RelationalStore(str(tmp_path / "prov.db"))
        manager = ProvenanceManager(store=store, use_cache=False)
        run = manager.run(wide_workflow(branches=6, depth=2, sleep=0.002),
                          workers=4)
        loaded = store.load_run(run.id)
        assert ([e.id for e in loaded.executions]
                == [e.id for e in run.executions])
        assert loaded.to_dict() == run.to_dict()
