"""Batched capture pipeline: sync/batched parity, back-pressure policies,
streaming ingest, and the observed-process workload.

The contract under test: batched capture is an *optimization of when* the
journal and the run are materialized — never of *what* is recorded.  A
batched capture must produce byte-identical provenance to the synchronous
path on every scheduler backend; the ``block`` policy must never lose
anything; ``drop-detail``/``sample`` may thin module-level journal detail
but never executions or bindings.
"""

import json
import sys
import time

import pytest

from repro.core import (CAPTURE_POLICIES, ProvenanceCapture,
                        ProvenanceManager, run_from_result,
                        stream_run_to_store)
from repro.core.capture import CaptureEvent
from repro.storage.base import BufferedRunStream, StoreError
from repro.storage.documents import DocumentStore
from repro.storage.memory import MemoryStore
from repro.storage.relational import RelationalStore
from repro.storage.triples import TripleProvenanceStore
from repro.workflow import Executor
from repro.workflow.modules.observed import (ObservedProcessSession,
                                             file_digest)
from repro.workloads import random_workflow, wide_workflow
from tests.conftest import build_chain_workflow

#: (label, executor kwargs) — the PR-4 determinism matrix.
BACKEND_MATRIX = [
    ("serial", {}),
    ("thread", {"workers": 4}),
    ("process", {"workers": 2, "backend": "process"}),
]


def _normalized_dict(run):
    """``run.to_dict()`` as canonical JSON with artifact ids renamed in
    first-seen order — the byte-identical comparison form (artifact ids
    are the only freshly generated component of a materialized run)."""
    rename = {}
    for execution in run.executions:
        for binding in (*execution.inputs, *execution.outputs):
            rename.setdefault(binding.artifact_id, f"art-{len(rename):06d}")
    for artifact_id in run.artifacts:
        rename.setdefault(artifact_id, f"art-{len(rename):06d}")
    text = json.dumps(run.to_dict(), sort_keys=True)
    for old, new in rename.items():
        text = text.replace(old, new)
    return text


def _provenance_fingerprint(run):
    """Timing/id-independent digest of a captured WorkflowRun."""
    executions = [(e.module_id, e.status,
                   sorted((b.port, run.artifacts[b.artifact_id].value_hash)
                          for b in e.inputs),
                   sorted((b.port, run.artifacts[b.artifact_id].value_hash)
                          for b in e.outputs))
                  for e in run.executions]
    return (run.status, executions,
            sorted(a.value_hash for a in run.artifacts.values()))


class TestBatchedSyncParity:
    def test_same_engine_run_byte_identical(self, registry):
        """Sync and batched captures attached to the same executor see the
        same events and must materialize byte-identical runs."""
        sync = ProvenanceCapture(registry=registry)
        batched = ProvenanceCapture(registry=registry, queue_size=256)
        executor = Executor(registry, listeners=[sync, batched])
        result = executor.execute(build_chain_workflow(length=5, work=5))
        with batched:
            assert (_normalized_dict(sync.last_run())
                    == _normalized_dict(batched.last_run()))
            assert (sync.normalized_journal(result.run_id)
                    == batched.normalized_journal(result.run_id))

    @pytest.mark.parametrize("label,kwargs", BACKEND_MATRIX,
                             ids=[label for label, _ in BACKEND_MATRIX])
    def test_matrix_backend_parity(self, registry, label, kwargs):
        workflow = wide_workflow(branches=4, depth=2, work=20)
        prints = {}
        for mode, queue_size in (("sync", 0), ("batched", 128)):
            capture = ProvenanceCapture(registry=registry,
                                        queue_size=queue_size)
            with capture:
                executor = Executor(registry, listeners=[capture],
                                    **kwargs)
                executor.execute(workflow)
                prints[mode] = _provenance_fingerprint(capture.last_run())
        assert prints["sync"] == prints["batched"]

    def test_multiple_runs_all_captured(self, registry):
        capture = ProvenanceCapture(registry=registry, queue_size=16)
        with capture:
            executor = Executor(registry, listeners=[capture])
            for _ in range(3):
                executor.execute(build_chain_workflow(length=2, work=1))
            capture.flush()
            assert len(capture.runs) == 3
            assert capture.stats.runs == 3

    def test_close_idempotent_and_reverts_to_sync(self, registry):
        capture = ProvenanceCapture(registry=registry, queue_size=16)
        executor = Executor(registry, listeners=[capture])
        executor.execute(build_chain_workflow(length=2, work=1))
        capture.close()
        capture.close()
        assert not capture.batched
        # post-close events are processed inline (sync mode)
        executor.execute(build_chain_workflow(length=2, work=1))
        assert len(capture.runs) == 2


class TestBackPressure:
    def test_policy_validation(self, registry):
        with pytest.raises(ValueError):
            ProvenanceCapture(registry=registry, policy="bogus")
        with pytest.raises(ValueError):
            ProvenanceCapture(registry=registry, queue_size=-1)
        assert set(CAPTURE_POLICIES) == {"block", "drop-detail", "sample"}

    def test_block_never_loses_anything(self, registry):
        """A one-slot queue with a slow drainer forces back-pressure on
        every event; with ``block`` the journal still ends complete."""
        capture = ProvenanceCapture(registry=registry, queue_size=1)
        capture.drain_delay = 0.001
        workflow = build_chain_workflow(length=5, work=1)
        with capture:
            result = Executor(registry,
                              listeners=[capture]).execute(workflow)
            capture.flush()
            journal = capture.normalized_journal(result.run_id)
            kinds = [event for event, _, _ in journal]
            assert kinds.count("module-start") == len(workflow.modules)
            assert kinds.count("module-finish") == len(workflow.modules)
            assert capture.stats.dropped == 0
            assert capture.stats.sampled_out == 0
            assert len(capture.last_run().executions) == \
                len(workflow.modules)

    def test_drop_detail_thins_journal_not_executions(self, registry):
        capture = ProvenanceCapture(registry=registry, queue_size=1,
                                    policy="drop-detail")
        capture.drain_delay = 0.002
        workflow = build_chain_workflow(length=8, work=1)
        with capture:
            result = Executor(registry,
                              listeners=[capture]).execute(workflow)
            capture.flush()
            # detail was dropped under pressure...
            assert capture.stats.dropped > 0
            journal = capture.normalized_journal(result.run_id)
            kinds = [event for event, _, _ in journal]
            assert kinds.count("module-start") < len(workflow.modules)
            # ...but run lifecycle events and every execution survive
            assert kinds.count("run-start") == 1
            assert kinds.count("run-finish") == 1
            run = capture.last_run()
            assert len(run.executions) == len(workflow.modules)
            assert all(e.inputs or e.outputs for e in run.executions)

    def test_sample_thins_at_source(self, registry):
        capture = ProvenanceCapture(registry=registry, queue_size=64,
                                    policy="sample", sample_every=4)
        workflow = build_chain_workflow(length=10, work=1)
        with capture:
            result = Executor(registry,
                              listeners=[capture]).execute(workflow)
            capture.flush()
            assert capture.stats.sampled_out > 0
            journal = capture.normalized_journal(result.run_id)
            kinds = [event for event, _, _ in journal]
            module_events = (kinds.count("module-start")
                             + kinds.count("module-finish"))
            # 1-in-4 sampling keeps roughly a quarter of 2N module events
            assert module_events <= len(workflow.modules)
            assert kinds.count("run-start") == 1
            assert kinds.count("run-finish") == 1
            # bindings/executions are never sampled away
            run = capture.last_run()
            assert len(run.executions) == len(workflow.modules)
            assert _provenance_fingerprint(run)[0] == "ok"

    def test_drainer_error_surfaces_on_flush(self, registry):
        capture = ProvenanceCapture(registry=registry, queue_size=8)
        capture.store = object()  # save_run missing -> drainer AttributeError
        executor = Executor(registry, listeners=[capture])
        executor.execute(build_chain_workflow(length=2, work=1))
        with pytest.raises(AttributeError):
            capture.flush()
        capture.close()


class TestJournalOrdering:
    def test_seq_defines_order_under_constant_clock(self, registry,
                                                    monkeypatch):
        """Wall-clock ties (or reversals) must not scramble the journal:
        ``seq`` is the ordering key."""
        capture = ProvenanceCapture(registry=registry)
        frozen = time.time()
        monkeypatch.setattr("repro.core.capture.time",
                            type("T", (), {"time": staticmethod(
                                lambda: frozen)}))
        executor = Executor(registry, listeners=[capture])
        result = executor.execute(build_chain_workflow(length=4, work=1))
        events = capture.journal_for_run(result.run_id)
        seqs = [event.seq for event in events]
        assert seqs == sorted(seqs)
        assert len(set(seqs)) == len(seqs)
        assert all(event.at == frozen for event in events)
        assert events[0].event == "run-start"
        assert events[-1].event == "run-finish"

    def test_seq_monotonic_across_runs(self, registry):
        capture = ProvenanceCapture(registry=registry)
        executor = Executor(registry, listeners=[capture])
        first = executor.execute(build_chain_workflow(length=2, work=1))
        second = executor.execute(build_chain_workflow(length=2, work=1))
        first_seqs = [e.seq for e in capture.journal_for_run(first.run_id)]
        second_seqs = [e.seq
                       for e in capture.journal_for_run(second.run_id)]
        assert max(first_seqs) < min(second_seqs)

    def test_capture_event_default_seq(self):
        event = CaptureEvent(at=1.0, event="x", run_id="r")
        assert event.seq == 0


def _captured_run(registry, store=None, **capture_kwargs):
    capture = ProvenanceCapture(registry=registry, store=store,
                                **capture_kwargs)
    executor = Executor(registry, listeners=[capture])
    executor.execute(random_workflow(modules=12, width=4, seed=5, work=2))
    run = capture.last_run()
    capture.close()
    return run


class TestStreamingIngest:
    def _stores(self, tmp_path):
        return [("memory", MemoryStore()),
                ("relational", RelationalStore(store_values=True)),
                ("triples", TripleProvenanceStore()),
                ("documents", DocumentStore(tmp_path / "docs"))]

    def test_stream_matches_save_run_on_all_backends(self, registry,
                                                     tmp_path):
        """Streamed ingest reloads exactly what a monolithic save_run
        reloads, on every backend (backends with lossy round-trips are
        held to their own save_run as the reference)."""
        run = _captured_run(registry)
        references = dict(self._stores(tmp_path / "ref"))
        for label, store in self._stores(tmp_path / "stream"):
            references[label].save_run(run)
            stream_run_to_store(run, store, batch=3)
            assert (store.load_run(run.id).to_dict()
                    == references[label].load_run(run.id).to_dict()), label

    def test_relational_reloads_identical_with_values(self, registry):
        store = RelationalStore(store_values=True)
        run = _captured_run(registry, store=store, queue_size=32,
                            stream_batch=2)
        reloaded = store.load_run(run.id)
        assert reloaded.to_dict() == run.to_dict()
        assert reloaded.values == run.values

    def test_relational_streams_in_batches(self, registry):
        """Executions become visible batch by batch: peak ingest state is
        bounded by the batch size, not the run size."""
        run = _captured_run(registry)
        store = RelationalStore()
        writer = store.save_run_stream(run)
        # header row is visible immediately, with zero executions
        assert store.has_run(run.id)
        assert store.load_run(run.id).executions == []
        batch = run.executions[:4]
        for execution in batch:
            for binding in (*execution.inputs, *execution.outputs):
                artifact = run.artifacts[binding.artifact_id]
                writer.add_artifact(artifact)
            writer.add_execution(execution)
        writer.flush()
        assert len(store.load_run(run.id).executions) == 4
        for execution in run.executions[4:]:
            for binding in (*execution.inputs, *execution.outputs):
                writer.add_artifact(run.artifacts[binding.artifact_id])
            writer.add_execution(execution)
        writer.finish(status=run.status, finished=run.finished,
                      tags=run.tags)
        assert writer.flushes >= 1
        reloaded = store.load_run(run.id)
        assert [e.id for e in reloaded.executions] == \
            [e.id for e in run.executions]
        assert reloaded.status == run.status

    def test_relational_stream_lineage_parity(self, registry):
        """Incrementally derived lineage edges match the whole-run path."""
        run = _captured_run(registry)
        streamed = RelationalStore()
        stream_run_to_store(run, streamed, batch=2)
        monolithic = RelationalStore()
        monolithic.save_run(run)
        for artifact in run.artifacts.values():
            assert (streamed.lineage_closure(artifact.id)
                    == monolithic.lineage_closure(artifact.id))

    def test_abort_removes_partial_run(self, registry):
        run = _captured_run(registry)
        for store in (RelationalStore(), MemoryStore()):
            writer = store.save_run_stream(run)
            writer.add_execution(run.executions[0])
            writer.flush()
            writer.abort()
            assert not store.has_run(run.id)
            with pytest.raises(StoreError):
                writer.add_execution(run.executions[0])

    def test_buffered_stream_counts_flushes(self, registry):
        run = _captured_run(registry)
        store = MemoryStore()
        writer = store.save_run_stream(run)
        assert isinstance(writer, BufferedRunStream)
        stream_run_to_store(run, store, batch=2)
        assert store.load_run(run.id).to_dict() == run.to_dict()

    def test_context_manager_finish_and_abort(self, registry):
        run = _captured_run(registry)
        store = RelationalStore()
        with store.save_run_stream(run) as writer:
            for execution in run.executions:
                for binding in (*execution.inputs, *execution.outputs):
                    writer.add_artifact(run.artifacts[binding.artifact_id])
                writer.add_execution(execution)
        assert store.has_run(run.id)
        other = MemoryStore()
        with pytest.raises(RuntimeError):
            with other.save_run_stream(run):
                raise RuntimeError("boom")
        assert not other.has_run(run.id)

    def test_manager_stream_batch_end_to_end(self, registry):
        store = RelationalStore(store_values=True)
        with ProvenanceManager(registry=registry, store=store,
                               capture_queue=64,
                               stream_batch=3) as manager:
            run = manager.run(random_workflow(modules=10, seed=9, work=2))
        assert store.load_run(run.id).to_dict() == run.to_dict()


class TestObservedProcess:
    def test_observe_records_command(self, tmp_path):
        out = tmp_path / "out.txt"
        session = ObservedProcessSession(name="t")
        execution = session.observe(
            [sys.executable, "-c", f"open(r'{out}', 'w').write('data')"],
            writes=[str(out)])
        run = session.finish()
        assert run.status == "ok"
        assert execution.status == "ok"
        ports = {binding.port for binding in execution.outputs}
        assert {"exit_code", "stdout", "stderr",
                f"write:{out}"} <= ports
        digest, size = file_digest(str(out))
        write_binding = next(b for b in execution.outputs
                             if b.port.startswith("write:"))
        assert run.artifacts[write_binding.artifact_id].value_hash == digest
        assert size == 4

    def test_read_write_chain_dedups_by_hash(self, tmp_path):
        path = tmp_path / "f.txt"
        session = ObservedProcessSession(name="chain")
        session.observe(
            [sys.executable, "-c", f"open(r'{path}', 'w').write('x')"],
            writes=[str(path)])
        session.observe(
            [sys.executable, "-c", f"print(open(r'{path}').read())"],
            reads=[str(path)])
        run = session.finish()
        writer = next(b for b in run.executions[0].outputs
                      if b.port.startswith("write:"))
        reader = next(b for b in run.executions[1].inputs
                      if b.port.startswith("read:"))
        assert writer.artifact_id == reader.artifact_id

    def test_nonzero_exit_recorded_as_failed(self):
        session = ObservedProcessSession(name="fail")
        execution = session.observe(
            [sys.executable, "-c", "raise SystemExit(7)"])
        run = session.finish()
        assert execution.status == "failed"
        assert "exit code 7" in execution.error
        assert run.status == "failed"

    def test_spawn_failure_recorded_then_raised(self):
        session = ObservedProcessSession(name="boom")
        with pytest.raises(OSError):
            session.observe(["/nonexistent/never-a-binary"])
        run = session.finish()
        assert run.executions[0].status == "failed"
        assert run.executions[0].error

    def test_session_streams_to_relational(self, tmp_path):
        store = RelationalStore()
        session = ObservedProcessSession(name="stream", store=store,
                                         stream_batch=1)
        for index in range(3):
            session.observe([sys.executable, "-c",
                             f"print({index})"])
        run = session.finish()
        assert store.load_run(run.id).to_dict() == run.to_dict()

    def test_session_abort_removes_streamed_state(self):
        store = RelationalStore()
        session = ObservedProcessSession(name="gone", store=store,
                                         stream_batch=1)
        session.observe([sys.executable, "-c", "print(1)"])
        session.abort()
        assert not store.has_run(session.run.id)

    def test_missing_declared_file_gets_sentinel_digest(self, tmp_path):
        missing = tmp_path / "never-written.txt"
        digest_a, size = file_digest(str(missing))
        digest_b, _ = file_digest(str(tmp_path / "other-missing.txt"))
        assert size == 0
        assert digest_a != digest_b  # path-scoped: absent files never alias

    def test_observed_command_module_in_workflow(self, registry):
        manager = ProvenanceManager(registry=registry)
        workflow = manager.new_workflow("obs")
        manager.add_module(workflow, "ObservedCommand",
                           parameters={"argv": [sys.executable, "-c",
                                                "print('out')"]})
        run = manager.run(workflow)
        assert run.status == "ok"
        execution = run.executions[0]
        assert execution.module_type == "ObservedCommand"
        ports = {binding.port for binding in execution.outputs}
        assert {"exit_code", "stdout_digest", "stderr_digest",
                "writes"} <= ports

    def test_observed_command_not_memoized(self, registry):
        assert registry.get("ObservedCommand").deterministic is False

    def test_cli_observe(self, capsys):
        from repro.cli import main
        code = main(["observe", "--", sys.executable, "-c", "print('x')"])
        captured = capsys.readouterr()
        assert code == 0
        assert "observed run" in captured.out
