"""Tests for evolution provenance: actions, vistrail, diff, matching,
analogy."""

import pytest

from repro.evolution import (Action, AddConnection, AddModule,
                             DeleteConnection, DeleteModule, MoveModule,
                             RenameModule, SetParameter, UnsetParameter,
                             Vistrail, action_from_dict, action_to_dict,
                             apply_by_analogy, diff_workflows,
                             match_workflows)
from repro.workflow import Module, SpecError, Workflow
from repro.workloads import build_fig2_pair


def simple_vistrail():
    vistrail = Vistrail("demo")
    source = AddModule.of("NumberConstant", "source", {"value": 2.0})
    scale = AddModule.of("Scale", "scale", {"factor": 3.0})
    version = vistrail.add_actions([
        source, scale,
        AddConnection.of(source.module_id, "value",
                         scale.module_id, "value"),
    ], tag="v1")
    return vistrail, source, scale, version


class TestActions:
    def test_add_module_apply_and_inverse(self):
        workflow = Workflow()
        action = AddModule.of("Constant", "c", {"value": 1})
        action.apply(workflow)
        assert action.module_id in workflow.modules
        inverse = action.inverse(workflow)
        inverse.apply(workflow)
        assert action.module_id not in workflow.modules

    def test_delete_module_inverse_restores_state(self):
        workflow = Workflow()
        add = AddModule.of("Constant", "c", {"value": 7},
                           position=(1.0, 2.0))
        add.apply(workflow)
        delete = DeleteModule(module_id=add.module_id)
        inverse = delete.inverse(workflow)
        delete.apply(workflow)
        inverse.apply(workflow)
        module = workflow.modules[add.module_id]
        assert module.parameters == {"value": 7}
        assert module.position == (1.0, 2.0)

    def test_set_parameter_inverse_roundtrip(self):
        workflow = Workflow()
        add = AddModule.of("Constant", "c", {"value": 1})
        add.apply(workflow)
        action = SetParameter(module_id=add.module_id, name="value",
                              value=99)
        inverse = action.inverse(workflow)
        action.apply(workflow)
        inverse.apply(workflow)
        assert workflow.modules[add.module_id].parameters["value"] == 1

    def test_set_parameter_inverse_on_fresh_parameter(self):
        workflow = Workflow()
        add = AddModule.of("Constant", "c")
        add.apply(workflow)
        action = SetParameter(module_id=add.module_id, name="value",
                              value=5)
        inverse = action.inverse(workflow)
        assert isinstance(inverse, UnsetParameter)
        action.apply(workflow)
        inverse.apply(workflow)
        assert "value" not in workflow.modules[add.module_id].parameters

    def test_connection_actions(self):
        workflow = Workflow()
        a = AddModule.of("Constant", "a")
        b = AddModule.of("Identity", "b")
        a.apply(workflow)
        b.apply(workflow)
        connect = AddConnection.of(a.module_id, "value",
                                   b.module_id, "value")
        connect.apply(workflow)
        assert len(workflow.connections) == 1
        inverse = connect.inverse(workflow)
        inverse.apply(workflow)
        assert workflow.connections == {}

    def test_rename_and_move_inverses(self):
        workflow = Workflow()
        add = AddModule.of("Constant", "original")
        add.apply(workflow)
        rename = RenameModule(module_id=add.module_id, name="new")
        rename_inverse = rename.inverse(workflow)
        rename.apply(workflow)
        assert workflow.modules[add.module_id].name == "new"
        rename_inverse.apply(workflow)
        assert workflow.modules[add.module_id].name == "original"
        move = MoveModule(module_id=add.module_id, position=(5.0, 5.0))
        move_inverse = move.inverse(workflow)
        move.apply(workflow)
        move_inverse.apply(workflow)
        assert workflow.modules[add.module_id].position == (0.0, 0.0)

    def test_action_serialization_roundtrip(self):
        actions = [
            AddModule.of("Constant", "c", {"value": [1, 2]}),
            DeleteModule(module_id="mod-x"),
            AddConnection.of("mod-a", "out", "mod-b", "in"),
            DeleteConnection(connection_id="conn-x"),
            SetParameter(module_id="mod-a", name="p", value={"n": 1}),
            UnsetParameter(module_id="mod-a", name="p"),
            RenameModule(module_id="mod-a", name="z"),
            MoveModule(module_id="mod-a", position=(1.5, -2.5)),
        ]
        for action in actions:
            restored = action_from_dict(action_to_dict(action))
            assert restored == action

    def test_unknown_action_type_rejected(self):
        with pytest.raises(ValueError):
            action_from_dict({"action": "Teleport"})


class TestVistrail:
    def test_materialize_current(self):
        vistrail, source, scale, _ = simple_vistrail()
        workflow = vistrail.materialize(vistrail.current)
        assert len(workflow.modules) == 2
        assert len(workflow.connections) == 1

    def test_root_is_empty(self):
        vistrail, *_ = simple_vistrail()
        assert len(vistrail.materialize(Vistrail.ROOT).modules) == 0

    def test_branching(self):
        vistrail, source, scale, v1 = simple_vistrail()
        branch_a = vistrail.add_action(SetParameter(
            module_id=scale.module_id, name="factor", value=10.0),
            parent=v1, tag="a")
        branch_b = vistrail.add_action(SetParameter(
            module_id=scale.module_id, name="factor", value=20.0),
            parent=v1, tag="b")
        factor_a = vistrail.materialize(branch_a).modules[
            scale.module_id].parameters["factor"]
        factor_b = vistrail.materialize(branch_b).modules[
            scale.module_id].parameters["factor"]
        assert (factor_a, factor_b) == (10.0, 20.0)
        assert set(vistrail.children(v1)) == {branch_a, branch_b}
        assert vistrail.common_ancestor(branch_a, branch_b) == v1

    def test_materialized_copies_are_independent(self):
        vistrail, source, scale, v1 = simple_vistrail()
        first = vistrail.materialize(v1)
        first.set_parameter(scale.module_id, "factor", 999.0)
        second = vistrail.materialize(v1)
        assert second.modules[scale.module_id].parameters["factor"] == 3.0

    def test_invalid_action_rejected_and_tree_unchanged(self):
        vistrail, *_ = simple_vistrail()
        before = len(vistrail)
        with pytest.raises(SpecError):
            vistrail.add_action(DeleteModule(module_id="mod-ghost"))
        assert len(vistrail) == before

    def test_tags_and_checkout(self):
        vistrail, source, scale, v1 = simple_vistrail()
        assert vistrail.find_tag("v1") == v1
        assert vistrail.find_tag("nope") is None
        workflow = vistrail.checkout(v1)
        assert vistrail.current == v1
        assert len(workflow.modules) == 2

    def test_actions_between_and_undo(self):
        vistrail, source, scale, v1 = simple_vistrail()
        v2 = vistrail.add_action(SetParameter(
            module_id=scale.module_id, name="factor", value=5.0))
        actions = vistrail.actions_between(v1, v2)
        assert len(actions) == 1
        undos = vistrail.undo_actions(v2, v1)
        workflow = vistrail.materialize(v2)
        for undo in undos:
            undo.apply(workflow)
        assert workflow.signature() \
            == vistrail.materialize(v1).signature()

    def test_depth_and_log(self):
        vistrail, source, scale, v1 = simple_vistrail()
        assert vistrail.depth(v1) == 3
        log = vistrail.log(v1)
        assert log[0] == "(root)"
        assert "add module source" in log[1]

    def test_serialization_roundtrip(self):
        vistrail, source, scale, v1 = simple_vistrail()
        restored = Vistrail.from_dict(vistrail.to_dict())
        assert restored.current == vistrail.current
        assert restored.materialize(v1).signature() \
            == vistrail.materialize(v1).signature()
        assert len(restored) == len(vistrail)

    def test_tree_ascii_marks_current(self):
        vistrail, *_ = simple_vistrail()
        assert "*" in vistrail.tree_ascii()


class TestDiffAndMatching:
    def test_identical_workflows_empty_diff(self):
        before, _ = build_fig2_pair()
        diff = diff_workflows(before, before.copy())
        assert diff.is_empty()

    def test_fig2_pair_diff(self):
        before, after = build_fig2_pair()
        diff = diff_workflows(before, after)
        assert diff.summary() == {
            "added_modules": 1, "deleted_modules": 0,
            "parameter_changes": 0, "renamed_modules": 0,
            "added_connections": 2, "deleted_connections": 1}

    def test_parameter_change_detected(self):
        before, _ = build_fig2_pair()
        after = before.copy()
        iso = next(m for m in after.modules.values() if m.name == "iso")
        after.set_parameter(iso.id, "level", 123.0)
        diff = diff_workflows(before, after)
        assert len(diff.parameter_changes) == 1
        change = diff.parameter_changes[0]
        assert (change.old_value, change.new_value) == (80.0, 123.0)

    def test_describe_lists_changes(self):
        before, after = build_fig2_pair()
        lines = diff_workflows(before, after).describe(before, after)
        assert any("add smooth" in line for line in lines)

    def test_similarity_matching_unrelated_ids(self):
        before, _ = build_fig2_pair()
        # rebuild the same structure with entirely fresh ids
        clone = Workflow("clone")
        id_map = {}
        for module in before.modules.values():
            copy = clone.add_module(Module(module.type_name,
                                           name=module.name,
                                           parameters=dict(
                                               module.parameters)))
            id_map[module.id] = copy.id
        for connection in before.connections.values():
            clone.connect(id_map[connection.source_module],
                          connection.source_port,
                          id_map[connection.target_module],
                          connection.target_port)
        result = match_workflows(before, clone)
        assert len(result.mapping) == len(before.modules)
        for a_id, b_id in result.mapping.items():
            assert before.modules[a_id].type_name \
                == clone.modules[b_id].type_name

    def test_matching_respects_structure(self):
        # two Identity modules: position in the chain must disambiguate
        first = Workflow("a")
        a1 = first.add_module(Module("Constant", name="start"))
        a2 = first.add_module(Module("Identity", name="mid"))
        a3 = first.add_module(Module("Identity", name="end"))
        first.connect(a1.id, "value", a2.id, "value")
        first.connect(a2.id, "value", a3.id, "value")
        second = first.copy()
        result = match_workflows(first, second)
        assert result.mapping[a2.id] == a2.id
        assert result.mapping[a3.id] == a3.id


class TestAnalogy:
    def test_fig2_scenario_transfers_smoothing(self):
        before, after = build_fig2_pair()
        other = Workflow("other-vis")
        load = other.add_module(Module("LoadVolume", name="load",
                                       parameters={"size": 10}))
        iso = other.add_module(Module("IsosurfaceExtract", name="iso",
                                      parameters={"level": 95.0}))
        render = other.add_module(Module("RenderMesh", name="render"))
        other.connect(load.id, "volume", iso.id, "volume")
        other.connect(iso.id, "mesh", render.id, "mesh")

        result = apply_by_analogy(before, after, other)
        assert result.succeeded()
        types = sorted(m.type_name for m in result.workflow.modules.values())
        assert "SmoothMesh" in types
        # smooth sits between iso and render in the refined workflow
        smooth = next(m for m in result.workflow.modules.values()
                      if m.type_name == "SmoothMesh")
        refined = result.workflow
        assert iso.id in refined.predecessors(smooth.id)
        assert render.id in refined.successors(smooth.id)

    def test_original_untouched(self):
        before, after = build_fig2_pair()
        other = before.copy()
        module_count = len(other.modules)
        apply_by_analogy(before, after, other)
        assert len(other.modules) == module_count

    def test_refined_workflow_executes(self, registry):
        from repro.workflow import Executor
        before, after = build_fig2_pair()
        other = Workflow("runnable")
        load = other.add_module(Module("LoadVolume", name="load",
                                       parameters={"size": 8}))
        iso = other.add_module(Module("IsosurfaceExtract", name="iso",
                                      parameters={"level": 80.0}))
        render = other.add_module(Module("RenderMesh", name="render"))
        other.connect(load.id, "volume", iso.id, "volume")
        other.connect(iso.id, "mesh", render.id, "mesh")
        result = apply_by_analogy(before, after, other)
        run = Executor(registry).execute(result.workflow)
        assert run.status == "ok"

    def test_unmatchable_context_reported(self):
        before, after = build_fig2_pair()
        unrelated = Workflow("unrelated")
        unrelated.add_module(Module("SensorIngest", name="ingest"))
        result = apply_by_analogy(before, after, unrelated)
        assert not result.succeeded()
        assert result.skipped

    def test_parameter_change_analogy(self):
        before, _ = build_fig2_pair()
        after = before.copy()
        iso_before = next(m for m in after.modules.values()
                          if m.name == "iso")
        after.set_parameter(iso_before.id, "level", 42.0)
        other = before.copy()
        result = apply_by_analogy(before, after, other)
        assert result.parameter_changes
        iso_other = next(m for m in result.workflow.modules.values()
                         if m.name == "iso")
        assert iso_other.parameters["level"] == 42.0
