"""Tests for ProvQL, the SPARQL-like engine, provenance facts and QBE."""

import pytest

from repro.core import ProvenanceCapture
from repro.query import (ProvQLError, SparqlError, V, execute,
                         execute_sparql, find_matches, parse, parse_sparql,
                         provenance_program, run_to_facts, select)
from repro.query.datalog import Var, parse_atom
from repro.query.datalog import query as datalog_query
from repro.storage import TripleStore, run_to_triples
from repro.workflow import Executor, Module, Workflow
from tests.conftest import build_fig1_workflow, module_by_name


@pytest.fixture(scope="module")
def fig1(registry):
    workflow = build_fig1_workflow(size=8)
    capture = ProvenanceCapture(registry=registry)
    Executor(registry, listeners=[capture]).execute(workflow)
    return workflow, capture.last_run()


class TestProvQL:
    def test_executions_listing(self, fig1):
        _, run = fig1
        rows = execute("EXECUTIONS", run)
        assert len(rows) == 5
        assert {"id", "module.type", "status",
                "duration"} <= set(rows[0])

    def test_where_conditions(self, fig1):
        _, run = fig1
        rows = execute("EXECUTIONS WHERE module.type = "
                       "'IsosurfaceExtract'", run)
        assert len(rows) == 1
        rows = execute("EXECUTIONS WHERE module.type = "
                       "'IsosurfaceExtract' AND param.level = 90", run)
        assert len(rows) == 1
        rows = execute("EXECUTIONS WHERE param.level > 100", run)
        assert rows == []

    def test_contains_operator(self, fig1):
        _, run = fig1
        rows = execute("EXECUTIONS WHERE module.type CONTAINS 'Render'",
                       run)
        assert len(rows) == 2

    def test_artifacts_and_products(self, fig1):
        _, run = fig1
        artifacts = execute("ARTIFACTS", run)
        assert len(artifacts) == 6
        products = execute("PRODUCTS", run)
        assert len(products) == 3  # two images + unconsumed header
        images = execute("PRODUCTS WHERE type = 'Image'", run)
        assert len(images) == 2

    def test_count(self, fig1):
        _, run = fig1
        assert execute("COUNT EXECUTIONS", run) == 5
        assert execute("COUNT ARTIFACTS WHERE type = 'Mesh'", run) == 1

    def test_upstream_by_module_port_reference(self, fig1):
        _, run = fig1
        rows = execute("UPSTREAM OF render_mesh.image", run)
        types = {row["type"] for row in rows}
        assert types == {"Mesh", "VolumeData"}

    def test_upstream_with_filter(self, fig1):
        _, run = fig1
        rows = execute("UPSTREAM OF render_mesh.image "
                       "WHERE type = 'VolumeData'", run)
        assert len(rows) == 1

    def test_downstream(self, fig1):
        workflow, run = fig1
        rows = execute("DOWNSTREAM OF load.volume", run)
        assert len(rows) == 4

    def test_lineage(self, fig1):
        _, run = fig1
        result = execute("LINEAGE OF render_hist.image", run)
        assert len(result["executions"]) == 3
        assert len(result["artifacts"]) == 2

    def test_paths(self, fig1):
        _, run = fig1
        paths = execute("PATHS FROM render_mesh.image TO load.volume",
                        run)
        assert len(paths) == 1
        assert len(paths[0]) == 5

    def test_artifact_resolution_by_hash(self, fig1):
        workflow, run = fig1
        load = module_by_name(workflow, "load")
        volume = run.artifacts_for_module(load.id, "volume")
        rows = execute(f"DOWNSTREAM OF '{volume.value_hash}'", run)
        assert len(rows) == 4

    def test_unresolvable_reference(self, fig1):
        _, run = fig1
        with pytest.raises(ProvQLError):
            execute("LINEAGE OF nothing.here", run)

    def test_syntax_errors(self, fig1):
        _, run = fig1
        with pytest.raises(ProvQLError):
            parse("FROBNICATE EVERYTHING")
        with pytest.raises(ProvQLError):
            parse("EXECUTIONS WHERE")
        with pytest.raises(ProvQLError):
            parse("EXECUTIONS trailing")


class TestDatalogFacts:
    def test_fact_export_counts(self, fig1):
        _, run = fig1
        db = run_to_facts(run)
        assert len(db.rows("execution")) == 5
        assert len(db.rows("artifact")) == 6
        assert len(db.rows("generated")) == 6

    def test_standard_rules_upstream(self, fig1):
        workflow, run = fig1
        db = run_to_facts(run)
        derived = provenance_program().evaluate(db)
        load = module_by_name(workflow, "load")
        render = module_by_name(workflow, "render_mesh")
        image = run.artifacts_for_module(render.id, "image")
        volume = run.artifacts_for_module(load.id, "volume")
        rows = datalog_query(derived,
                             parse_atom(f"upstream('{image.id}', Y)"))
        upstream_ids = {bindings[Var("Y")] for bindings in rows}
        assert volume.id in upstream_ids

    def test_depends_on_type_rule(self, fig1):
        workflow, run = fig1
        db = run_to_facts(run)
        derived = provenance_program().evaluate(db)
        render = module_by_name(workflow, "render_hist")
        image = run.artifacts_for_module(render.id, "image")
        rows = datalog_query(
            derived,
            parse_atom(f"depends_on_type('{image.id}', T)"))
        types = {bindings[Var("T")] for bindings in rows}
        assert "LoadVolume" in types and "ComputeHistogram" in types

    def test_sibling_rule(self, fig1):
        workflow, run = fig1
        db = run_to_facts(run)
        derived = provenance_program().evaluate(db)
        load = module_by_name(workflow, "load")
        volume = run.artifacts_for_module(load.id, "volume")
        header = run.artifacts_for_module(load.id, "header")
        assert (volume.id, header.id) in derived.rows("sibling")


class TestSparqlLike:
    def test_pattern_join(self, fig1):
        _, run = fig1
        store = TripleStore()
        store.add_all(iter(run_to_triples(run)))
        rows = select(store,
                      [(V("e"), "prov:moduleType", "IsosurfaceExtract"),
                       (V("e"), "prov:status", V("s"))])
        assert len(rows) == 1
        assert rows[0]["s"] == "ok"

    def test_text_query_with_filter(self, fig1):
        _, run = fig1
        store = TripleStore()
        store.add_all(iter(run_to_triples(run)))
        rows = execute_sparql(store, """
            SELECT ?e ?t WHERE {
                ?e prov:moduleType ?t .
                FILTER ?t CONTAINS 'Render'
            }""")
        assert len(rows) == 2
        assert all(set(row) == {"e", "t"} for row in rows)

    def test_distinct_and_limit(self, fig1):
        _, run = fig1
        store = TripleStore()
        store.add_all(iter(run_to_triples(run)))
        rows = execute_sparql(store, """
            SELECT DISTINCT ?s WHERE {
                ?e prov:status ?s .
            } LIMIT 1""")
        assert rows == [{"s": "ok"}]

    def test_lineage_join_across_predicates(self, fig1):
        workflow, run = fig1
        store = TripleStore()
        store.add_all(iter(run_to_triples(run)))
        # artifacts generated by an execution that used the volume artifact
        load = module_by_name(workflow, "load")
        volume = run.artifacts_for_module(load.id, "volume")
        rows = execute_sparql(store, f"""
            SELECT ?a WHERE {{
                ?e prov:used '{volume.id}' .
                ?a prov:wasGeneratedBy ?e .
            }}""")
        assert len(rows) == 2  # histogram and mesh

    def test_parse_errors(self):
        with pytest.raises(SparqlError):
            parse_sparql("SELECT ?x { }")
        with pytest.raises(SparqlError):
            parse_sparql("SELECT ?x WHERE { ?x ?y }")


class TestQBE:
    def test_find_single_match(self, fig1, registry):
        workflow, _ = fig1
        pattern = Workflow("pattern")
        iso = pattern.add_module(Module("IsosurfaceExtract"))
        render = pattern.add_module(Module("RenderMesh"))
        pattern.connect(iso.id, "mesh", render.id, "mesh")
        matches = find_matches(pattern, workflow)
        assert len(matches) == 1
        mapped = matches[0]
        assert workflow.modules[mapped[iso.id]].type_name \
            == "IsosurfaceExtract"

    def test_no_match_for_absent_structure(self, fig1):
        workflow, _ = fig1
        pattern = Workflow("pattern")
        a = pattern.add_module(Module("RenderMesh"))
        b = pattern.add_module(Module("RenderMesh"))
        pattern.connect(a.id, "image", b.id, "mesh")
        assert find_matches(pattern, workflow) == []

    def test_parameter_pinning(self, fig1):
        workflow, _ = fig1
        pattern = Workflow("pattern")
        pattern.add_module(Module("IsosurfaceExtract",
                                  parameters={"level": 90.0}))
        assert find_matches(pattern, workflow,
                            match_parameters=True)
        pattern2 = Workflow("pattern2")
        pattern2.add_module(Module("IsosurfaceExtract",
                                   parameters={"level": 1.0}))
        assert find_matches(pattern2, workflow,
                            match_parameters=True) == []

    def test_injective_mapping(self):
        target = Workflow("t")
        a = target.add_module(Module("Identity", name="a"))
        b = target.add_module(Module("Identity", name="b"))
        target.connect(a.id, "value", b.id, "value")
        pattern = Workflow("p")
        x = pattern.add_module(Module("Identity"))
        y = pattern.add_module(Module("Identity"))
        pattern.connect(x.id, "value", y.id, "value")
        matches = find_matches(pattern, target)
        assert len(matches) == 1  # only the order-respecting embedding
        assert matches[0][x.id] == a.id
