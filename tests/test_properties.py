"""Property-based tests (hypothesis) on the system's algebraic cores.

Invariants covered:
* content hashing is deterministic and structure-sensitive;
* workflow signatures are invariant under module-id relabelling;
* evolution actions compose with their inverses to the identity;
* semirings satisfy the semiring laws on random elements;
* the Datalog engine agrees with a naive reference evaluator;
* the triple store returns exactly what was inserted, under any mix of
  insertion orders and pattern shapes;
* ZOOM user views always partition the workflow and stay acyclic;
* an arbitrary DAG rerun against a persistent result cache (fresh cache
  instance, as a fresh process would build) re-executes zero modules;
* a replay chain of depth k yields exactly k ``derived_from_run`` hops
  in the lineage index, on all four storage backends.
"""

from __future__ import annotations

import string
import tempfile
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dbprov.semirings import (BooleanSemiring, CountingSemiring,
                                    LineageSemiring, PolynomialSemiring,
                                    WhySemiring)
from repro.evolution.actions import (AddConnection, AddModule, RenameModule,
                                     SetParameter)
from repro.identity import canonical_json, hash_value
from repro.query.datalog import Atom, Database, Program, Rule, Var
from repro.query.views import build_user_view
from repro.storage.triples import TripleStore
from repro.workflow.spec import Module, Workflow

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
json_scalars = st.one_of(
    st.none(), st.booleans(),
    st.integers(min_value=-10**6, max_value=10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(string.ascii_letters + string.digits, max_size=8))

json_values = st.recursive(
    json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(string.ascii_lowercase, min_size=1,
                                max_size=5), children, max_size=4)),
    max_leaves=10)


@st.composite
def linear_workflows(draw):
    """A chain workflow with a random length and random parameters."""
    length = draw(st.integers(min_value=1, max_value=6))
    values = draw(st.lists(st.integers(min_value=0, max_value=9),
                           min_size=length, max_size=length))
    workflow = Workflow("prop")
    previous = workflow.add_module(Module(
        "Constant", name="m0", parameters={"value": values[0]}))
    for index in range(1, length):
        module = workflow.add_module(Module(
            "Identity", name=f"m{index}",
            parameters={} if values[index] % 2 else
            {"value": values[index]}))
        workflow.connect(previous.id, "value", module.id, "value")
        previous = module
    return workflow


# ----------------------------------------------------------------------
# hashing and signatures
# ----------------------------------------------------------------------
class TestHashingProperties:
    @given(json_values)
    def test_hash_deterministic(self, value):
        assert hash_value(value) == hash_value(value)

    @given(st.dictionaries(st.text(string.ascii_lowercase, min_size=1,
                                   max_size=5),
                           json_scalars, min_size=1, max_size=5))
    def test_canonical_json_key_order_invariant(self, mapping):
        reversed_dict = dict(reversed(list(mapping.items())))
        assert canonical_json(mapping) == canonical_json(reversed_dict)

    @given(json_values, json_values)
    def test_equal_encodings_equal_hashes(self, first, second):
        # Note: Python considers False == 0, but content hashing follows
        # the canonical JSON encoding, which (correctly) distinguishes
        # booleans from numbers — so the invariant is stated on encodings.
        if canonical_json(first) == canonical_json(second):
            assert hash_value(first) == hash_value(second)

    def test_bool_and_int_hash_differently(self):
        # the deliberate exception to Python equality (False == 0)
        assert hash_value([False]) != hash_value([0])
        assert hash_value(True) != hash_value(1)


class TestSignatureProperties:
    @given(linear_workflows())
    def test_signature_invariant_under_id_relabelling(self, workflow):
        rebuilt = Workflow("relabelled")
        id_map = {}
        for module in workflow.modules.values():
            clone = rebuilt.add_module(Module(
                module.type_name, name=module.name,
                parameters=dict(module.parameters)))
            id_map[module.id] = clone.id
        for connection in workflow.connections.values():
            rebuilt.connect(id_map[connection.source_module],
                            connection.source_port,
                            id_map[connection.target_module],
                            connection.target_port)
        assert rebuilt.signature() == workflow.signature()

    @given(linear_workflows())
    def test_copy_signature_stable(self, workflow):
        assert workflow.copy().signature() == workflow.signature()


# ----------------------------------------------------------------------
# evolution actions
# ----------------------------------------------------------------------
class TestActionProperties:
    @given(st.lists(st.sampled_from(["add", "set", "rename", "connect"]),
                    min_size=1, max_size=12),
           st.randoms(use_true_random=False))
    def test_apply_then_inverse_is_identity(self, operations, rng):
        workflow = Workflow("base")
        seed_module = workflow.add_module(Module("Constant", name="seed"))
        module_ids = [seed_module.id]
        for operation in operations:
            before = workflow.copy()
            if operation == "add":
                action = AddModule.of("Identity",
                                      f"m{len(module_ids)}")
            elif operation == "set":
                action = SetParameter(
                    module_id=rng.choice(module_ids), name="value",
                    value=rng.randint(0, 99))
            elif operation == "rename":
                action = RenameModule(module_id=rng.choice(module_ids),
                                      name=f"renamed{rng.randint(0, 9)}")
            else:
                source = rng.choice(module_ids)
                target_module = Module("Identity",
                                       name=f"t{len(module_ids)}")
                workflow.add_module(target_module)
                before = workflow.copy()
                action = AddConnection.of(source, "value",
                                          target_module.id, "value")
            inverse = action.inverse(before)
            action.apply(workflow)
            if isinstance(action, AddModule):
                module_ids.append(action.module_id)
                roundtrip = workflow.copy()
                inverse.apply(roundtrip)
                assert roundtrip.signature() == before.signature()
            else:
                roundtrip = workflow.copy()
                inverse.apply(roundtrip)
                assert roundtrip.signature() == before.signature()
                assert {m.name for m in roundtrip.modules.values()} \
                    == {m.name for m in before.modules.values()}


# ----------------------------------------------------------------------
# semiring laws
# ----------------------------------------------------------------------
def _elements(ring, draw_ids):
    return [ring.tag(tuple_id) for tuple_id in draw_ids]


semiring_instances = st.sampled_from([
    BooleanSemiring(), CountingSemiring(), LineageSemiring(),
    WhySemiring(), PolynomialSemiring()])

tuple_ids = st.lists(st.sampled_from(["t1", "t2", "t3"]),
                     min_size=3, max_size=3)


class TestSemiringLaws:
    @given(semiring_instances, tuple_ids)
    def test_plus_commutative_associative(self, ring, ids):
        a, b, c = _elements(ring, ids)
        assert ring.plus(a, b) == ring.plus(b, a)
        assert ring.plus(ring.plus(a, b), c) \
            == ring.plus(a, ring.plus(b, c))

    @given(semiring_instances, tuple_ids)
    def test_times_associative(self, ring, ids):
        a, b, c = _elements(ring, ids)
        assert ring.times(ring.times(a, b), c) \
            == ring.times(a, ring.times(b, c))

    @given(semiring_instances, tuple_ids)
    def test_identities(self, ring, ids):
        a = ring.tag(ids[0])
        assert ring.plus(a, ring.zero) == a
        assert ring.times(a, ring.one) == a
        assert ring.is_zero(ring.times(a, ring.zero))

    @given(semiring_instances, tuple_ids)
    def test_distributivity(self, ring, ids):
        a, b, c = _elements(ring, ids)
        left = ring.times(a, ring.plus(b, c))
        right = ring.plus(ring.times(a, b), ring.times(a, c))
        assert left == right


# ----------------------------------------------------------------------
# datalog vs naive reference
# ----------------------------------------------------------------------
def naive_transitive_closure(edges):
    closure = set(edges)
    changed = True
    while changed:
        changed = False
        for (a, b) in list(closure):
            for (c, d) in list(closure):
                if b == c and (a, d) not in closure:
                    closure.add((a, d))
                    changed = True
    return closure


class TestDatalogAgainstReference:
    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)),
                    min_size=0, max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_transitive_closure_matches_naive(self, edges):
        db = Database()
        for a, b in edges:
            db.add("edge", a, b)
        program = Program([
            Rule(Atom("path", (Var("X"), Var("Y"))),
                 (Atom("edge", (Var("X"), Var("Y"))),)),
            Rule(Atom("path", (Var("X"), Var("Y"))),
                 (Atom("edge", (Var("X"), Var("Z"))),
                  Atom("path", (Var("Z"), Var("Y"))))),
        ])
        result = program.evaluate(db)
        assert result.rows("path") == naive_transitive_closure(set(edges))


# ----------------------------------------------------------------------
# triple store
# ----------------------------------------------------------------------
class TestTripleStoreProperties:
    @given(st.sets(st.tuples(
        st.sampled_from(["s1", "s2", "s3"]),
        st.sampled_from(["p1", "p2"]),
        st.sampled_from(["o1", "o2", "o3"])), max_size=15))
    def test_match_returns_exactly_inserted(self, triples):
        store = TripleStore()
        for triple in triples:
            store.add(*triple)
        assert set(store.match()) == triples
        for subject in ("s1", "s2", "s3"):
            expected = {t for t in triples if t[0] == subject}
            assert set(store.match(subject=subject)) == expected
        for predicate in ("p1", "p2"):
            expected = {t for t in triples if t[1] == predicate}
            assert set(store.match(predicate=predicate)) == expected
        assert len(store) == len(triples)

    @given(st.lists(st.tuples(
        st.sampled_from(["s1", "s2"]), st.sampled_from(["p1", "p2"]),
        st.sampled_from(["o1", "o2"])), max_size=10))
    def test_discard_inverts_add(self, triples):
        store = TripleStore()
        for triple in triples:
            store.add(*triple)
        for triple in triples:
            store.discard(*triple)
        assert len(store) == 0
        assert store.match() == []


# ----------------------------------------------------------------------
# persistent cache and replay chains
# ----------------------------------------------------------------------
class TestPersistentCacheProperties:
    @given(modules=st.integers(min_value=5, max_value=14),
           width=st.integers(min_value=2, max_value=5),
           seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_second_run_of_arbitrary_dag_executes_nothing(self, modules,
                                                          width, seed):
        from repro.core import ProvenanceManager
        from repro.workloads import random_workflow

        workflow = random_workflow(modules=modules, width=width,
                                   seed=seed, work=3)
        with tempfile.TemporaryDirectory() as root:
            path = str(Path(root) / "memo.db")
            first = ProvenanceManager(cache_path=path)
            run = first.run(workflow)
            assert run.status == "ok"
            # a fresh manager with a fresh cache instance over the same
            # file — the in-process stand-in for a fresh OS process
            second = ProvenanceManager(cache_path=path)
            rerun = second.run(workflow)
            assert rerun.status == "ok"
            assert second.last_engine_result.executed_modules() == []
            assert all(execution.status == "cached"
                       for execution in rerun.executions)
            # reused outputs hash identically to the originals
            assert sorted(a.value_hash for a in rerun.artifacts.values()) \
                == sorted(a.value_hash for a in run.artifacts.values())

    @given(modules=st.integers(min_value=5, max_value=12),
           width=st.integers(min_value=2, max_value=4),
           seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=6, deadline=None)
    def test_concurrent_runs_compute_each_key_exactly_once(
            self, modules, width, seed):
        """Two concurrent runs on one cache file: the lease protocol
        makes each distinct causal signature compute exactly once across
        both runs, with identical recorded hashes."""
        from repro.workflow import PersistentResultCache
        from repro.workflow.modules import standard_registry
        from repro.workloads import random_workflow
        from tests.conftest import (assert_each_key_computed_once,
                                    run_pair_sharing_cache)

        workflow = random_workflow(modules=modules, width=width,
                                   seed=seed, work=2000)
        registry = standard_registry()
        with tempfile.TemporaryDirectory() as root:
            path = str(Path(root) / "shared.db")
            runs = run_pair_sharing_cache(
                registry, lambda: PersistentResultCache(path), workflow)
            assert_each_key_computed_once(runs)


class TestReplayChainProperties:
    @given(depth=st.integers(min_value=1, max_value=4),
           backend=st.sampled_from(["memory", "relational", "triples",
                                    "documents"]))
    @settings(max_examples=10, deadline=None)
    def test_chain_of_depth_k_has_k_hops_everywhere(self, depth, backend):
        from repro.core import ProvenanceManager
        from repro.storage import (DocumentStore, MemoryStore,
                                   ProvenanceStore, RelationalStore,
                                   TripleProvenanceStore, run_node)
        from tests.conftest import build_chain_workflow

        with tempfile.TemporaryDirectory() as root:
            store = {
                "memory": lambda: MemoryStore(),
                "relational": lambda: RelationalStore(),
                "triples": lambda: TripleProvenanceStore(),
                "documents": lambda: DocumentStore(Path(root) / "docs"),
            }[backend]()
            manager = ProvenanceManager(store=store)
            run = manager.run(build_chain_workflow(length=2, work=2))
            chain = [run.id]
            for _ in range(depth):
                rerun, plan = manager.rerun(chain[-1])
                assert plan.original_run == chain[-1]
                chain.append(rerun.id)
            closure = store.lineage_closure(run_node(chain[-1]),
                                            direction="up")
            assert closure == frozenset(run_node(run_id)
                                        for run_id in chain[:-1])
            # parity with the load-and-traverse oracle
            assert closure == ProvenanceStore.lineage_closure(
                store, run_node(chain[-1]), direction="up")
            # and the manager surfaces the same chain as run rows
            rows = manager.lineage(chain[-1])
            assert [row["id"] for row in rows] == chain[:-1]


# ----------------------------------------------------------------------
# user views
# ----------------------------------------------------------------------
class TestUserViewProperties:
    @given(linear_workflows(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_view_partitions_and_stays_acyclic(self, workflow, data):
        module_ids = sorted(workflow.modules)
        relevant = set(data.draw(st.lists(
            st.sampled_from(module_ids), unique=True,
            max_size=len(module_ids))))
        view = build_user_view(workflow, relevant)
        # partition: every module in exactly one composite
        seen = set()
        for members in view.composites.values():
            assert not (members & seen)
            seen |= members
        assert seen == set(module_ids)
        # quotient stays a DAG
        view.quotient_graph(workflow).topological_order()
        # relevant modules are singletons
        for module_id in relevant:
            assert view.composites[view.composite_of(module_id)] \
                == {module_id}
