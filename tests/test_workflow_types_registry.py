"""Tests for the port type system and the module registry."""

import pytest

from repro.workflow import (ModuleContext, ModuleDefinition, ModuleRegistry,
                            ParameterSpec, PortSpec, PortType, RegistryError,
                            TypeRegistry, default_type_registry)


class TestTypeRegistry:
    def test_any_is_root(self):
        types = default_type_registry()
        assert types.is_subtype("Table", "Any")
        assert types.is_subtype("Any", "Any")

    def test_direct_subtype(self):
        types = default_type_registry()
        assert types.is_subtype("Histogram", "Table")
        assert not types.is_subtype("Table", "Histogram")

    def test_transitive_subtype(self):
        types = default_type_registry()
        # VolumeData < Array < Any
        assert types.is_subtype("VolumeData", "Array")
        assert types.is_subtype("VolumeData", "Any")

    def test_unrelated_types(self):
        types = default_type_registry()
        assert not types.is_subtype("String", "Number")

    def test_common_supertype(self):
        types = default_type_registry()
        assert types.common_supertype("Integer", "Float") == "Number"
        assert types.common_supertype("Integer", "String") == "Any"
        assert types.common_supertype("Histogram", "Histogram") \
            == "Histogram"

    def test_register_requires_parent(self):
        types = TypeRegistry()
        with pytest.raises(ValueError):
            types.register(PortType("Orphan", parent="Missing"))

    def test_duplicate_registration_rejected(self):
        types = default_type_registry()
        with pytest.raises(ValueError):
            types.register(PortType("Table"))

    def test_ancestors_chain(self):
        types = default_type_registry()
        assert list(types.ancestors("Histogram")) == [
            "Histogram", "Table", "Any"]


class TestParameterSpec:
    def test_int_kind(self):
        spec = ParameterSpec("n", 1, kind="int")
        assert spec.accepts(5)
        assert not spec.accepts(5.0)
        assert not spec.accepts(True)

    def test_float_kind_accepts_int(self):
        spec = ParameterSpec("x", 0.0, kind="float")
        assert spec.accepts(2)
        assert spec.accepts(2.5)
        assert not spec.accepts("2.5")

    def test_str_bool_json_kinds(self):
        assert ParameterSpec("s", "", kind="str").accepts("hi")
        assert ParameterSpec("b", False, kind="bool").accepts(True)
        assert ParameterSpec("j", None, kind="json").accepts({"any": 1})

    def test_unknown_kind_raises(self):
        with pytest.raises(RegistryError):
            ParameterSpec("x", 0, kind="complex").accepts(1)


class TestModuleRegistry:
    def test_define_decorator(self):
        registry = ModuleRegistry()

        @registry.define("Twice", inputs=[("x", "Number")],
                         outputs=[("y", "Number")])
        def twice(ctx):
            return {"y": ctx.require_input("x") * 2}

        definition = registry.get("Twice")
        assert definition.input_ports[0].type_name == "Number"
        result = definition.compute(ModuleContext({"x": 4}, {}))
        assert result == {"y": 8}

    def test_duplicate_type_rejected(self):
        registry = ModuleRegistry()
        registry.define("M", outputs=[("v", "Any")])(lambda ctx: {"v": 1})
        with pytest.raises(RegistryError):
            registry.define("M", outputs=[("v", "Any")])(
                lambda ctx: {"v": 2})

    def test_unknown_port_type_rejected(self):
        registry = ModuleRegistry()
        with pytest.raises(RegistryError):
            registry.register(ModuleDefinition(
                type_name="Bad", compute=lambda ctx: {},
                output_ports=(PortSpec("out", "NoSuchType"),)))

    def test_unknown_type_lookup_raises(self):
        registry = ModuleRegistry()
        with pytest.raises(RegistryError):
            registry.get("Missing")

    def test_duplicate_ports_rejected(self):
        with pytest.raises(RegistryError):
            ModuleDefinition(
                type_name="Dup", compute=lambda ctx: {},
                input_ports=(PortSpec("p"), PortSpec("p")))

    def test_resolve_parameters_merges_defaults(self):
        definition = ModuleDefinition(
            type_name="P", compute=lambda ctx: {},
            parameters=(ParameterSpec("a", 1), ParameterSpec("b", 2)))
        assert definition.resolve_parameters({"b": 9}) == {"a": 1, "b": 9}

    def test_by_category(self, registry):
        names = [d.type_name for d in registry.by_category("imaging")]
        assert "AlignWarp" in names and "Softmean" in names

    def test_standard_registry_size(self, registry):
        assert len(registry) >= 50


class TestModuleContext:
    def test_input_default(self):
        context = ModuleContext({}, {})
        assert context.input("missing", 7) == 7

    def test_require_input_raises(self):
        context = ModuleContext({"x": None}, {})
        with pytest.raises(KeyError):
            context.require_input("x")

    def test_param_lookup(self):
        context = ModuleContext({}, {"n": 3})
        assert context.param("n") == 3

    def test_views_are_copies(self):
        context = ModuleContext({"a": 1}, {"p": 2})
        context.inputs["a"] = 99
        assert context.input("a") == 1
