"""End-to-end scenarios spanning many subsystems at once.

Each test is a small story a real user would enact; they complement the
per-module unit tests by exercising the seams between subsystems.
"""

import pytest

from repro.apps import (Collaboratory, invalidate_by_hash, parameter_sweep,
                        rerun, validate_reproduction)
from repro.core import (ProvenanceManager, causality_graph, run_from_xml,
                        run_to_xml)
from repro.evolution import (AddConnection, AddModule, DeleteConnection,
                             Vistrail, apply_by_analogy, diff_workflows,
                             record_as_version)
from repro.opm import complete, opm_from_xml, opm_to_xml, run_to_opm
from repro.query import build_user_view, execute
from repro.storage import RelationalStore
from repro.workloads import (build_fig2_pair, build_fmri_workflow,
                             build_vis_workflow)


class TestExploreRefineShareScenario:
    """A scientist explores, refines by analogy, and shares the result."""

    def test_full_lifecycle(self, registry):
        manager = ProvenanceManager()

        # 1. explore: build + run the Figure 1 pipeline, sweep a parameter
        workflow = build_vis_workflow(size=8)
        iso = next(m for m in workflow.modules.values()
                   if m.name == "iso")
        sweep = parameter_sweep(manager, workflow,
                                {(iso.id, "level"): [70.0, 100.0]})
        assert len(sweep.runs) == 2

        # 2. version the exploration: record both variants in a vistrail
        vistrail = Vistrail("exploration")
        v_base = record_as_version(vistrail, workflow, tag="base")
        variant = workflow.copy()
        variant.set_parameter(iso.id, "level", 70.0)
        v_low = record_as_version(vistrail, variant, parent=v_base,
                                  tag="low-level")
        assert vistrail.materialize(v_low).modules[iso.id] \
            .parameters["level"] == 70.0

        # 3. refine by analogy: carry the Fig-2 smoothing over
        before, after = build_fig2_pair()
        result = apply_by_analogy(before, after, workflow)
        assert any(m.type_name == "SmoothMesh"
                   for m in result.workflow.modules.values())
        refined_run = manager.run(result.workflow)
        assert refined_run.status == "ok"

        # 4. share it in the collaboratory with its provenance
        collab = Collaboratory(manager.registry)
        user = collab.join("explorer")
        entry = collab.publish(user.id, result.workflow,
                               "smoothed head vis",
                               runs=[refined_run])
        assert collab.search("smoothed")[0] is entry

        # 5. a colleague reproduces the shared run bit-for-bit
        report = validate_reproduction(
            refined_run, rerun(refined_run, manager.registry))
        assert report.reproducible


class TestPersistenceRoundtripScenario:
    """Provenance survives: sqlite -> XML -> OPM -> back, queries intact."""

    def test_cross_format_fidelity(self):
        manager = ProvenanceManager(store=RelationalStore())
        workflow = build_vis_workflow(size=8)
        run = manager.run(workflow)

        # store roundtrip
        stored = manager.store.load_run(run.id)
        # XML roundtrip
        xml_run = run_from_xml(run_to_xml(stored))
        # queries agree across representations
        for candidate in (run, stored, xml_run):
            assert execute("COUNT EXECUTIONS", candidate) == 6
            lineage = execute("LINEAGE OF render_mesh.image", candidate)
            assert len(lineage["executions"]) == 3

        # OPM export + XML roundtrip preserves the causal structure
        opm = run_to_opm(xml_run)
        restored = opm_from_xml(opm_to_xml(opm))
        assert restored.summary() == opm.summary()
        complete(restored)
        derived = restored.edges_of_kind("wasDerivedFrom")
        assert derived  # inference worked on the roundtripped graph


class TestChallengeAtScaleScenario:
    """The fMRI challenge with views, invalidation and evolution."""

    def test_views_reduce_challenge_provenance(self):
        manager = ProvenanceManager()
        workflow = build_fmri_workflow(size=10)
        run = manager.run(workflow)
        softmean = next(m for m in workflow.modules.values()
                        if m.name == "softmean")
        convert_x = next(m for m in workflow.modules.values()
                         if m.name == "convert_x")
        view = build_user_view(workflow, {softmean.id, convert_x.id})
        collapsed = view.collapse_run(run)
        full = causality_graph(run, include_derivations=False)
        assert collapsed.node_count < full.node_count
        assert view.reduction_factor() > 1.5

    def test_defective_subject_invalidates_all_graphics(self):
        manager = ProvenanceManager()
        workflow = build_fmri_workflow(size=10)
        run = manager.run(workflow)
        anatomy1 = next(m for m in workflow.modules.values()
                        if m.name == "anatomy1")
        bad = run.artifacts_for_module(anatomy1.id, "image")
        report = invalidate_by_hash(manager.store, bad.value_hash)
        # all three graphics pass through softmean, so all are tainted
        products = report.affected_products[run.id]
        graphic_ids = {
            run.artifacts_for_module(
                next(m for m in workflow.modules.values()
                     if m.name == f"convert_{axis}").id, "graphic").id
            for axis in ("x", "y", "z")}
        assert graphic_ids <= set(products)

    def test_challenge_evolution_branch(self):
        manager = ProvenanceManager()
        workflow = build_fmri_workflow(size=10)
        vistrail = Vistrail("challenge-evolution")
        v_base = record_as_version(vistrail, workflow, tag="model-12")
        # branch: change the alignment model on every align module
        variant = workflow.copy()
        for module in variant.modules.values():
            if module.type_name == "AlignWarp":
                variant.set_parameter(module.id, "model", 6)
        v_m6 = record_as_version(vistrail, variant, parent=v_base,
                                 tag="model-6")
        diff = diff_workflows(vistrail.materialize(v_base),
                              vistrail.materialize(v_m6))
        assert len(diff.parameter_changes) == 4
        # both versions run, and their atlases differ
        run_12 = manager.run(vistrail.materialize(v_base))
        run_6 = manager.run(vistrail.materialize(v_m6))
        softmean = next(m for m in workflow.modules.values()
                        if m.name == "softmean")
        atlas_12 = run_12.artifacts_for_module(softmean.id, "atlas")
        atlas_6 = run_6.artifacts_for_module(softmean.id, "atlas")
        assert atlas_12.value_hash != atlas_6.value_hash


class TestFailureRecoveryScenario:
    """A failing module leaves usable provenance for debugging."""

    def test_partial_provenance_and_queries(self):
        manager = ProvenanceManager()
        workflow = manager.new_workflow("fragile")
        load = manager.add_module(workflow, "LoadVolume", name="load",
                                  parameters={"size": 8})
        bad = manager.add_module(workflow, "FailIf", name="bad",
                                 parameters={"fail": True,
                                             "message": "disk full"})
        hist = manager.add_module(workflow, "ComputeHistogram",
                                  name="hist")
        downstream = manager.add_module(workflow, "Identity",
                                        name="downstream")
        workflow.connect(load.id, "volume", bad.id, "value")
        workflow.connect(bad.id, "value", downstream.id, "value")
        workflow.connect(load.id, "volume", hist.id, "volume")

        run = manager.run(workflow)
        assert run.status == "failed"

        failed = execute("EXECUTIONS WHERE status = 'failed'", run)
        assert len(failed) == 1
        assert failed[0]["module.name"] == "bad"
        skipped = execute("EXECUTIONS WHERE status = 'skipped'", run)
        assert [row["module.name"] for row in skipped] == ["downstream"]
        succeeded = execute("EXECUTIONS WHERE status = 'ok'", run)
        assert {row["module.name"] for row in succeeded} \
            == {"load", "hist"}
        # the healthy branch's product is present and valued
        histogram = run.artifacts_for_module(hist.id, "histogram")
        assert histogram is not None
        assert run.value(histogram.id)["columns"]["count"]
        # error text is queryable from the execution record
        execution = run.execution_for_module(bad.id)
        assert "disk full" in execution.error
