"""Tests for the XML provenance dialect, diff→actions patches, and the CLI."""

import pytest

from repro.cli import main
from repro.core import ProvenanceManager, run_from_xml, run_to_xml
from repro.evolution import (Vistrail, diff_to_actions, diff_workflows,
                             record_as_version)
from repro.workflow import Module, Workflow
from repro.workloads import build_fig2_pair, build_vis_workflow


@pytest.fixture(scope="module")
def vis_run():
    manager = ProvenanceManager()
    workflow = build_vis_workflow(size=8)
    run = manager.run(workflow, tags={"campaign": "xml-test"})
    return workflow, run


class TestXmlProvenance:
    def test_roundtrip_identity(self, vis_run):
        _, run = vis_run
        restored = run_from_xml(run_to_xml(run))
        assert restored.id == run.id
        assert restored.status == run.status
        assert restored.workflow_signature == run.workflow_signature
        assert restored.tags == run.tags
        assert len(restored.executions) == len(run.executions)
        assert set(restored.artifacts) == set(run.artifacts)

    def test_roundtrip_execution_details(self, vis_run):
        _, run = vis_run
        restored = run_from_xml(run_to_xml(run))
        for original, copy in zip(run.executions, restored.executions):
            assert copy.parameters == original.parameters
            assert copy.input_artifacts() == original.input_artifacts()
            assert copy.output_artifacts() == original.output_artifacts()
            assert copy.started == original.started

    def test_roundtrip_spec_embedded(self, vis_run):
        workflow, run = vis_run
        restored = run_from_xml(run_to_xml(run))
        assert restored.workflow_spec == run.workflow_spec

    def test_error_text_preserved(self):
        manager = ProvenanceManager()
        workflow = manager.new_workflow("failing")
        manager.add_module(workflow, "FailIf",
                           parameters={"fail": True,
                                       "message": "xml check"})
        run = manager.run(workflow)
        restored = run_from_xml(run_to_xml(run))
        assert "xml check" in restored.executions[0].error

    def test_rejects_wrong_document(self):
        with pytest.raises(ValueError):
            run_from_xml("<notarun/>")

    def test_xml_is_valid_and_parsable(self, vis_run):
        import xml.etree.ElementTree as ET
        _, run = vis_run
        root = ET.fromstring(run_to_xml(run))
        assert root.tag == "run"
        assert root.find("executions") is not None


class TestDiffToActions:
    def test_patch_reproduces_target(self):
        before, after = build_fig2_pair()
        diff = diff_workflows(before, after)
        actions = diff_to_actions(diff, before, after)
        patched = before.copy()
        for action in actions:
            action.apply(patched)
        assert patched.signature() == after.signature()

    def test_patch_with_deletion(self):
        before, after = build_fig2_pair()
        # reverse direction: after -> before deletes the smoother
        diff = diff_workflows(after, before)
        actions = diff_to_actions(diff, after, before)
        patched = after.copy()
        for action in actions:
            action.apply(patched)
        assert patched.signature() == before.signature()

    def test_patch_with_parameter_and_rename(self):
        before = build_vis_workflow(size=8)
        after = before.copy()
        iso = next(m for m in after.modules.values() if m.name == "iso")
        after.set_parameter(iso.id, "level", 55.0)
        after.rename_module(iso.id, "isosurface")
        diff = diff_workflows(before, after)
        actions = diff_to_actions(diff, before, after)
        patched = before.copy()
        for action in actions:
            action.apply(patched)
        assert patched.signature() == after.signature()
        assert patched.modules[iso.id].name == "isosurface"

    def test_empty_diff_empty_patch(self):
        workflow = build_vis_workflow(size=8)
        diff = diff_workflows(workflow, workflow.copy())
        assert diff_to_actions(diff, workflow, workflow.copy()) == []

    def test_record_as_version(self):
        before, after = build_fig2_pair()
        vistrail = Vistrail("recording")
        # seed the vistrail with the 'before' state via a recorded diff
        v1 = record_as_version(vistrail, before, tag="before")
        assert vistrail.materialize(v1).signature() \
            == before.signature()
        v2 = record_as_version(vistrail, after, parent=v1, tag="after")
        assert vistrail.materialize(v2).signature() \
            == after.signature()
        assert vistrail.common_ancestor(v1, v2) == v1

    def test_record_identical_returns_same_version(self):
        workflow = build_vis_workflow(size=8)
        vistrail = Vistrail("same")
        v1 = record_as_version(vistrail, workflow)
        v2 = record_as_version(vistrail, workflow.copy(), parent=v1)
        assert v1 == v2


class TestCli:
    def test_modules_lists_types(self, capsys):
        assert main(["modules"]) == 0
        output = capsys.readouterr().out
        assert "AlignWarp" in output
        assert "LoadVolume" in output

    def test_recipe(self, capsys):
        assert main(["recipe", "--size", "8"]) == 0
        output = capsys.readouterr().out
        assert "Recipe" in output
        assert "load" in output

    def test_demo(self, capsys):
        assert main(["demo", "--size", "8"]) == 0
        output = capsys.readouterr().out
        assert "status: ok" in output

    def test_query(self, capsys):
        assert main(["query", "COUNT EXECUTIONS"]) == 0
        assert capsys.readouterr().out.strip() == "6"

    def test_query_table_rendering(self, capsys):
        assert main(["query",
                     "EXECUTIONS WHERE module.type = 'LoadVolume'"]) == 0
        output = capsys.readouterr().out
        assert "module.type" in output

    def test_challenge(self, capsys):
        assert main(["challenge", "--size", "8"]) == 0
        output = capsys.readouterr().out
        assert output.count("q") >= 9

    def test_challenge2(self, capsys):
        assert main(["challenge2", "--size", "8"]) == 0
        output = capsys.readouterr().out
        assert "chimera, karma, taverna" in output

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
