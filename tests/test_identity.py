"""Tests for identity primitives: ids, canonical JSON, content hashing."""

import numpy as np
import pytest

from repro import identity


class TestNewId:
    def test_prefix(self):
        assert identity.new_id("art").startswith("art-")

    def test_unique(self):
        assert identity.new_id("run") != identity.new_id("run")

    def test_unknown_kind_rejected(self):
        with pytest.raises(identity.IdentityError):
            identity.new_id("nonsense")

    def test_all_known_kinds_work(self):
        for kind in identity.KNOWN_KINDS:
            assert identity.kind_of(identity.new_id(kind)) == kind


class TestKindOf:
    def test_roundtrip(self):
        assert identity.kind_of(identity.new_id("exec")) == "exec"

    def test_malformed_raises(self):
        with pytest.raises(identity.IdentityError):
            identity.kind_of("no-separator-kind!")

    def test_empty_suffix_rejected(self):
        with pytest.raises(identity.IdentityError):
            identity.kind_of("art-")

    def test_is_id(self):
        assert identity.is_id("art-abc")
        assert not identity.is_id("bogus-abc")
        assert not identity.is_id(42)
        assert not identity.is_id("plainstring")


class TestCanonicalJson:
    def test_sorted_keys(self):
        assert (identity.canonical_json({"b": 1, "a": 2})
                == '{"a":2,"b":1}')

    def test_no_whitespace(self):
        assert " " not in identity.canonical_json({"a": [1, 2, 3]})

    def test_numpy_array_serializes(self):
        text = identity.canonical_json({"x": np.array([1, 2])})
        assert text == '{"x":[1,2]}'

    def test_structural_equality_gives_equal_text(self):
        first = {"outer": {"z": 1, "a": [True, None]}}
        second = {"outer": {"a": [True, None], "z": 1}}
        assert (identity.canonical_json(first)
                == identity.canonical_json(second))


class TestHashing:
    def test_bytes_hash_stable(self):
        assert identity.content_hash(b"x") == identity.content_hash(b"x")

    def test_hash_value_dict_order_invariant(self):
        assert (identity.hash_value({"a": 1, "b": 2})
                == identity.hash_value({"b": 2, "a": 1}))

    def test_hash_value_distinguishes_values(self):
        assert identity.hash_value([1, 2]) != identity.hash_value([2, 1])

    def test_bytes_and_json_namespaces_disjoint(self):
        # b"1" must not collide with the integer 1
        assert identity.hash_value(b"1") != identity.hash_value(1)

    def test_numpy_hash_matches_list_content(self):
        assert (identity.hash_value(np.array([1.5, 2.5]))
                == identity.hash_value([1.5, 2.5]))

    def test_hash_is_hex_sha256(self):
        digest = identity.hash_value("hello")
        assert len(digest) == 64
        int(digest, 16)  # parses as hex
