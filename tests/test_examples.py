"""Every example in examples/ must run green — they are living docs."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys, monkeypatch):
    # examples print a lot; run them in-process and require no exception
    monkeypatch.setattr(sys, "argv", [str(path)])
    runpy.run_path(str(path), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{path.name} produced no output"


def test_all_examples_present():
    names = {path.stem for path in EXAMPLES}
    assert {"quickstart", "figure1_visualization", "figure2_analogy",
            "provenance_challenge", "multi_system_integration",
            "social_collaboratory", "db_workflow_bridge"} <= names
