"""Tests for analytics: statistics, summarization, mining, recommendation,
rendering."""

import pytest

from repro.analytics import (Recommender, ascii_table, collapse_chains,
                             cooccurrence, corpus_statistics,
                             frequent_paths, graph_statistics,
                             mine_vistrail, run_report, run_statistics,
                             run_to_dot, successor_model, type_summary,
                             vistrail_to_dot, workflow_to_dot)
from repro.core import ProvenanceManager, causality_graph
from repro.workloads import (build_genomics_workflow, build_vis_workflow,
                             domain_corpus, random_edit_session)


@pytest.fixture(scope="module")
def vis_run():
    manager = ProvenanceManager()
    workflow = build_vis_workflow(size=8)
    run = manager.run(workflow)
    return manager, workflow, run


class TestStats:
    def test_run_statistics(self, vis_run):
        _, workflow, run = vis_run
        stats = run_statistics(run)
        assert stats["executions"] == len(workflow.modules)
        assert stats["status_counts"] == {"ok": 6}
        assert stats["cached_fraction"] == 0.0
        assert stats["artifact_bytes_hint"] > 0

    def test_graph_statistics(self, vis_run):
        _, _, run = vis_run
        stats = graph_statistics(
            causality_graph(run, include_derivations=False))
        assert stats["nodes"] == 13
        assert stats["longest_path"] >= 7
        assert stats["kind_counts"]["execution"] == 6

    def test_corpus_statistics(self, vis_run):
        manager, workflow, run = vis_run
        second = manager.run(workflow)
        stats = corpus_statistics([run, second])
        assert stats["runs"] == 2
        assert stats["total_executions"] == 12
        assert stats["failed_runs"] == 0


class TestSummarize:
    def test_collapse_chains_reduces_linear_runs(self, vis_run):
        _, _, run = vis_run
        graph = causality_graph(run, include_derivations=False)
        collapsed = collapse_chains(graph)
        assert collapsed.node_count < graph.node_count
        composites = [attrs for _, attrs
                      in collapsed.nodes("composite")]
        assert composites  # at least one chain got collapsed

    def test_collapse_preserves_branch_structure(self, vis_run):
        _, _, run = vis_run
        graph = causality_graph(run, include_derivations=False)
        collapsed = collapse_chains(graph)
        # volume artifact has two consumers: must survive as its own node
        volume_nodes = [node for node, attrs in collapsed.nodes()
                        if attrs.get("type_name") == "VolumeData"]
        assert volume_nodes

    def test_type_summary_size_independent(self, vis_run):
        manager, workflow, run = vis_run
        summary = type_summary(run)
        # one node per module type + one per artifact type
        type_count = len({m.type_name
                          for m in workflow.modules.values()})
        assert len(summary.node_ids("execution")) == type_count
        counts = [attrs["count"] for _, attrs in summary.nodes()]
        assert all(count >= 1 for count in counts)


class TestMining:
    @pytest.fixture(scope="class")
    def corpus(self):
        return list(domain_corpus(variants=3).values())

    def test_frequent_paths_support(self, corpus):
        paths = frequent_paths(corpus, min_support=3)
        assert ("LoadVolume", "IsosurfaceExtract") in paths
        assert paths[("LoadVolume", "IsosurfaceExtract")] >= 3

    def test_apriori_monotonicity(self, corpus):
        paths = frequent_paths(corpus, min_support=2, max_length=3)
        for path, support in paths.items():
            if len(path) == 3:
                prefix = path[:2]
                assert paths.get(prefix, 0) >= support

    def test_cooccurrence_symmetric_pairs(self, corpus):
        pairs = cooccurrence(corpus)
        assert all(first <= second for first, second in pairs)
        assert pairs[("IsosurfaceExtract", "RenderMesh")] >= 3

    def test_successor_model_probabilities(self, corpus):
        model = successor_model(corpus)
        for distribution in model.values():
            assert abs(sum(distribution.values()) - 1.0) < 1e-9
        assert "SmoothMesh" in model.get("IsosurfaceExtract", {})

    def test_mine_vistrail(self):
        vistrail = random_edit_session(actions=30, seed=4)
        stats = mine_vistrail(vistrail)
        assert stats["versions"] == len(vistrail)
        assert stats["branches"] == len(vistrail.leaves())
        assert sum(stats["action_kinds"].values()) == len(vistrail) - 1


class TestRecommender:
    @pytest.fixture(scope="class")
    def recommender(self):
        manager = ProvenanceManager()
        corpus = list(domain_corpus(variants=3).values())
        return manager, Recommender(corpus, manager.registry)

    def test_suggests_from_corpus(self, recommender):
        manager, engine = recommender
        draft = manager.new_workflow("draft")
        manager.add_module(draft, "LoadVolume")
        suggestions = engine.suggest(draft)
        types = [s.module_type for s in suggestions]
        assert "IsosurfaceExtract" in types or "ComputeHistogram" in types

    def test_suggestions_type_compatible(self, recommender):
        manager, engine = recommender
        draft = manager.new_workflow("draft")
        manager.add_module(draft, "SyntheticReads")
        for suggestion in engine.suggest(draft):
            out_port, in_port = suggestion.via_ports
            source = manager.registry.get("SyntheticReads")
            target = manager.registry.get(suggestion.module_type)
            out_type = source.output_port(out_port).type_name
            in_type = target.input_port(in_port).type_name
            assert manager.registry.types.is_subtype(out_type, in_type)

    def test_apply_suggestion_builds_valid_workflow(self, recommender):
        manager, engine = recommender
        draft = manager.new_workflow("draft")
        manager.add_module(draft, "LoadVolume")
        suggestions = engine.suggest(draft)
        engine.apply_suggestion(draft, suggestions[0])
        from repro.workflow import check_workflow
        errors = [issue for issue in
                  check_workflow(draft, manager.registry)
                  if issue.is_error()]
        assert errors == []

    def test_frontier_detection(self, recommender):
        manager, engine = recommender
        draft = manager.new_workflow("draft")
        load = manager.add_module(draft, "LoadVolume")
        iso = manager.add_module(draft, "IsosurfaceExtract")
        draft.connect(load.id, "volume", iso.id, "volume")
        # load still has header unconsumed; iso has mesh unconsumed
        assert set(engine.frontier(draft)) == {load.id, iso.id}


class TestRendering:
    def test_workflow_dot(self, vis_run):
        _, workflow, _ = vis_run
        dot = workflow_to_dot(workflow)
        assert dot.startswith("digraph")
        for module in workflow.modules.values():
            assert module.id in dot

    def test_run_dot(self, vis_run):
        _, _, run = vis_run
        dot = run_to_dot(run)
        assert "wasGeneratedBy" in dot

    def test_vistrail_dot(self):
        vistrail = random_edit_session(actions=5, seed=0)
        dot = vistrail_to_dot(vistrail)
        assert "doubleoctagon" in dot  # current version marked

    def test_ascii_table(self):
        rows = [{"a": 1, "b": "x"}, {"a": 2.5, "b": "y" * 60}]
        table = ascii_table(rows)
        assert "a" in table.splitlines()[0]
        assert "..." in table  # long value truncated

    def test_ascii_table_empty(self):
        assert ascii_table([]) == "(empty)"

    def test_run_report_mentions_products(self, vis_run):
        _, _, run = vis_run
        report = run_report(run)
        assert "data products" in report
        assert "status: ok" in report
