"""Edge-case coverage across subsystems: the paths the main suites skip."""

import pytest

from repro.core import ProvenanceManager, ScriptCapture
from repro.query import execute, find_in_corpus
from repro.storage import MemoryStore
from repro.workflow import Executor, Module, Workflow
from repro.workflow.environment import capture_environment, environment_diff
from repro.workloads import build_vis_workflow, domain_corpus
from tests.conftest import module_by_name


class TestEnvironment:
    def test_capture_has_required_keys(self):
        env = capture_environment()
        for key in ("python_version", "platform", "hostname", "pid",
                    "numpy_version", "repro_version"):
            assert key in env

    def test_diff_ignores_volatile_pid(self):
        first = capture_environment()
        second = dict(first, pid=first["pid"] + 1)
        assert environment_diff(first, second) == {}

    def test_diff_reports_changes_both_ways(self):
        first = {"python_version": "3.10", "only_first": 1}
        second = {"python_version": "3.11", "only_second": 2}
        diff = environment_diff(first, second)
        assert diff["python_version"] == {"before": "3.10",
                                          "after": "3.11"}
        assert diff["only_first"]["after"] is None
        assert diff["only_second"]["before"] is None


class TestEngineCombinations:
    def test_overrides_and_external_inputs_together(self, registry):
        workflow = Workflow()
        scale = workflow.add_module(Module("Scale",
                                           parameters={"factor": 2.0}))
        executor = Executor(registry)
        run = executor.execute(
            workflow,
            inputs={(scale.id, "value"): 10.0},
            parameter_overrides={scale.id: {"factor": 5.0}})
        assert run.output(scale.id, "result") == 50.0

    def test_override_does_not_mutate_spec(self, registry):
        workflow = Workflow()
        scale = workflow.add_module(Module("Scale",
                                           parameters={"factor": 2.0}))
        Executor(registry).execute(
            workflow, inputs={(scale.id, "value"): 1.0},
            parameter_overrides={scale.id: {"factor": 9.0}})
        assert workflow.modules[scale.id].parameters == {"factor": 2.0}

    def test_empty_workflow_runs(self, registry):
        run = Executor(registry).execute(Workflow("empty"))
        assert run.status == "ok"
        assert run.results == {}

    def test_extra_undeclared_output_fails_module(self, registry):
        from repro.workflow import ModuleRegistry
        local = ModuleRegistry()

        @local.define("Chatty", outputs=[("out", "Any")])
        def chatty(ctx):
            return {"out": 1, "extra": 2}

        workflow = Workflow()
        module = workflow.add_module(Module("Chatty"))
        run = Executor(local).execute(workflow)
        assert run.results[module.id].status == "failed"
        assert "undeclared" in run.results[module.id].error


class TestProvQLEdges:
    @pytest.fixture(scope="class")
    def run(self):
        manager = ProvenanceManager()
        workflow = build_vis_workflow(size=8)
        iso = module_by_name(workflow, "iso")
        run = manager.run(workflow,
                          inputs=None, parameter_overrides=None)
        return run

    def test_inputs_command_empty_for_closed_workflow(self, run):
        assert execute("INPUTS", run) == []

    def test_boolean_field_condition(self, run):
        rows = execute("ARTIFACTS WHERE external = false", run)
        assert len(rows) == 7
        assert execute("ARTIFACTS WHERE external = true", run) == []

    def test_missing_field_never_matches(self, run):
        assert execute("EXECUTIONS WHERE param.nonexistent = 1",
                       run) == []

    def test_count_lineage(self, run):
        count = execute("COUNT LINEAGE OF render_mesh.image", run)
        assert count == 5  # 2 artifacts + 3 executions


class TestQbeCorpus:
    def test_find_in_corpus(self):
        corpus = list(domain_corpus(variants=2).values())
        pattern = Workflow("pattern")
        iso = pattern.add_module(Module("IsosurfaceExtract"))
        render = pattern.add_module(Module("RenderMesh"))
        pattern.connect(iso.id, "mesh", render.id, "mesh")
        hits = find_in_corpus(pattern, corpus)
        expected = {workflow.id for workflow in corpus
                    if any(m.type_name == "SmoothMesh"
                           or m.type_name == "IsosurfaceExtract"
                           for m in workflow.modules.values())}
        assert set(hits) <= expected
        assert len(hits) >= 4  # vis + fig2 pairs per variant


class TestScriptCaptureStore:
    def test_runs_persist_to_store(self):
        store = MemoryStore()
        capture = ScriptCapture(author="s", store=store)
        capture.record(sum, [1, 2, 3])
        assert len(store.list_runs()) == 1
        stored = store.load_run(store.list_runs()[0].run_id)
        assert stored.workflow_name == "script:sum"


class TestStoreSignatureFinder:
    def test_select_runs_by_signature(self):
        from repro.storage import ProvQuery
        manager = ProvenanceManager()
        workflow = build_vis_workflow(size=8)
        run = manager.run(workflow)
        other = manager.run(build_vis_workflow(size=10))
        found = [row["id"] for row in manager.select(
            ProvQuery.runs().where(signature=run.workflow_signature))]
        assert run.id in found
        assert other.id not in found


class TestManagerVistrailHandoff:
    def test_vistrail_factory(self):
        manager = ProvenanceManager()
        vistrail = manager.vistrail("session")
        from repro.evolution import AddModule
        version = vistrail.add_action(AddModule.of("Constant", "c"))
        assert len(vistrail.materialize(version).modules) == 1


class TestVisualizationEdges:
    def test_run_report_failed_run_shows_error(self):
        from repro.analytics import run_report
        manager = ProvenanceManager()
        workflow = manager.new_workflow("bad")
        manager.add_module(workflow, "FailIf",
                           parameters={"fail": True,
                                       "message": "boom"})
        run = manager.run(workflow)
        report = run_report(run)
        assert "[!]" in report
        assert "error:" in report

    def test_cached_marker_in_report(self):
        from repro.analytics import run_report
        manager = ProvenanceManager()
        workflow = build_vis_workflow(size=8)
        manager.run(workflow)
        second = manager.run(workflow)
        assert "[=]" in run_report(second)
