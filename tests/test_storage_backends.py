"""Backend-conformance tests run against all four provenance stores."""

import numpy as np
import pytest

from repro.core import ProspectiveProvenance, ProvenanceCapture
from repro.storage import (ArtifactValueStore, DocumentStore,
                           FileArtifactValueStore, MemoryStore,
                           ProvQuery, RelationalStore, StoreError,
                           TripleProvenanceStore, TripleStore,
                           run_to_triples)
from repro.workflow import Executor, Module, Workflow
from tests.conftest import build_fig1_workflow, module_by_name


def make_store(name, tmp_path):
    if name == "memory":
        return MemoryStore()
    if name == "relational":
        return RelationalStore()
    if name == "relational-values":
        return RelationalStore(store_values=True)
    if name == "triples":
        return TripleProvenanceStore()
    if name == "documents":
        return DocumentStore(tmp_path / "docs")
    raise ValueError(name)


BACKENDS = ["memory", "relational", "triples", "documents"]


@pytest.fixture()
def captured_run(registry):
    workflow = build_fig1_workflow(size=8)
    capture = ProvenanceCapture(registry=registry)
    Executor(registry, listeners=[capture]).execute(
        workflow, tags={"suite": "storage"})
    return workflow, capture.last_run()


@pytest.mark.parametrize("backend", BACKENDS)
class TestStoreConformance:
    def test_run_roundtrip(self, backend, tmp_path, captured_run):
        workflow, run = captured_run
        store = make_store(backend, tmp_path)
        store.save_run(run)
        loaded = store.load_run(run.id)
        assert loaded.id == run.id
        assert loaded.status == "ok"
        assert loaded.workflow_signature == run.workflow_signature
        assert len(loaded.executions) == len(run.executions)
        assert set(loaded.artifacts) == set(run.artifacts)
        original = run.execution_for_module(
            module_by_name(workflow, "iso").id)
        restored = loaded.execution_for_module(
            module_by_name(workflow, "iso").id)
        assert restored.parameters == original.parameters
        assert restored.input_artifacts() == original.input_artifacts()

    def test_missing_run_raises(self, backend, tmp_path, captured_run):
        store = make_store(backend, tmp_path)
        with pytest.raises(StoreError):
            store.load_run("run-missing")

    def test_list_and_delete(self, backend, tmp_path, captured_run):
        _, run = captured_run
        store = make_store(backend, tmp_path)
        store.save_run(run)
        assert [s.run_id for s in store.list_runs()] == [run.id]
        assert store.delete_run(run.id)
        assert store.list_runs() == []
        assert not store.delete_run(run.id)

    def test_save_is_idempotent_overwrite(self, backend, tmp_path,
                                          captured_run):
        _, run = captured_run
        store = make_store(backend, tmp_path)
        store.save_run(run)
        store.save_run(run)
        assert len(store.list_runs()) == 1
        assert len(store.load_run(run.id).executions) == \
            len(run.executions)

    def test_workflow_roundtrip(self, backend, tmp_path, captured_run,
                                registry):
        workflow, _ = captured_run
        store = make_store(backend, tmp_path)
        prospective = ProspectiveProvenance.from_workflow(workflow,
                                                          registry)
        store.save_workflow(prospective)
        loaded = store.load_workflow(workflow.id)
        assert loaded.signature == prospective.signature
        assert loaded.to_workflow().signature() == workflow.signature()
        assert store.list_workflows() == [workflow.id]

    def test_annotation_roundtrip(self, backend, tmp_path, captured_run):
        _, run = captured_run
        store = make_store(backend, tmp_path)
        from repro.core import Annotation
        store.save_annotation(Annotation(
            target_kind="run", target_id=run.id, key="grade",
            value={"score": 9}, author="dana", created=1.5))
        found = store.annotations_for("run", run.id)
        assert found[0].value == {"score": 9}
        assert found[0].author == "dana"
        assert len(store.all_annotations()) == 1

    def test_select_runs_by_status(self, backend, tmp_path, captured_run):
        _, run = captured_run
        store = make_store(backend, tmp_path)
        store.save_run(run)

        def run_ids(**criteria):
            return [row["id"] for row in store.select(
                ProvQuery.runs().where(**criteria).project("id"))]

        assert run_ids(status="ok") == [run.id]
        assert run_ids(status="failed") == []
        assert run_ids(workflow_id=run.workflow_id) == [run.id]

    def test_select_artifacts_by_hash(self, backend, tmp_path,
                                      captured_run):
        workflow, run = captured_run
        store = make_store(backend, tmp_path)
        store.save_run(run)
        load = module_by_name(workflow, "load")
        volume = run.artifacts_for_module(load.id, "volume")
        rows = store.select(ProvQuery.artifacts()
                            .where(value_hash=volume.value_hash)).all()
        assert [(row["run_id"], row["id"]) for row in rows] == \
            [(run.id, volume.id)]

    def test_select_executions_by_type(self, backend, tmp_path,
                                       captured_run):
        _, run = captured_run
        store = make_store(backend, tmp_path)
        store.save_run(run)

        def executions(**criteria):
            return store.select(
                ProvQuery.executions().where(**criteria)).all()

        assert len(executions(module_type="IsosurfaceExtract")) == 1
        assert len(executions(module_type="IsosurfaceExtract",
                              param__level=90.0)) == 1
        assert executions(module_type="IsosurfaceExtract",
                          param__level=1.0) == []


class TestRelationalSpecifics:
    def test_raw_sql_queries(self, captured_run):
        _, run = captured_run
        store = RelationalStore()
        store.save_run(run)
        rows = store.sql("SELECT COUNT(*) FROM executions")
        assert rows[0][0] == 5
        rows = store.sql(
            "SELECT module_type FROM executions WHERE run_id = ?"
            " ORDER BY module_type", (run.id,))
        assert rows[0][0] == "ComputeHistogram"

    def test_sql_rejects_writes(self, captured_run):
        store = RelationalStore()
        with pytest.raises(StoreError):
            store.sql("DELETE FROM runs")
        with pytest.raises(StoreError):
            store.sql("SELECT 1; DROP TABLE runs")

    def test_values_persist_when_enabled(self, captured_run):
        workflow, run = captured_run
        store = RelationalStore(store_values=True)
        store.save_run(run)
        loaded = store.load_run(run.id)
        load = module_by_name(workflow, "load")
        volume = run.artifacts_for_module(load.id, "volume")
        assert np.array_equal(loaded.values[volume.id],
                              run.values[volume.id])

    def test_values_skipped_when_disabled(self, captured_run):
        _, run = captured_run
        store = RelationalStore(store_values=False)
        store.save_run(run)
        assert store.load_run(run.id).values == {}


class TestTripleStoreSpecifics:
    def test_pattern_matching(self):
        store = TripleStore()
        store.add("s1", "p1", "o1")
        store.add("s1", "p2", "o2")
        store.add("s2", "p1", "o1")
        assert len(store.match(None, "p1", None)) == 2
        assert len(store.match("s1", None, None)) == 2
        assert len(store.match(None, None, "o1")) == 2
        assert store.match("s1", "p1", "o1") == [("s1", "p1", "o1")]
        assert len(store.match()) == 3

    def test_duplicate_add_ignored(self):
        store = TripleStore()
        assert store.add("s", "p", "o")
        assert not store.add("s", "p", "o")
        assert len(store) == 1

    def test_discard_and_remove_subject(self):
        store = TripleStore()
        store.add("s", "p", "o")
        store.add("s", "q", "o2")
        assert store.discard("s", "p", "o")
        assert not store.discard("s", "p", "o")
        assert store.remove_subject("s") == 1
        assert len(store) == 0

    def test_run_triples_contain_lineage_edges(self, captured_run):
        workflow, run = captured_run
        triples = run_to_triples(run)
        predicates = {p for _, p, _ in triples}
        assert "prov:used" in predicates
        assert "prov:wasGeneratedBy" in predicates

    def test_triple_count_scales_with_run(self, captured_run):
        _, run = captured_run
        store = TripleProvenanceStore()
        store.save_run(run)
        assert len(store.triples) > 50
        store.delete_run(run.id)
        assert len(store.triples) == 0


class TestDocumentStoreSpecifics:
    def test_files_on_disk(self, tmp_path, captured_run):
        _, run = captured_run
        store = DocumentStore(tmp_path / "d")
        store.save_run(run)
        assert (tmp_path / "d" / "runs" / f"{run.id}.json").exists()

    def test_values_persist_when_enabled(self, tmp_path, captured_run):
        workflow, run = captured_run
        store = DocumentStore(tmp_path / "d", store_values=True)
        store.save_run(run)
        loaded = store.load_run(run.id)
        load = module_by_name(workflow, "load")
        volume = run.artifacts_for_module(load.id, "volume")
        assert np.array_equal(loaded.values[volume.id],
                              run.values[volume.id])


class TestArtifactValueStores:
    def test_memory_put_get(self):
        store = ArtifactValueStore()
        value_hash = store.put({"x": [1, 2]})
        assert store.get(value_hash) == {"x": [1, 2]}
        assert store.has(value_hash)
        assert len(store) == 1

    def test_memory_idempotent(self):
        store = ArtifactValueStore()
        first = store.put("same")
        second = store.put("same")
        assert first == second
        assert len(store) == 1

    def test_file_store_roundtrip(self, tmp_path):
        store = FileArtifactValueStore(tmp_path / "vals")
        array = np.arange(10.0)
        value_hash = store.put(array)
        assert np.array_equal(store.get(value_hash), array)
        assert store.has(value_hash)
        assert len(store) == 1

    def test_file_store_discard(self, tmp_path):
        store = FileArtifactValueStore(tmp_path / "vals")
        value_hash = store.put("x")
        assert store.discard(value_hash)
        assert not store.discard(value_hash)
        with pytest.raises(KeyError):
            store.get(value_hash)

    def test_file_store_hashes_parity_with_memory(self, tmp_path):
        memory = ArtifactValueStore()
        disk = FileArtifactValueStore(tmp_path / "vals")
        for value in ("alpha", [1, 2, 3], {"k": 9}, 3.5):
            assert memory.put(value) == disk.put(value)
        assert list(disk.hashes()) == list(memory.hashes())
        assert len(disk) == len(memory) == 4
        first = next(iter(memory.hashes()))
        disk.discard(first)
        memory.discard(first)
        assert list(disk.hashes()) == list(memory.hashes())
