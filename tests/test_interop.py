"""Tests for multi-system provenance interoperability."""

import pytest

from repro.interop import (ChimeraSim, KarmaSim, TavernaSim,
                           chimera_to_opm, cross_system_lineage,
                           integrate_graphs, karma_to_opm, run_challenge2,
                           taverna_to_opm)


def double(value):
    return {"out": value * 2}


class TestDialects:
    def test_taverna_triples_recorded(self):
        system = TavernaSim()
        system.put("in1", 21)
        produced = system.invoke("doubler", lambda **kw: double(kw["x"]),
                                 inputs={"x": "in1"},
                                 output_names={"out": "out1"})
        assert produced == ["out1"]
        assert system.get("out1").value == 42
        predicates = {p for _, p, _ in system.triples}
        assert "scufl:readInput" in predicates
        assert "scufl:wroteOutput" in predicates

    def test_karma_event_order(self):
        system = KarmaSim()
        system.put("in1", 5)
        system.invoke("svc", lambda **kw: double(kw["x"]),
                      inputs={"x": "in1"}, output_names={"out": "out1"})
        kinds = [event["type"] for event in system.events]
        assert kinds == ["serviceInvoked", "dataConsumed",
                         "dataProduced", "serviceCompleted"]

    def test_chimera_catalog(self):
        system = ChimeraSim()
        system.put("in1", 7)
        system.invoke("dbl", lambda **kw: double(kw["x"]),
                      inputs={"x": "in1"}, output_names={"out": "out1"},
                      parameters={"m": 12})
        derivation = system.derivations[0]
        assert derivation["transformation"] == "dbl"
        assert derivation["parameters"] == {"m": 12}
        assert derivation["inputs"] == {"x": "in1"}
        assert "dbl" in system.transformations


class TestTranslators:
    def make_and_translate(self, cls, translator):
        system = cls()
        system.put("in1", 3)
        system.invoke("step", lambda **kw: double(kw["x"]),
                      inputs={"x": "in1"}, output_names={"out": "out1"})
        return translator(system)

    @pytest.mark.parametrize("cls,translator", [
        (TavernaSim, taverna_to_opm),
        (KarmaSim, karma_to_opm),
        (ChimeraSim, chimera_to_opm),
    ])
    def test_translation_shape(self, cls, translator):
        graph = self.make_and_translate(cls, translator)
        summary = graph.summary()
        assert summary["processes"] == 1
        assert summary["artifacts"] == 2
        assert summary["used"] == 1
        assert summary["wasGeneratedBy"] == 1
        assert graph.validate() == []

    @pytest.mark.parametrize("cls,translator", [
        (TavernaSim, taverna_to_opm),
        (KarmaSim, karma_to_opm),
        (ChimeraSim, chimera_to_opm),
    ])
    def test_artifacts_carry_names_and_hashes(self, cls, translator):
        graph = self.make_and_translate(cls, translator)
        for artifact in graph.artifacts.values():
            assert artifact.attributes.get("name")
            assert artifact.value_hash


class TestIntegration:
    def test_shared_names_unify(self):
        first = TavernaSim()
        first.put("shared", 10)
        first.invoke("a", lambda **kw: double(kw["x"]),
                     inputs={"x": "shared"},
                     output_names={"out": "mid"})
        second = KarmaSim()
        second.put("mid", first.get("mid").value)
        second.invoke("b", lambda **kw: double(kw["x"]),
                      inputs={"x": "mid"}, output_names={"out": "final"})
        report = integrate_graphs([taverna_to_opm(first),
                                   karma_to_opm(second)])
        assert report.crossings() == 1
        assert not report.conflicts
        # lineage of final crosses the system boundary
        from repro.opm import opm_lineage
        lineage = opm_lineage(report.graph, "final")
        assert "shared" in lineage["artifacts"]

    def test_hash_conflict_kept_separate(self):
        first = TavernaSim()
        first.put("data", 1)
        first.invoke("a", lambda **kw: double(kw["x"]),
                     inputs={"x": "data"}, output_names={"out": "o1"})
        second = KarmaSim()
        second.put("data", 999)  # same name, different content!
        second.invoke("b", lambda **kw: double(kw["x"]),
                      inputs={"x": "data"}, output_names={"out": "o2"})
        report = integrate_graphs([taverna_to_opm(first),
                                   karma_to_opm(second)])
        assert report.conflicts


class TestChallenge2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_challenge2(size=10)

    def test_three_systems_integrated(self, result):
        assert result.report.systems == 3
        assert result.report.crossings() >= 5  # resliced x4 + atlas x2

    def test_no_identity_conflicts(self, result):
        assert result.report.conflicts == []

    def test_lineage_spans_all_systems(self, result):
        lineage = cross_system_lineage(result, "atlas-x.graphic")
        systems = {process.split(":")[0]
                   for process in lineage["processes"]}
        assert systems == {"chimera", "karma", "taverna"}

    def test_lineage_reaches_every_anatomy_image(self, result):
        lineage = cross_system_lineage(result, "atlas-y.graphic")
        for subject in (1, 2, 3, 4):
            assert f"anatomy{subject}.img" in lineage["artifacts"]

    def test_hash_agreement_across_boundaries(self, result):
        # the resliced image leaving chimera is byte-identical entering
        # karma: content-addressing proves the handoff was faithful
        for subject in (1, 2, 3, 4):
            name = f"resliced{subject}.img"
            assert (result.chimera.get(name).value_hash
                    == result.karma.get(name).value_hash)

    def test_graphics_are_pgm(self, result):
        for name in result.atlas_graphics:
            assert result.taverna.get(name).value.startswith(b"P5\n")
