"""Provenance-as-a-service: mixed-traffic stress, parity, fault drills.

The service's contract under concurrency is exercised against a *live*
server — real sockets, one thread per connection — with three families
of assertions:

* **No torn reads**: a reader's ``select``/``list_runs``/``load_run``
  never observes a partially ingested run, even while N writers stream
  batches into the same shards.
* **Ingest-order visibility**: the moment a writer's ``finish`` (or
  ``save_run``) is acknowledged, every reader sees the run; acknowledged
  runs never disappear from later snapshots.
* **Byte-identical parity**: runs ingested through shards — or through
  the wire — reload with exactly the same ``to_dict`` JSON as runs
  ingested into a single store, on all four backends.

Fault drills cover the new server-side seams (a client connection killed
mid-stream, a scripted drop/fail per protocol op, a crash between
per-shard bulk commits) plus the observed-process workload under command
crashes, partial output, and abandoned sessions — each ending in a
``repro fsck`` pass that must leave the store clean.
"""

import json
import threading
import time

import pytest

from repro.core import ProvenanceCapture, ProvenanceManager
from repro.core.retrospective import WorkflowRun
from repro.service import (ProvenanceClient, ProvenanceService,
                           ServiceError, ShardedProvenanceStore, shard_of)
from repro.service.client import parse_address
from repro.storage import (DocumentStore, MemoryStore, ProvQuery,
                           QueryError, RelationalStore, StoreError,
                           TripleProvenanceStore)
from repro.storage.fsck import INTERRUPTED_STATUS, fsck_store
from repro.workflow import Executor
from repro.workflow.faults import (FaultInjected, FaultPlan, FaultSpec,
                                   HardCrash)
from repro.workflow.modules.observed import ObservedProcessSession
from repro.workloads import clone_run
from tests.conftest import build_fig1_workflow

BACKENDS = ["memory", "relational", "triples", "documents"]


@pytest.fixture(scope="module")
def corpus(registry):
    """Six runs sharing content (clone variants of one Figure 1 run)."""
    capture = ProvenanceCapture(registry=registry, keep_values=False)
    executor = Executor(registry, listeners=[capture])
    executor.execute(build_fig1_workflow(size=8, level=90.0))
    base = capture.last_run()
    runs = [base]
    runs.append(clone_run(base, "c1", status="failed"))
    runs.append(clone_run(base, "c2", workflow_id="wf-other",
                          workflow_name="other-flow",
                          started=base.started + 10,
                          finished=base.finished + 11))
    runs.append(clone_run(base, "c3", started=base.started - 10,
                          finished=base.finished - 9))
    runs.append(clone_run(base, "c4", status="failed"))
    runs.append(clone_run(base, "c5", started=base.started + 20,
                          finished=base.finished + 25))
    return runs


def fingerprint(run: WorkflowRun) -> str:
    """Canonical JSON of the run record — the byte-identity oracle."""
    return json.dumps(run.to_dict(), sort_keys=True)


def make_backend(name, root):
    root.mkdir(parents=True, exist_ok=True)
    return {
        "memory": lambda: MemoryStore(),
        "relational": lambda: RelationalStore(str(root / "prov.db")),
        "triples": lambda: TripleProvenanceStore(),
        "documents": lambda: DocumentStore(root / "docs"),
    }[name]()


def stream_run(store_or_client, run, *, batch=2):
    """Feed one full run through the streaming-ingest API."""
    writer = store_or_client.save_run_stream(run)
    for artifact in run.artifacts.values():
        writer.add_artifact(artifact)
    for index, execution in enumerate(run.executions, 1):
        writer.add_execution(execution)
        if index % batch == 0:
            writer.flush()
    return writer.finish(status=run.status, finished=run.finished,
                         tags=run.tags)


@pytest.fixture()
def service(tmp_path):
    """A live server over a 3-shard on-disk store; closed after the test."""
    store = ShardedProvenanceStore.open(tmp_path / "prov", shards=3)
    server = ProvenanceService(store, close_store=True).start()
    yield server
    server.close()


def connect(server, **kwargs):
    return ProvenanceClient(server.host, server.port, **kwargs)


# ----------------------------------------------------------------------
# sharded-vs-single parity (all four backends)
# ----------------------------------------------------------------------
class TestShardedSingleParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bulk_ingest_reloads_byte_identical(self, backend, tmp_path,
                                                corpus):
        single = make_backend(backend, tmp_path / "single")
        sharded = ShardedProvenanceStore(
            [make_backend(backend, tmp_path / f"shard{i}")
             for i in range(3)])
        single.save_runs(corpus)
        sharded.save_runs(corpus)
        assert ([s.run_id for s in sharded.list_runs()]
                == [s.run_id for s in single.list_runs()])
        for run in corpus:
            assert (fingerprint(sharded.load_run(run.id))
                    == fingerprint(single.load_run(run.id)))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_streamed_ingest_reloads_byte_identical(self, backend,
                                                    tmp_path, corpus):
        single = make_backend(backend, tmp_path / "single")
        sharded = ShardedProvenanceStore(
            [make_backend(backend, tmp_path / f"shard{i}")
             for i in range(3)])
        single.save_runs(corpus)
        for run in corpus:
            stream_run(sharded, run)
        for run in corpus:
            assert (fingerprint(sharded.load_run(run.id))
                    == fingerprint(single.load_run(run.id)))

    def test_runs_actually_spread_across_shards(self, corpus):
        sharded = ShardedProvenanceStore(
            [RelationalStore() for _ in range(3)])
        sharded.save_runs(corpus)
        occupied = {sharded.shard_index(run.id) for run in corpus}
        assert len(occupied) >= 2
        assert sum(len(s.list_runs()) for s in sharded.shards) == len(corpus)

    def test_shard_of_is_stable(self):
        assert shard_of("run-abc", 4) == shard_of("run-abc", 4)
        assert 0 <= shard_of("anything", 7) < 7

    def test_reopen_with_wrong_shard_count_refuses(self, tmp_path):
        ShardedProvenanceStore.open(tmp_path / "p", shards=3).close()
        with pytest.raises(StoreError, match="layout mismatch"):
            ShardedProvenanceStore.open(tmp_path / "p", shards=4)


# ----------------------------------------------------------------------
# client/server basics over a live socket
# ----------------------------------------------------------------------
class TestServiceBasics:
    def test_ping_and_stats(self, service):
        with connect(service) as client:
            assert client.ping()["shards"] == 3
            stats = client.stats()
        assert stats["counters"]["requests"] >= 1
        assert stats["read_pool"] > 0  # file shards => pooled reads

    def test_save_and_reload_byte_identical(self, service, corpus):
        with connect(service) as client:
            client.save_run(corpus[0])
            reloaded = client.load_run(corpus[0].id)
            assert fingerprint(reloaded) == fingerprint(corpus[0])
            assert client.has_run(corpus[0].id)
            assert not client.has_run("run-that-is-not-there")

    def test_streamed_ingest_over_the_wire(self, service, corpus):
        with connect(service) as client:
            run = clone_run(corpus[0], "wire")
            assert stream_run(client, run) == run.id
            assert fingerprint(client.load_run(run.id)) == fingerprint(run)

    def test_select_matches_local_store(self, service, corpus):
        with connect(service) as client:
            client.save_runs(corpus)
            local = MemoryStore()
            local.save_runs(corpus)
            for query in (
                    ProvQuery.runs().where(status="failed"),
                    ProvQuery.executions().order_by("-started").limit(7),
                    ProvQuery.artifacts().project("run_id", "id",
                                                  "value_hash"),
                    ProvQuery.runs().order_by("-started").limit(2)
                    .offset(1)):
                assert (client.select(query).all()
                        == local.select(query).all())

    def test_lineage_closure_matches_local(self, service, corpus):
        with connect(service) as client:
            client.save_runs(corpus)
            local = MemoryStore()
            local.save_runs(corpus)
            key = corpus[0].final_artifacts()[0].value_hash
            assert (client.lineage_closure(key)
                    == local.lineage_closure(key))
            assert (client.lineage_closure(key, direction="down",
                                           max_depth=1)
                    == local.lineage_closure(key, direction="down",
                                             max_depth=1))

    def test_store_and_query_errors_cross_the_wire(self, service):
        with connect(service) as client:
            with pytest.raises(StoreError):
                client.load_run("missing-run")
            with pytest.raises(QueryError):
                client.select(ProvQuery.from_dict({"entity": "nope"}))

    def test_workflow_and_annotation_round_trip(self, service, registry,
                                                corpus):
        from repro.core import Annotation
        manager = ProvenanceManager(registry=registry)
        prospective = manager.prospective(build_fig1_workflow(size=6))
        note = Annotation(id="ann-s1", target_kind="run",
                          target_id=corpus[0].id, key="grade",
                          value={"score": 7}, author="dana", created=1.0)
        with connect(service) as client:
            client.save_workflow(prospective)
            assert client.list_workflows() == [prospective.workflow_id]
            loaded = client.load_workflow(prospective.workflow_id)
            assert loaded.to_dict() == prospective.to_dict()
            client.save_annotation(note)
            assert [a.to_dict() for a in client.annotations_for(
                "run", corpus[0].id)] == [note.to_dict()]
            assert [a.id for a in client.all_annotations()] == ["ann-s1"]

    def test_delete_run_routes_through_service(self, service, corpus):
        with connect(service) as client:
            client.save_run(corpus[0])
            assert client.delete_run(corpus[0].id) is True
            assert client.delete_run(corpus[0].id) is False
            assert not client.has_run(corpus[0].id)

    def test_unknown_op_is_a_protocol_error(self, service):
        with connect(service) as client:
            with pytest.raises(ServiceError) as excinfo:
                client._rpc("no_such_op")
            assert excinfo.value.kind == "ProtocolError"

    def test_parse_address(self):
        assert parse_address("10.0.0.5:7643") == ("10.0.0.5", 7643)
        assert parse_address("7643") == ("127.0.0.1", 7643)
        with pytest.raises(ServiceError):
            parse_address("nope")

    def test_resume_stream_over_the_wire(self, service, corpus):
        # a flushed-but-unfinished ingest left in the store before the
        # server came up is resumable straight through the protocol
        run = clone_run(corpus[0], "resume-me")
        writer = service.store.save_run_stream(run)
        for artifact in run.artifacts.values():
            writer.add_artifact(artifact)
        for execution in run.executions[:2]:
            writer.add_execution(execution)
        writer.flush()  # journal watermark = 2; then the feeder "dies"
        with connect(service) as client:
            resumed = client.resume_run_stream(run.id)
            already = set(resumed.already_ingested)
            assert already == {e.id for e in run.executions[:2]}
            for execution in run.executions:
                if execution.id not in already:
                    resumed.add_execution(execution)
            resumed.finish(status=run.status, finished=run.finished,
                           tags=run.tags)
            assert fingerprint(client.load_run(run.id)) == fingerprint(run)


# ----------------------------------------------------------------------
# mixed-traffic stress: N writers + M readers against one live server
# ----------------------------------------------------------------------
class TestMixedTrafficStress:
    WRITERS = 3
    READERS = 3
    RUNS_EACH = 5

    def test_no_torn_reads_and_ingest_order_visibility(self, service,
                                                       corpus):
        base = corpus[0]
        expected_executions = len(base.executions)
        planned = {}
        for writer_index in range(self.WRITERS):
            for run_index in range(self.RUNS_EACH):
                run = clone_run(base, f"w{writer_index}x{run_index}")
                planned.setdefault(writer_index, []).append(run)
        expected_prints = {run.id: fingerprint(run)
                           for runs in planned.values() for run in runs}
        acked = []
        acked_lock = threading.Lock()
        stop = threading.Event()
        errors = []

        def writer(writer_index):
            client = connect(service)
            try:
                for run in planned[writer_index]:
                    stream_run(client, run, batch=2)
                    # ingest-order visibility: the finish ack means the
                    # run is immediately, completely visible
                    assert client.has_run(run.id)
                    assert run.id in {s.run_id
                                      for s in client.list_runs()}
                    loaded = client.load_run(run.id)
                    assert len(loaded.executions) == expected_executions
                    with acked_lock:
                        acked.append(run.id)
            except BaseException as exc:  # noqa: BLE001 — collected
                errors.append(exc)
            finally:
                client.close()

        def reader(_reader_index):
            client = connect(service)
            query = ProvQuery.executions().project("run_id", "id")
            try:
                while not stop.is_set():
                    with acked_lock:
                        acked_before = set(acked)
                    rows = client.select(query).all()
                    counts = {}
                    for row in rows:
                        counts[row["run_id"]] = counts.get(
                            row["run_id"], 0) + 1
                    for run_id, count in counts.items():
                        # the no-torn-reads contract: a visible run is a
                        # whole run, regardless of flush batching
                        assert count == expected_executions, (
                            f"torn read: {run_id} shows "
                            f"{count}/{expected_executions} executions")
                    # runs acked before this snapshot must all be visible
                    assert acked_before <= set(counts), (
                        "acked run disappeared from a later snapshot")
                    listed = {s.run_id for s in client.list_runs()}
                    assert acked_before <= listed
            except BaseException as exc:  # noqa: BLE001 — collected
                errors.append(exc)
            finally:
                client.close()

        threads = [threading.Thread(target=writer, args=(index,))
                   for index in range(self.WRITERS)]
        threads += [threading.Thread(target=reader, args=(index,))
                    for index in range(self.READERS)]
        for thread in threads:
            thread.start()
        for thread in threads[:self.WRITERS]:
            thread.join(timeout=60)
        stop.set()
        for thread in threads[self.WRITERS:]:
            thread.join(timeout=60)
        assert not errors, errors

        with connect(service) as client:
            summaries = client.list_runs()
            assert {s.run_id for s in summaries} == set(expected_prints)
            for run_id, expected in expected_prints.items():
                assert fingerprint(client.load_run(run_id)) == expected
            stats = client.stats()
        assert stats["inflight_streams"] == 0
        assert (stats["counters"]["runs_ingested"]
                == self.WRITERS * self.RUNS_EACH)

    def test_inflight_run_is_invisible_until_finish(self, service,
                                                    corpus):
        run = clone_run(corpus[0], "inflight")
        ingest, observe = connect(service), connect(service)
        try:
            writer = ingest.save_run_stream(run)
            for artifact in run.artifacts.values():
                writer.add_artifact(artifact)
            for execution in run.executions:
                writer.add_execution(execution)
            writer.flush()  # durable on the shard — but still in flight
            assert not observe.has_run(run.id)
            assert run.id not in {s.run_id for s in observe.list_runs()}
            assert observe.select(ProvQuery.executions().where(
                run_id=run.id)).all() == []
            with pytest.raises(StoreError):
                observe.load_run(run.id)
            writer.finish(status=run.status, finished=run.finished,
                          tags=run.tags)
            assert observe.has_run(run.id)
            assert fingerprint(observe.load_run(run.id)) == fingerprint(run)
        finally:
            ingest.close()
            observe.close()

    def test_inflight_run_is_invisible_to_lineage(self, service, corpus):
        """Closures must mask mid-stream runs like row queries do."""
        run = clone_run(corpus[0], "inflight-lineage")
        key = run.final_artifacts()[0].value_hash
        ingest, observe = connect(service), connect(service)
        try:
            writer = ingest.save_run_stream(run)
            for artifact in run.artifacts.values():
                writer.add_artifact(artifact)
            for execution in run.executions:
                writer.add_execution(execution)
            writer.flush()  # edges durable on the shard — but in flight
            assert observe.lineage_closure(key) == frozenset()
            assert observe.lineage_closure(
                key, direction="down", max_depth=1) == frozenset()
            assert observe.lineage_closure(
                key, within_runs=[run.id]) == frozenset()
            writer.finish(status=run.status, finished=run.finished,
                          tags=run.tags)
            local = MemoryStore()
            local.save_run(run)
            assert (observe.lineage_closure(key)
                    == local.lineage_closure(key))
            assert (observe.lineage_closure(key, within_runs=[run.id])
                    == local.lineage_closure(key, within_runs=[run.id]))
        finally:
            ingest.close()
            observe.close()

    def test_committed_lineage_stays_visible_during_other_stream(
            self, service, corpus):
        """Masking one in-flight run must not hide committed edges."""
        committed = clone_run(corpus[0], "committed-lineage")
        key = committed.final_artifacts()[0].value_hash
        ingest, observe = connect(service), connect(service)
        try:
            observe.save_run(committed)
            expected = observe.lineage_closure(key)
            assert expected  # the committed run contributes real edges
            writer = ingest.save_run_stream(
                clone_run(corpus[0], "inflight-other"))
            assert observe.lineage_closure(key) == expected
            writer.abort()
        finally:
            ingest.close()
            observe.close()

    def test_concurrent_stream_of_same_run_refused(self, service, corpus):
        run = clone_run(corpus[0], "dup")
        first, second = connect(service), connect(service)
        try:
            writer = first.save_run_stream(run)
            with pytest.raises(StoreError, match="already being streamed"):
                second.save_run_stream(run)
            writer.abort()
            second.save_run_stream(run).abort()  # free again after abort
        finally:
            first.close()
            second.close()


# ----------------------------------------------------------------------
# fault seams: killed connections, scripted drops, shard-commit crashes
# ----------------------------------------------------------------------
def _wait_until(predicate, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.01)
    return False


class TestServiceFaults:
    def test_killed_connection_mid_stream_leaves_no_trace(self, service,
                                                          corpus):
        run = clone_run(corpus[0], "killed")
        client = connect(service)
        writer = client.save_run_stream(run)
        for artifact in run.artifacts.values():
            writer.add_artifact(artifact)
        writer.add_execution(run.executions[0])
        writer.flush()  # partial batch is durable on the shard
        # the process holding the stream dies without abort/finish: a
        # shutdown sends FIN even while makefile wrappers pin the fd
        import socket as socket_module
        client._sock.shutdown(socket_module.SHUT_RDWR)
        client._sock.close()
        with connect(service) as observer:
            assert _wait_until(
                lambda: observer.stats()["inflight_streams"] == 0)
            assert not observer.has_run(run.id)
            assert observer.select(ProvQuery.executions().where(
                run_id=run.id)).all() == []
        assert fsck_store(service.store) == []

    def test_drop_connection_fault_aborts_stream(self, tmp_path, corpus):
        plan = FaultPlan().drop_connection("stream_add", 1)
        store = ShardedProvenanceStore.open(tmp_path / "p", shards=2)
        with ProvenanceService(store, fault_plan=plan,
                               close_store=True) as service:
            run = clone_run(corpus[0], "dropped")
            client = connect(service)
            writer = client.save_run_stream(run)
            for artifact in run.artifacts.values():
                writer.add_artifact(artifact)
            writer.add_execution(run.executions[0])
            with pytest.raises(ServiceError):
                writer.flush()  # server drops the connection instead
            client.close()
            assert plan.fired_at("service-request")
            with connect(service) as observer:
                assert _wait_until(
                    lambda: observer.stats()["inflight_streams"] == 0)
                assert not observer.has_run(run.id)

    def test_fail_request_fault_is_transient(self, tmp_path, corpus):
        plan = FaultPlan().fail_request("select", 1)
        store = ShardedProvenanceStore.open(tmp_path / "p", shards=2)
        with ProvenanceService(store, fault_plan=plan,
                               close_store=True) as service:
            with connect(service) as client:
                client.save_run(corpus[0])
                with pytest.raises(ServiceError) as excinfo:
                    client.select(ProvQuery.runs())
                assert excinfo.value.kind == "FaultInjected"
                # connection survived; the retry succeeds
                assert len(client.select(ProvQuery.runs()).all()) == 1

    def test_crash_between_shard_commits_then_reingest(self, corpus):
        probe = ShardedProvenanceStore(
            [MemoryStore() for _ in range(3)])
        occupied = sorted({probe.shard_index(run.id) for run in corpus})
        assert len(occupied) >= 2, "corpus must span shards"
        plan = FaultPlan().crash_shard_commit(occupied[1])
        store = ShardedProvenanceStore(
            [RelationalStore() for _ in range(3)], fault_plan=plan)
        with pytest.raises(HardCrash):
            store.save_runs(corpus)
        survivors = {s.run_id for s in store.list_runs()}
        expected = {run.id for run in corpus
                    if store.shard_index(run.id) < occupied[1]}
        assert survivors == expected  # lower shards durable, rest gone
        # whole runs only — nothing for fsck to repair — and a plain
        # re-ingest converges to the byte-identical full corpus
        assert fsck_store(store, repair=True) == []
        assert store.save_runs(corpus) == len(corpus)
        reference = MemoryStore()
        reference.save_runs(corpus)
        for run in corpus:
            assert (fingerprint(store.load_run(run.id))
                    == fingerprint(reference.load_run(run.id)))

    def test_injected_shard_commit_failure_raises_soft(self, corpus):
        plan = FaultPlan().add(FaultSpec("shard-commit", "*", (1,), "fail"))
        store = ShardedProvenanceStore(
            [MemoryStore() for _ in range(2)], fault_plan=plan)
        with pytest.raises(FaultInjected):
            store.save_runs(corpus)

    def test_coordinator_crash_mid_streams_fsck_repairs_each_shard(
            self, tmp_path, corpus):
        root = tmp_path / "prov"
        store = ShardedProvenanceStore.open(root, shards=3)
        victims = []
        shards_hit = set()
        for suffix in range(16):
            run = clone_run(corpus[0], f"crash{suffix}")
            shard = store.shard_index(run.id)
            if shard not in shards_hit:
                shards_hit.add(shard)
                victims.append(run)
            if len(victims) == 2:
                break
        assert len(victims) == 2, "need partial streams on two shards"
        for run in victims:
            writer = store.save_run_stream(run)
            for artifact in run.artifacts.values():
                writer.add_artifact(artifact)
            writer.add_execution(run.executions[0])
            writer.flush()  # journaled batch committed, never finished
        store.close()  # coordinator dies; writers never finish/abort

        reopened = ShardedProvenanceStore.open(root, shards=3)
        issues = fsck_store(reopened, repair=True)
        assert sorted(issue.subject for issue in issues
                      if issue.kind == "partial-run") == sorted(
                          run.id for run in victims)
        assert all(issue.repaired for issue in issues)
        for run in victims:
            assert reopened.load_run(run.id).status == INTERRUPTED_STATUS
        assert fsck_store(reopened) == []
        reopened.close()


# ----------------------------------------------------------------------
# observed-process workload under faults (ROADMAP follow-up)
# ----------------------------------------------------------------------
class TestObservedProcessFaults:
    def test_command_crash_is_recorded_not_raised(self, tmp_path):
        store = RelationalStore(str(tmp_path / "obs.db"))
        session = ObservedProcessSession(name="crashy", store=store)
        execution = session.observe(
            ["python", "-c", "import sys; sys.exit(3)"])
        assert execution.status == "failed"
        assert "exit code 3" in execution.error
        run = session.finish()
        assert run.status == "failed"
        reloaded = store.load_run(run.id)
        assert reloaded.executions[0].error == execution.error

    def test_partial_output_digested_as_observed(self, tmp_path):
        target = tmp_path / "partial.txt"
        script = ("import sys; open(r'%s','w').write('half-');"
                  " sys.exit(1)" % target)
        session = ObservedProcessSession(name="partial")
        execution = session.observe(["python", "-c", script],
                                    writes=[str(target)])
        run = session.finish()
        assert run.status == "failed"
        write_port = next(b for b in execution.outputs
                          if b.port.startswith("write:"))
        from repro.workflow.modules.observed import file_digest
        digest, size = file_digest(str(target))
        artifact = run.artifacts[write_port.artifact_id]
        assert artifact.value_hash == digest  # the half-written bytes
        assert artifact.size_hint == size == len("half-")

    def test_spawn_failure_recorded_then_raised(self):
        session = ObservedProcessSession(name="spawn")
        with pytest.raises(OSError):
            session.observe(["/no/such/interpreter-zzz"])
        run = session.finish()
        assert run.executions[0].status == "failed"
        assert run.status == "failed"

    def test_abandoned_streaming_session_repaired_by_fsck(self, tmp_path):
        db = str(tmp_path / "obs.db")
        store = RelationalStore(db)
        session = ObservedProcessSession(name="abandoned", store=store,
                                         stream_batch=1)
        session.observe(["python", "-c", "print('one')"])
        session.observe(["python", "-c", "print('two')"])
        run_id = session.run.id
        store.close()  # the observing process dies: no finish, no abort

        reopened = RelationalStore(db)
        issues = fsck_store(reopened, repair=True)
        assert [issue.kind for issue in issues] == ["partial-run"]
        assert issues[0].subject == run_id
        repaired = reopened.load_run(run_id)
        assert repaired.status == INTERRUPTED_STATUS
        assert len(repaired.executions) == 2  # flushed batches survived
        assert fsck_store(reopened) == []

    def test_observed_session_streams_to_live_service(self, service):
        with connect(service) as client:
            session = ObservedProcessSession(name="svc", store=client,
                                             stream_batch=1)
            session.observe(["python", "-c", "print('via service')"])
            run = session.finish()
            assert fingerprint(client.load_run(run.id)) == fingerprint(run)


# ----------------------------------------------------------------------
# ingest-error propagation (drainer + stream-flush atomicity)
# ----------------------------------------------------------------------
class TestIngestErrorPropagation:
    def test_drainer_error_fails_next_run_handoff(self, registry):
        # both the first try and the supervised retry crash, so the
        # failure is pending when the *next* run is handed off — it must
        # surface there, not linger until flush()
        plan = FaultPlan().crash_drainer("*", attempts=(1, 2))
        capture = ProvenanceCapture(registry=registry, store=MemoryStore(),
                                    queue_size=4, fault_plan=plan)
        executor = Executor(registry, listeners=[capture])
        executor.execute(build_fig1_workflow(size=6))
        assert _wait_until(lambda: capture._drainer_error is not None)
        with pytest.raises(FaultInjected):
            executor.execute(build_fig1_workflow(size=6))
        # the error was consumed at the hand-off; close() stays clean
        capture.close()

    def test_flush_failure_rolls_back_whole_batch(self, corpus):
        store = RelationalStore()
        run = clone_run(corpus[0], "atomic")
        writer = store.save_run_stream(run)
        executions = list(run.executions)
        for artifact in run.artifacts.values():
            writer.add_artifact(artifact)
        writer.add_execution(executions[0])
        writer.flush()  # batch 1 committed cleanly
        poison = executions[2]
        poison.parameters = {"bad": {1, 2, 3}}  # not JSON-serializable
        writer.add_execution(executions[1])
        writer.add_execution(poison)
        with pytest.raises(TypeError):
            writer.flush()  # executions[1] inserted, then poison raises
        # the torn half-batch must have been rolled back: only batch 1
        # is durable and the journal watermark still agrees with it
        rows = store._connection.execute(
            "SELECT COUNT(*), COALESCE(MAX(seq), -1) FROM executions"
            " WHERE run_id = ?", (run.id,)).fetchone()
        assert tuple(rows) == (1, 0)
        state = store._connection.execute(
            "SELECT committed_seq FROM stream_state WHERE run_id = ?",
            (run.id,)).fetchone()
        assert state[0] == 1
        writer.abort()
        assert not store.has_run(run.id)

    def test_flush_retry_after_transient_failure_converges(self, corpus):
        store = RelationalStore()
        run = clone_run(corpus[0], "retry")
        writer = store.save_run_stream(run)
        for artifact in run.artifacts.values():
            writer.add_artifact(artifact)
        flaky = run.executions[1]
        original_parameters = flaky.parameters
        flaky.parameters = {"bad": {1}}
        writer.add_execution(run.executions[0])
        writer.add_execution(flaky)
        with pytest.raises(TypeError):
            writer.flush()
        flaky.parameters = original_parameters  # transient cause repaired
        writer.flush()  # the same staged batch retries cleanly
        for execution in run.executions[2:]:
            writer.add_execution(execution)
        writer.finish(status=run.status, finished=run.finished,
                      tags=run.tags)
        reference = MemoryStore()
        reference.save_run(run)
        assert (fingerprint(store.load_run(run.id))
                == fingerprint(reference.load_run(run.id)))


# ----------------------------------------------------------------------
# CLI plumbing: repro serve / --server
# ----------------------------------------------------------------------
class TestServiceCli:
    def test_serve_subcommand_is_wired(self):
        from repro.cli import build_parser
        args = build_parser().parse_args(
            ["serve", "--root", "/tmp/x", "--shards", "2", "--port", "0"])
        assert args.shards == 2 and args.handler is not None

    def test_runs_and_lineage_against_live_server(self, service, capsys):
        from repro.cli import main
        address = f"{service.host}:{service.port}"
        assert main(["runs", "--server", address, "--demo", "1",
                     "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "1 runs" in out
        assert main(["lineage", "--server", address, "--demo", "1"]) == 0
        out = capsys.readouterr().out
        assert "derived from" in out

    def test_observe_against_live_server(self, service, capsys):
        from repro.cli import main
        address = f"{service.host}:{service.port}"
        assert main(["observe", "--server", address, "--",
                     "python", "-c", "print('cli')"]) == 0
        out = capsys.readouterr().out
        assert f"saved to {address}" in out
        with connect(service) as client:
            assert len(client.list_runs()) >= 1
