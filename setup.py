"""Setuptools entry point (kept for legacy editable installs without wheel)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=("Provenance-enabled scientific workflow system "
                 "(reproduction of Davidson & Freire, SIGMOD 2008)"),
    python_requires=">=3.9",
    install_requires=["numpy"],
    package_dir={"": "src"},
    packages=find_packages(where="src"),
)
